//! The linear server power model (paper Eq. 3–7).
//!
//! `p = Σⱼ Aⱼ·f_cⱼ + Σᵢ Bᵢ·f_gᵢ + C` — the paper folds CPU and GPU gains
//! into a single coefficient row `A` over the stacked frequency vector `F`,
//! and we do the same: the model does not care which entries are CPUs.
//! Frequencies are in MHz throughout, powers in watts.

use crate::{ControlError, Result};

/// A linear power model `p = A·F + C` over a stacked frequency vector.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearPowerModel {
    /// Per-device gains in W/MHz (CPUs first, then GPUs, by convention).
    gains: Vec<f64>,
    /// Constant offset `C` in watts (idle/platform power).
    offset: f64,
}

impl LinearPowerModel {
    /// Creates a model from gains and offset.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] if `gains` is empty or non-finite.
    pub fn new(gains: Vec<f64>, offset: f64) -> Result<Self> {
        if gains.is_empty() {
            return Err(ControlError::BadConfig("power model needs >= 1 gain"));
        }
        if gains.iter().any(|g| !g.is_finite()) || !offset.is_finite() {
            return Err(ControlError::BadConfig(
                "power model entries must be finite",
            ));
        }
        Ok(LinearPowerModel { gains, offset })
    }

    /// Number of devices (length of the frequency vector).
    pub fn num_devices(&self) -> usize {
        self.gains.len()
    }

    /// Per-device gains in W/MHz.
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// Constant offset in watts.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Absolute prediction: `p = A·F + C` (Eq. 5).
    ///
    /// # Panics
    /// Panics if `freqs.len()` differs from the device count.
    pub fn predict(&self, freqs: &[f64]) -> f64 {
        assert_eq!(freqs.len(), self.gains.len(), "frequency vector length");
        self.offset
            + self
                .gains
                .iter()
                .zip(freqs.iter())
                .map(|(a, f)| a * f)
                .sum::<f64>()
    }

    /// Incremental prediction from the difference equation (Eq. 7):
    /// `p(k) = p(k−1) + A·ΔF(k−1)`.
    ///
    /// This is what the MPC uses — it needs no knowledge of the offset `C`
    /// and therefore tolerates slow drift in platform power.
    ///
    /// # Panics
    /// Panics if `delta_freqs.len()` differs from the device count.
    pub fn predict_delta(&self, p_prev: f64, delta_freqs: &[f64]) -> f64 {
        assert_eq!(delta_freqs.len(), self.gains.len(), "delta vector length");
        p_prev
            + self
                .gains
                .iter()
                .zip(delta_freqs.iter())
                .map(|(a, d)| a * d)
                .sum::<f64>()
    }

    /// Total gain `Σᵢ Aᵢ` — the sensitivity of server power to a uniform
    /// 1 MHz move of every device. Used by the pole-placement baselines.
    pub fn total_gain(&self) -> f64 {
        self.gains.iter().sum()
    }

    /// The achievable power range `[p_min, p_max]` over a frequency box,
    /// per the model. Feasibility of a set point is checked against this
    /// (paper §4.4 assumes the constrained problem is feasible).
    ///
    /// # Panics
    /// Panics if bound lengths differ from the device count.
    pub fn achievable_range(&self, f_min: &[f64], f_max: &[f64]) -> (f64, f64) {
        assert_eq!(f_min.len(), self.gains.len());
        assert_eq!(f_max.len(), self.gains.len());
        let mut lo = self.offset;
        let mut hi = self.offset;
        for ((a, &fl), &fh) in self.gains.iter().zip(f_min.iter()).zip(f_max.iter()) {
            // A negative gain would swap which end is min/max; handle both.
            let (p_lo, p_hi) = if *a >= 0.0 {
                (a * fl, a * fh)
            } else {
                (a * fh, a * fl)
            };
            lo += p_lo;
            hi += p_hi;
        }
        (lo, hi)
    }

    /// Returns a copy with each gain multiplied by `g[i]` — the perturbed
    /// "actual" model `A' = g∘A` of the stability analysis (§4.4).
    ///
    /// # Panics
    /// Panics if `g.len()` differs from the device count.
    pub fn perturbed(&self, g: &[f64]) -> LinearPowerModel {
        assert_eq!(g.len(), self.gains.len(), "perturbation vector length");
        LinearPowerModel {
            gains: self
                .gains
                .iter()
                .zip(g.iter())
                .map(|(a, gi)| a * gi)
                .collect(),
            offset: self.offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinearPowerModel {
        // One CPU at 0.06 W/MHz, two GPUs at 0.18 W/MHz, 250 W platform.
        LinearPowerModel::new(vec![0.06, 0.18, 0.18], 250.0).unwrap()
    }

    #[test]
    fn absolute_prediction() {
        let m = model();
        let p = m.predict(&[2000.0, 900.0, 900.0]);
        assert!((p - (250.0 + 120.0 + 162.0 + 162.0)).abs() < 1e-9);
    }

    #[test]
    fn difference_equation_matches_absolute() {
        let m = model();
        let f0 = [2000.0, 900.0, 900.0];
        let f1 = [1800.0, 1000.0, 700.0];
        let p0 = m.predict(&f0);
        let delta: Vec<f64> = f1.iter().zip(f0.iter()).map(|(a, b)| a - b).collect();
        let p1_delta = m.predict_delta(p0, &delta);
        assert!((p1_delta - m.predict(&f1)).abs() < 1e-9);
    }

    #[test]
    fn total_gain() {
        assert!((model().total_gain() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn achievable_range() {
        let m = model();
        let (lo, hi) = m.achievable_range(&[1000.0, 400.0, 400.0], &[2400.0, 1350.0, 1350.0]);
        assert!((lo - (250.0 + 60.0 + 72.0 + 72.0)).abs() < 1e-9);
        assert!((hi - (250.0 + 144.0 + 243.0 + 243.0)).abs() < 1e-9);
        assert!(lo < hi);
    }

    #[test]
    fn achievable_range_negative_gain() {
        let m = LinearPowerModel::new(vec![-1.0], 10.0).unwrap();
        let (lo, hi) = m.achievable_range(&[0.0], &[5.0]);
        assert_eq!((lo, hi), (5.0, 10.0));
    }

    #[test]
    fn perturbation_scales_gains() {
        let m = model().perturbed(&[2.0, 0.5, 1.0]);
        assert_eq!(m.gains(), &[0.12, 0.09, 0.18]);
        assert_eq!(m.offset(), 250.0);
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(LinearPowerModel::new(vec![], 0.0).is_err());
        assert!(LinearPowerModel::new(vec![f64::NAN], 0.0).is_err());
        assert!(LinearPowerModel::new(vec![1.0], f64::INFINITY).is_err());
    }

    #[test]
    #[should_panic(expected = "frequency vector length")]
    fn predict_length_checked() {
        let _ = model().predict(&[1.0]);
    }
}
