//! The frequency–latency model and SLO constraint reduction (paper Eq. 8,
//! constraints 10b/10c).
//!
//! `e(f) = e_min · (f_max / f)^γ` with an empirically fitted γ (the paper
//! uses γ = 0.91, R² ≈ 0.91). The SLO constraint `e(f) ≤ SLO` inverts
//! analytically into a **frequency floor**
//!
//! ```text
//!   f ≥ f_max · (e_min / SLO)^(1/γ)
//! ```
//!
//! which is how the MPC enforces SLOs as linear constraints. The SQP path
//! in `capgpu-optim` handles the raw nonlinear form; tests in that crate
//! verify both agree.

use capgpu_linalg::lstsq;

use crate::{ControlError, Result};

/// The power-law latency model of one inference task on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Minimum latency at `f_max` (seconds per batch).
    pub e_min: f64,
    /// Empirical frequency-scaling exponent γ.
    pub gamma: f64,
    /// Maximum GPU frequency (MHz).
    pub f_max: f64,
}

impl LatencyModel {
    /// Creates a model; validates positivity.
    ///
    /// # Errors
    /// [`ControlError::BadConfig`] for non-positive parameters.
    pub fn new(e_min: f64, gamma: f64, f_max: f64) -> Result<Self> {
        if e_min <= 0.0 || gamma <= 0.0 || f_max <= 0.0 {
            return Err(ControlError::BadConfig(
                "latency model parameters must be positive",
            ));
        }
        Ok(LatencyModel {
            e_min,
            gamma,
            f_max,
        })
    }

    /// Predicted latency at frequency `f` (Eq. 8 / constraint 10b).
    ///
    /// # Panics
    /// Panics (debug) if `f <= 0`.
    pub fn latency(&self, f: f64) -> f64 {
        debug_assert!(f > 0.0, "frequency must be positive");
        self.e_min * (self.f_max / f).powf(self.gamma)
    }

    /// The frequency floor implied by an SLO (inversion of 10b into 10c):
    /// the smallest `f` with `latency(f) ≤ slo`.
    ///
    /// # Errors
    /// [`ControlError::Infeasible`] if the SLO is tighter than `e_min`
    /// (unreachable even at `f_max`).
    pub fn frequency_floor(&self, slo: f64) -> Result<f64> {
        if slo <= 0.0 {
            return Err(ControlError::BadConfig("SLO must be positive"));
        }
        if slo < self.e_min {
            return Err(ControlError::Infeasible(
                "SLO below minimum achievable latency",
            ));
        }
        Ok(self.f_max * (self.e_min / slo).powf(1.0 / self.gamma))
    }

    /// Fits a model from `(frequency, latency)` samples by log-space
    /// regression (how Fig. 2b was produced).
    ///
    /// # Errors
    /// Propagates regression failures (fewer than 2 samples, identical
    /// frequencies, …) as [`ControlError::Linalg`].
    pub fn fit(freqs: &[f64], latencies: &[f64], f_max: f64) -> Result<(Self, f64)> {
        let (e_min, gamma, r2) =
            lstsq::fit_latency_power_law(freqs, latencies, f_max).map_err(ControlError::Linalg)?;
        Ok((LatencyModel::new(e_min, gamma, f_max)?, r2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        // Paper-scale numbers: 50 ms/batch at 1350 MHz, γ = 0.91.
        LatencyModel::new(0.05, 0.91, 1350.0).unwrap()
    }

    #[test]
    fn latency_at_fmax_is_emin() {
        let m = model();
        assert!((m.latency(1350.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn latency_increases_as_frequency_drops() {
        let m = model();
        assert!(m.latency(675.0) > m.latency(1350.0));
        // Exact value: 0.05 · 2^0.91
        assert!((m.latency(675.0) - 0.05 * 2.0_f64.powf(0.91)).abs() < 1e-12);
    }

    #[test]
    fn frequency_floor_inverts_latency() {
        let m = model();
        let slo = 0.08;
        let floor = m.frequency_floor(slo).unwrap();
        // Latency at the floor equals the SLO exactly.
        assert!((m.latency(floor) - slo).abs() < 1e-9);
        // And any higher frequency is strictly better.
        assert!(m.latency(floor + 1.0) < slo);
    }

    #[test]
    fn floor_at_exact_emin_is_fmax() {
        let m = model();
        let floor = m.frequency_floor(0.05).unwrap();
        assert!((floor - 1350.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_slo_is_infeasible() {
        let m = model();
        assert!(matches!(
            m.frequency_floor(0.04).unwrap_err(),
            ControlError::Infeasible(_)
        ));
        assert!(matches!(
            m.frequency_floor(0.0).unwrap_err(),
            ControlError::BadConfig(_)
        ));
    }

    #[test]
    fn fit_recovers_model() {
        let truth = model();
        let freqs: Vec<f64> = (0..10).map(|i| 435.0 + 100.0 * i as f64).collect();
        let lats: Vec<f64> = freqs.iter().map(|&f| truth.latency(f)).collect();
        let (fitted, r2) = LatencyModel::fit(&freqs, &lats, 1350.0).unwrap();
        assert!((fitted.e_min - 0.05).abs() < 1e-6);
        assert!((fitted.gamma - 0.91).abs() < 1e-6);
        assert!(r2 > 0.99999);
    }

    #[test]
    fn fit_with_noise_keeps_reasonable_r2() {
        // The paper reports R² ≈ 0.91 for its latency fit.
        let truth = model();
        let freqs: Vec<f64> = (0..20).map(|i| 435.0 + 48.0 * i as f64).collect();
        let lats: Vec<f64> = freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| truth.latency(f) * (1.0 + 0.05 * ((i as f64) * 1.7).sin()))
            .collect();
        let (fitted, r2) = LatencyModel::fit(&freqs, &lats, 1350.0).unwrap();
        assert!(r2 > 0.85, "R² = {r2}");
        assert!((fitted.gamma - 0.91).abs() < 0.15);
    }

    #[test]
    fn validation() {
        assert!(LatencyModel::new(0.0, 0.91, 1350.0).is_err());
        assert!(LatencyModel::new(0.05, -1.0, 1350.0).is_err());
        assert!(LatencyModel::new(0.05, 0.91, 0.0).is_err());
    }
}
