//! Property tests for the hierarchical budget allocator (ISSUE
//! invariants): Σ child budgets ≤ parent budget at every tree level,
//! allocation monotone in the total budget, and agreement with the flat
//! `capgpu::rack` water-fill on a depth-1 tree.

use capgpu_fleet::prelude::*;
use capgpu_fleet::topology::water_fill_floors;
use proptest::prelude::*;

/// Builds a depth-3 datacenter (dc → row → rack → servers) from nested
/// rack sizes.
fn tree_from(rows: &[Vec<usize>]) -> FleetTopology {
    let children = rows
        .iter()
        .enumerate()
        .map(|(ri, racks)| Node::Group {
            label: format!("row-{ri}"),
            children: racks
                .iter()
                .enumerate()
                .map(|(ki, &n)| Node::Group {
                    label: format!("row-{ri}-rack-{ki}"),
                    children: (0..n)
                        .map(|_| {
                            Node::Server(ServerSpec {
                                class: 0,
                                streams: 1,
                            })
                        })
                        .collect(),
                })
                .collect(),
        })
        .collect();
    FleetTopology::new(Node::Group {
        label: "dc".into(),
        children,
    })
    .expect("generated tree is valid")
}

fn shape() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(1usize..5, 1..4), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn child_budgets_never_exceed_parent_at_any_level(
        rows in shape(),
        budget in 0.0..20_000.0f64,
        seed_demands in prop::collection::vec(0.0..2_000.0f64, 64),
        seed_floors in prop::collection::vec(0.0..400.0f64, 64),
    ) {
        let t = tree_from(&rows);
        let n = t.len();
        let demands: Vec<f64> = (0..n).map(|i| seed_demands[i % 64]).collect();
        let floors: Vec<f64> = (0..n).map(|i| seed_floors[i % 64]).collect();
        let d = t.divide(budget, &demands, &floors);
        prop_assert!(
            d.max_child_sum_violation() < 1e-6,
            "violation {}",
            d.max_child_sum_violation()
        );
        // Conservation at the root: the whole budget lands on servers.
        let total: f64 = d.server_allocs.iter().sum();
        prop_assert!(
            (total - budget.max(0.0)).abs() < 1e-6 * budget.max(1.0),
            "allocated {total} of {budget}"
        );
        prop_assert!(d.server_allocs.iter().all(|a| *a >= -1e-9));
    }

    #[test]
    fn allocation_is_monotone_in_total_budget(
        rows in shape(),
        lo_budget in 100.0..10_000.0f64,
        extra in 0.0..10_000.0f64,
        seed_demands in prop::collection::vec(0.0..2_000.0f64, 64),
        seed_floors in prop::collection::vec(0.0..400.0f64, 64),
    ) {
        let t = tree_from(&rows);
        let n = t.len();
        let demands: Vec<f64> = (0..n).map(|i| seed_demands[i % 64]).collect();
        let floors: Vec<f64> = (0..n).map(|i| seed_floors[i % 64]).collect();
        let small = t.divide(lo_budget, &demands, &floors);
        let large = t.divide(lo_budget + extra, &demands, &floors);
        for (i, (a, b)) in small
            .server_allocs
            .iter()
            .zip(large.server_allocs.iter())
            .enumerate()
        {
            prop_assert!(
                *b >= *a - 1e-7,
                "server {i}: alloc fell {a} -> {b} when budget rose"
            );
        }
    }

    #[test]
    fn depth_one_tree_matches_flat_rack_water_fill(
        demands in prop::collection::vec(0.0..2_000.0f64, 1..12),
        budget in 0.1..20_000.0f64,
        floor in 0.0..300.0f64,
    ) {
        let t = FleetTopology::new(Node::Group {
            label: "rack".into(),
            children: demands
                .iter()
                .map(|_| Node::Server(ServerSpec { class: 0, streams: 1 }))
                .collect(),
        })
        .expect("flat tree");
        let floors = vec![floor; demands.len()];
        let tree = t.divide(budget, &demands, &floors);
        let flat = capgpu::rack::water_fill(&demands, budget, floor);
        for (i, (a, b)) in tree.server_allocs.iter().zip(flat.iter()).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-6,
                "server {i}: tree {a} vs flat rack {b}"
            );
        }
    }

    #[test]
    fn water_fill_floors_grants_floors_and_caps_at_demand(
        demands in prop::collection::vec(0.0..1_000.0f64, 1..10),
        floors in prop::collection::vec(0.0..200.0f64, 10),
        budget in 0.0..15_000.0f64,
    ) {
        let n = demands.len();
        let floors = &floors[..n];
        let alloc = water_fill_floors(&demands, floors, budget);
        let floor_sum: f64 = floors.iter().sum();
        if budget >= floor_sum {
            // Affordable floors are always granted in full.
            for i in 0..n {
                prop_assert!(alloc[i] >= floors[i] - 1e-9);
            }
        }
        // Nobody sits above max(floor, demand) while another member's
        // demand is unmet (max–min fairness).
        let any_unmet = (0..n).any(|i| alloc[i] + 1e-6 < demands[i].max(floors[i]));
        if any_unmet {
            for i in 0..n {
                prop_assert!(
                    alloc[i] <= demands[i].max(floors[i]) + 1e-6,
                    "server {i} overfed at {} (demand {}, floor {}) while others starve",
                    alloc[i], demands[i], floors[i]
                );
            }
        }
    }
}
