//! Integration tests for the fleet simulator: thread-count bit-identity,
//! budget safety, reorder-window bounds, and stream migration under an
//! oversubscribed budget.

use capgpu_fleet::prelude::*;

/// A 2-rack × 3-server mixed-generation fleet: every rack holds one
/// server of each generation, but rack 0 carries heavier offered load
/// (5 streams vs 3) so demand-driven division has real asymmetry to
/// exploit.
fn small_topology() -> FleetTopology {
    FleetTopology::datacenter(2, 3, |rack, slot| ServerSpec {
        class: slot % 3,
        streams: if rack == 0 { 5 } else { 3 },
    })
    .expect("valid topology")
}

fn small_config(budget: f64) -> FleetConfig {
    FleetConfig {
        epochs: 3,
        epoch_periods: 5,
        ..FleetConfig::new(budget)
    }
}

fn run_fleet(config: FleetConfig, seed: u64, threads: usize) -> FleetReport {
    let mut sim =
        FleetSim::new(small_topology(), &mixed_generation_classes(seed), config).expect("sim");
    sim.run(threads).expect("run")
}

#[test]
fn fleet_is_bit_identical_across_thread_counts() {
    let reference = run_fleet(small_config(7000.0), 17, 1);
    for threads in [2, 4] {
        let parallel = run_fleet(small_config(7000.0), 17, threads);
        assert_eq!(reference, parallel, "{threads} threads diverged");
        // The instrumentation (excluded from equality) stays bounded.
        assert!(parallel.peak_live_traces <= threads);
        assert!(parallel.peak_pending <= parallel.reorder_window);
    }
    // Different seeds genuinely move the result.
    let other = run_fleet(small_config(7000.0), 18, 1);
    assert_ne!(reference, other);
}

#[test]
fn reorder_window_override_preserves_results() {
    let reference = run_fleet(small_config(7000.0), 9, 2);
    let mut tight = small_config(7000.0);
    tight.reorder_window = Some(1);
    let narrow = run_fleet(tight, 9, 2);
    assert_eq!(reference, narrow, "window must not change results");
    assert_eq!(narrow.reorder_window, 1);
    assert!(narrow.peak_pending <= 1);
}

#[test]
fn assigned_budgets_respect_the_tree_everywhere() {
    let report = run_fleet(small_config(7000.0), 23, 2);
    assert_eq!(report.server_periods, 6 * 3 * 5);
    for (e, epoch) in report.epochs.iter().enumerate() {
        assert_eq!(epoch.racks.len(), 2);
        assert!(
            epoch.assigned_watts() <= 7000.0 + 1e-6,
            "epoch {e} assigned {}",
            epoch.assigned_watts()
        );
        for (r, rack) in epoch.racks.iter().enumerate() {
            assert!(rack.assigned > 0.0, "epoch {e} rack {r} unfunded");
            assert!(rack.completed > 0, "epoch {e} rack {r} served nothing");
        }
    }
    // After the first (floor-learning) epoch, every rack holds its
    // budget to within per-server regulation ripple.
    let held = report
        .epochs
        .iter()
        .skip(1)
        .flat_map(|e| e.racks.iter())
        .map(|r| r.measured - r.assigned)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(held < 3.0 * 2.0, "post-warmup rack overshoot {held} W");
}

#[test]
fn binding_budget_triggers_migration_off_the_hot_server() {
    // One overloaded server (8 streams, offered load beyond even its
    // uncapped capacity) in a rack with lightly loaded neighbors: the
    // balancer must shed streams toward the spare capacity.
    let topo = FleetTopology::datacenter(2, 3, |rack, slot| ServerSpec {
        class: 0,
        streams: if rack == 0 && slot == 0 { 8 } else { 2 },
    })
    .expect("valid topology");
    let mut sim =
        FleetSim::new(topo, &mixed_generation_classes(29), small_config(6500.0)).expect("sim");
    let report = sim.run(2).expect("run");
    assert!(
        report.total_migrations() >= 1,
        "expected migrations off the hot server"
    );
    // The hot server sheds; stream totals are conserved.
    assert!(report.stats[0].streams < 8, "hot server kept all streams");
    let final_total: u32 = report.stats.iter().map(|s| s.streams).sum();
    assert_eq!(final_total, 8 + 5 * 2, "streams must be conserved");
    // Every planned migration names a real donor/receiver pair.
    for epoch in &report.epochs {
        for m in &epoch.migrations {
            assert_ne!(m.from, m.to);
            assert!(m.from < report.stats.len() && m.to < report.stats.len());
        }
    }
}

#[test]
fn equal_split_is_the_strictly_dumber_baseline() {
    // Rack 0 is heavily loaded (5 streams/server), rack 1 nearly idle
    // (1 stream/server); the budget covers the idle rack's needs with
    // room to spare. Demand-driven division should discover that and
    // shift the surplus to rack 0; equal split cannot.
    let topo = || {
        FleetTopology::datacenter(2, 3, |rack, slot| ServerSpec {
            class: slot % 3,
            streams: if rack == 0 { 5 } else { 1 },
        })
        .expect("valid topology")
    };
    let run = |cfg: FleetConfig| {
        let mut sim = FleetSim::new(topo(), &mixed_generation_classes(31), cfg).expect("sim");
        sim.run(2).expect("run")
    };
    let hier = run(small_config(8600.0));
    let mut cfg = small_config(8600.0);
    cfg.allocator = AllocatorMode::EqualSplit;
    cfg.migration = None;
    let equal = run(cfg);
    // Equal split ignores demand: identical shares per rack regardless
    // of load asymmetry.
    let e0 = &equal.epochs[0].racks;
    assert!((e0[0].assigned - e0[1].assigned).abs() < 1e-9);
    // The hierarchical allocator moves budget toward the loaded rack
    // once the idle rack's demand estimates release slack (the shares
    // can re-tighten in later epochs as probing demands re-saturate the
    // budget — asymmetry in *any* post-initial epoch is the signal).
    assert!(
        hier.epochs
            .iter()
            .skip(1)
            .any(|e| e.racks[0].assigned > e.racks[1].assigned + 1.0),
        "budget never followed load: {:?}",
        hier.epochs
            .iter()
            .map(|e| (e.racks[0].assigned, e.racks[1].assigned))
            .collect::<Vec<_>>()
    );
}

#[test]
fn construction_rejects_bad_configs() {
    let classes = mixed_generation_classes(3);
    // Budget below summed floors.
    assert!(FleetSim::new(small_topology(), &classes, small_config(500.0)).is_err());
    // Unknown class index.
    let topo = FleetTopology::datacenter(1, 2, |_, _| ServerSpec {
        class: 9,
        streams: 4,
    })
    .expect("topology");
    assert!(FleetSim::new(topo, &classes, small_config(7000.0)).is_err());
    // Migration without serving.
    let bare = vec![ServerClass {
        label: "bare".into(),
        scenario: capgpu::config::Scenario::paper_testbed(1),
        nominal_streams: 4,
    }];
    let topo = FleetTopology::datacenter(1, 2, |_, _| ServerSpec {
        class: 0,
        streams: 4,
    })
    .expect("topology");
    assert!(FleetSim::new(topo, &bare, small_config(7000.0)).is_err());
    // Zero epochs.
    let mut cfg = small_config(7000.0);
    cfg.epochs = 0;
    assert!(FleetSim::new(small_topology(), &classes, cfg).is_err());
}
