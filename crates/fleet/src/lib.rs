//! # capgpu-fleet — fleet-scale hierarchical power capping
//!
//! The paper caps one server; this crate caps a datacenter. Three pieces
//! compose the fleet layer on top of the unchanged per-server CapGPU
//! stack:
//!
//! - [`topology`]: an arbitrary-depth budget tree (datacenter → row →
//!   rack → server) with hierarchical max–min water-filling, generalizing
//!   `capgpu::rack` — Σ child budgets ≤ parent budget at every level, by
//!   construction.
//! - [`balancer`]: a power-aware request-stream migration policy — when a
//!   server's budget binds and SLOs slip, a stream moves to the server
//!   with the most spare power capacity.
//! - [`sim`]: a sharded, memory-bounded fleet simulator — servers step
//!   in parallel between allocator epochs, summaries fold through a
//!   bounded reorder window in server index order, and reports are
//!   bit-identical across thread counts with O(servers) resident state.
//! - [`health`]: the `capgpu-obs` control-loop health detectors run per
//!   rack over a finished report — budget-burn, oscillating
//!   reallocation, silent racks, saturation dwell, SLO burn.

pub mod balancer;
pub mod classes;
pub mod health;
pub mod sim;
pub mod topology;

pub use capgpu::{CapGpuError, Result};

/// Common imports for fleet experiments.
pub mod prelude {
    pub use crate::balancer::{Migration, MigrationConfig};
    pub use crate::classes::mixed_generation_classes;
    pub use crate::health::{analyze, FleetHealth, RackHealth};
    pub use crate::sim::{
        AllocatorMode, EpochReport, FleetConfig, FleetReport, FleetSim, RackEpoch, ServerClass,
        ServerStat,
    };
    pub use crate::topology::{Division, FleetTopology, Node, ServerSpec};
}
