//! Fleet topology: an arbitrary-depth budget tree over CapGPU servers.
//!
//! `capgpu::rack` divides one budget across a flat list of servers. A
//! datacenter divides hierarchically — datacenter → row → rack → server —
//! and every interior node has its own breaker/PDU rating that the sum of
//! its children's set points must respect. This module generalizes the
//! rack's max–min water-fill to a tree: at each node the parent budget is
//! water-filled over the children's aggregate demands (with per-child
//! floors equal to the sum of their subtree floors), then each child's
//! share recurses downward. Conservation at every level means
//! Σ child shares ≤ parent share by construction, so no breaker in the
//! tree is ever oversubscribed by the *set points* — the same "safe
//! capping" invariant the flat rack provides, now at every depth.

use capgpu::{CapGpuError, Result};

/// One leaf server in the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Index into the fleet's server-class table.
    pub class: usize,
    /// Initial number of request streams hosted by this server. The
    /// balancer migrates streams between servers; offered load scales as
    /// `streams / nominal_streams` of the class.
    pub streams: u32,
}

/// A node in the budget tree: either an interior budget group (datacenter,
/// row, rack, …) or a leaf server.
#[derive(Debug, Clone)]
pub enum Node {
    /// Interior node dividing its share among `children`.
    Group {
        /// Display label ("rack-3", "row-a", …).
        label: String,
        /// Child nodes, in expansion order.
        children: Vec<Node>,
    },
    /// Leaf server.
    Server(ServerSpec),
}

impl Node {
    /// Number of leaf servers under this node.
    fn leaf_count(&self) -> usize {
        match self {
            Node::Server(_) => 1,
            Node::Group { children, .. } => children.iter().map(Node::leaf_count).sum(),
        }
    }
}

/// A validated budget tree with its leaves flattened in depth-first
/// order. The leaf order is the fleet's canonical server index order:
/// allocations, statistics and shard folding all use it.
#[derive(Debug, Clone)]
pub struct FleetTopology {
    root: Node,
    servers: Vec<ServerSpec>,
    rack_of: Vec<usize>,
    rack_labels: Vec<String>,
}

/// The result of one budget division: per-server allocations plus every
/// tree node's share in depth-first preorder (for auditing the
/// Σ children ≤ parent invariant level by level).
#[derive(Debug, Clone, PartialEq)]
pub struct Division {
    /// Per-server allocation (W), in server index order.
    pub server_allocs: Vec<f64>,
    /// `(depth, share)` for every node in depth-first preorder; the root
    /// is `(0, budget)`.
    pub node_shares: Vec<(usize, f64)>,
}

/// Max–min water-filling with **per-member floors**: the generalization
/// of [`capgpu::rack::water_fill`] needed at interior tree nodes, where
/// each child's floor is the sum of its subtree's per-server floors (and
/// therefore differs per child).
///
/// Semantics match the flat rack exactly when all floors are equal:
/// floors are granted first (scaled proportionally if the budget cannot
/// cover them), the remainder iteratively satisfies the smallest unmet
/// demand, and any surplus is spread evenly. Σ alloc == budget whenever
/// `budget ≥ 0` (conservation).
pub fn water_fill_floors(demands: &[f64], floors: &[f64], budget: f64) -> Vec<f64> {
    let n = demands.len();
    assert_eq!(n, floors.len(), "demands/floors length mismatch");
    if n == 0 {
        return vec![];
    }
    if budget <= 0.0 {
        return vec![0.0; n];
    }
    let floors: Vec<f64> = floors.iter().map(|f| f.max(0.0)).collect();
    let floor_sum: f64 = floors.iter().sum();
    let mut alloc: Vec<f64> = if floor_sum > budget {
        // Budget cannot cover the floors: scale them proportionally.
        floors.iter().map(|f| budget * f / floor_sum).collect()
    } else {
        floors
    };
    let mut remaining = budget - alloc.iter().sum::<f64>();
    // Iteratively satisfy the smallest unmet demand (classic water-fill).
    let mut unmet: Vec<usize> = (0..n).filter(|&i| demands[i] > alloc[i]).collect();
    while remaining > 1e-9 && !unmet.is_empty() {
        let share = remaining / unmet.len() as f64;
        let mut consumed = 0.0;
        let mut still_unmet = Vec::with_capacity(unmet.len());
        for &i in &unmet {
            let want = demands[i] - alloc[i];
            let take = want.min(share);
            alloc[i] += take;
            consumed += take;
            if demands[i] > alloc[i] + 1e-12 {
                still_unmet.push(i);
            }
        }
        remaining -= consumed;
        if consumed <= 1e-12 {
            break;
        }
        unmet = still_unmet;
    }
    // Spread any surplus evenly.
    if remaining > 1e-9 {
        let share = remaining / n as f64;
        for a in alloc.iter_mut() {
            *a += share;
        }
    }
    alloc
}

impl FleetTopology {
    /// Validates and flattens a budget tree.
    ///
    /// A server's **rack** is its immediate parent group; racks are
    /// numbered in depth-first order of first appearance. Groups must be
    /// non-empty and labelled; the tree must contain at least one server.
    ///
    /// # Errors
    /// Rejects empty groups, empty labels, zero-server trees, and a bare
    /// server root (every server needs a parent rack).
    pub fn new(root: Node) -> Result<Self> {
        let mut topo = FleetTopology {
            root: Node::Group {
                label: String::new(),
                children: vec![],
            },
            servers: Vec::new(),
            rack_of: Vec::new(),
            rack_labels: Vec::new(),
        };
        match &root {
            Node::Server(_) => {
                return Err(CapGpuError::BadConfig(
                    "fleet root must be a group, not a bare server".into(),
                ));
            }
            Node::Group { .. } => topo.flatten(&root, None)?,
        }
        if topo.servers.is_empty() {
            return Err(CapGpuError::BadConfig("fleet needs >= 1 server".into()));
        }
        topo.root = root;
        Ok(topo)
    }

    fn flatten(&mut self, node: &Node, parent_rack: Option<usize>) -> Result<()> {
        match node {
            Node::Server(spec) => {
                let rack = parent_rack
                    .ok_or_else(|| CapGpuError::BadConfig("server outside any group".into()))?;
                self.servers.push(spec.clone());
                self.rack_of.push(rack);
            }
            Node::Group { label, children } => {
                if label.is_empty() {
                    return Err(CapGpuError::BadConfig(
                        "group label must be non-empty".into(),
                    ));
                }
                if children.is_empty() {
                    return Err(CapGpuError::BadConfig(format!(
                        "group '{label}' has no children"
                    )));
                }
                // This group is a rack iff it directly parents servers.
                let mut rack_id = None;
                if children.iter().any(|c| matches!(c, Node::Server(_))) {
                    rack_id = Some(self.rack_labels.len());
                    self.rack_labels.push(label.clone());
                }
                for child in children {
                    self.flatten(child, rack_id)?;
                }
            }
        }
        Ok(())
    }

    /// Convenience builder: a two-level datacenter of `racks` racks with
    /// `per_rack` servers each, the server at `(rack, slot)` produced by
    /// `make`.
    ///
    /// # Errors
    /// Propagates [`FleetTopology::new`] validation.
    pub fn datacenter(
        racks: usize,
        per_rack: usize,
        mut make: impl FnMut(usize, usize) -> ServerSpec,
    ) -> Result<Self> {
        let children = (0..racks)
            .map(|r| Node::Group {
                label: format!("rack-{r}"),
                children: (0..per_rack).map(|s| Node::Server(make(r, s))).collect(),
            })
            .collect();
        FleetTopology::new(Node::Group {
            label: "dc".into(),
            children,
        })
    }

    /// Leaf servers in canonical (depth-first) index order.
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// Number of leaf servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True when the tree has no servers (cannot happen by construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Rack index of each server, in server index order.
    pub fn rack_of(&self) -> &[usize] {
        &self.rack_of
    }

    /// Rack labels, in rack index order.
    pub fn rack_labels(&self) -> &[String] {
        &self.rack_labels
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.rack_labels.len()
    }

    /// Hierarchically water-fills `budget` down the tree against
    /// per-server `demands` and `floors` (both in server index order):
    /// at each node the children's aggregate subtree demands/floors
    /// compete for the node's share, and each child's award recurses.
    ///
    /// On a depth-1 tree (one group of servers) this reduces to the flat
    /// rack division.
    ///
    /// # Panics
    /// If `demands`/`floors` length differs from the server count.
    pub fn divide(&self, budget: f64, demands: &[f64], floors: &[f64]) -> Division {
        assert_eq!(demands.len(), self.len(), "demands length");
        assert_eq!(floors.len(), self.len(), "floors length");
        let mut division = Division {
            server_allocs: vec![0.0; self.len()],
            node_shares: Vec::new(),
        };
        Self::divide_node(&self.root, budget, demands, floors, 0, 0, &mut division);
        division
    }

    /// Divides by equal split at every level — the static baseline the
    /// fleet experiment compares against: each group splits its share
    /// evenly among children regardless of demand.
    pub fn divide_equal(&self, budget: f64) -> Division {
        let mut division = Division {
            server_allocs: vec![0.0; self.len()],
            node_shares: Vec::new(),
        };
        Self::equal_node(&self.root, budget, 0, 0, &mut division);
        division
    }

    fn equal_node(node: &Node, budget: f64, leaf_offset: usize, depth: usize, out: &mut Division) {
        out.node_shares.push((depth, budget));
        match node {
            Node::Server(_) => out.server_allocs[leaf_offset] = budget,
            Node::Group { children, .. } => {
                let share = budget / children.len() as f64;
                let mut off = leaf_offset;
                for child in children {
                    Self::equal_node(child, share, off, depth + 1, out);
                    off += child.leaf_count();
                }
            }
        }
    }

    fn divide_node(
        node: &Node,
        budget: f64,
        demands: &[f64],
        floors: &[f64],
        leaf_offset: usize,
        depth: usize,
        out: &mut Division,
    ) {
        out.node_shares.push((depth, budget));
        match node {
            Node::Server(_) => out.server_allocs[leaf_offset] = budget,
            Node::Group { children, .. } => {
                let counts: Vec<usize> = children.iter().map(Node::leaf_count).collect();
                let mut child_demand = Vec::with_capacity(children.len());
                let mut child_floor = Vec::with_capacity(children.len());
                let mut off = 0;
                for &c in &counts {
                    child_demand.push(demands[off..off + c].iter().sum::<f64>());
                    child_floor.push(floors[off..off + c].iter().sum::<f64>());
                    off += c;
                }
                let shares = water_fill_floors(&child_demand, &child_floor, budget);
                let mut off = 0;
                for (ci, child) in children.iter().enumerate() {
                    Self::divide_node(
                        child,
                        shares[ci],
                        &demands[off..off + counts[ci]],
                        &floors[off..off + counts[ci]],
                        leaf_offset + off,
                        depth + 1,
                        out,
                    );
                    off += counts[ci];
                }
            }
        }
    }
}

impl Division {
    /// Largest violation of Σ children > parent across all interior
    /// nodes (W); ≤ ~1e-9 by construction. Walks the preorder/depth
    /// encoding: a node's children are the maximal following run of
    /// nodes one level deeper.
    pub fn max_child_sum_violation(&self) -> f64 {
        let mut worst = 0.0_f64;
        for (i, &(depth, share)) in self.node_shares.iter().enumerate() {
            let mut child_sum = 0.0;
            let mut any = false;
            for &(d, s) in &self.node_shares[i + 1..] {
                if d <= depth {
                    break;
                }
                if d == depth + 1 {
                    child_sum += s;
                    any = true;
                }
            }
            if any {
                worst = worst.max(child_sum - share);
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(class: usize, streams: u32) -> ServerSpec {
        ServerSpec { class, streams }
    }

    fn two_rack_tree() -> FleetTopology {
        FleetTopology::new(Node::Group {
            label: "dc".into(),
            children: vec![
                Node::Group {
                    label: "rack-a".into(),
                    children: vec![Node::Server(spec(0, 4)), Node::Server(spec(0, 4))],
                },
                Node::Group {
                    label: "rack-b".into(),
                    children: vec![Node::Server(spec(1, 4))],
                },
            ],
        })
        .expect("valid tree")
    }

    #[test]
    fn flattening_orders_servers_and_racks_depth_first() {
        let t = two_rack_tree();
        assert_eq!(t.len(), 3);
        assert_eq!(t.rack_of(), &[0, 0, 1]);
        assert_eq!(
            t.rack_labels(),
            &["rack-a".to_string(), "rack-b".to_string()]
        );
        assert_eq!(t.servers()[2].class, 1);
    }

    #[test]
    fn validation_rejects_degenerate_trees() {
        assert!(FleetTopology::new(Node::Server(spec(0, 1))).is_err());
        assert!(FleetTopology::new(Node::Group {
            label: "dc".into(),
            children: vec![],
        })
        .is_err());
        assert!(FleetTopology::new(Node::Group {
            label: String::new(),
            children: vec![Node::Server(spec(0, 1))],
        })
        .is_err());
    }

    #[test]
    fn hierarchical_division_conserves_at_every_level() {
        let t = two_rack_tree();
        let d = t.divide(2000.0, &[900.0, 400.0, 1200.0], &[100.0, 100.0, 100.0]);
        assert!((d.server_allocs.iter().sum::<f64>() - 2000.0).abs() < 1e-9);
        assert!(d.max_child_sum_violation() < 1e-9);
        // Root share recorded first, at depth 0.
        assert_eq!(d.node_shares[0], (0, 2000.0));
    }

    #[test]
    fn hierarchy_shields_small_rack_from_large_neighbor() {
        // rack-a aggregates 1300 W of demand, rack-b 1200 W; at the top
        // level the 2000 W budget water-fills *between racks* first, so
        // rack-b's single hungry server cannot starve rack-a's pair the
        // way it could in a flat division.
        let t = two_rack_tree();
        let d = t.divide(2000.0, &[900.0, 400.0, 1200.0], &[0.0; 3]);
        let rack_a = d.server_allocs[0] + d.server_allocs[1];
        assert!((rack_a - 1000.0).abs() < 1e-6, "rack-a got {rack_a}");
        // Within rack-a the small server is fully satisfied.
        assert!((d.server_allocs[1] - 400.0).abs() < 1e-6);
    }

    #[test]
    fn equal_split_ignores_demand() {
        let t = two_rack_tree();
        let d = t.divide_equal(2000.0);
        assert_eq!(d.server_allocs, vec![500.0, 500.0, 1000.0]);
        assert!(d.max_child_sum_violation() < 1e-9);
    }

    #[test]
    fn water_fill_floors_matches_uniform_floor_water_fill() {
        let demands = [500.0, 800.0, 1200.0];
        let flat = capgpu::rack::water_fill(&demands, 2000.0, 100.0);
        let tree = water_fill_floors(&demands, &[100.0; 3], 2000.0);
        for (a, b) in flat.iter().zip(tree.iter()) {
            assert!((a - b).abs() < 1e-9, "flat {a} vs floors {b}");
        }
    }

    #[test]
    fn water_fill_floors_scales_unaffordable_floors() {
        let alloc = water_fill_floors(&[0.0, 0.0], &[300.0, 100.0], 200.0);
        assert!((alloc[0] - 150.0).abs() < 1e-9);
        assert!((alloc[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_floors_edge_cases() {
        assert!(water_fill_floors(&[], &[], 100.0).is_empty());
        assert_eq!(water_fill_floors(&[500.0], &[0.0], -5.0), vec![0.0]);
        let alloc = water_fill_floors(&[100.0, 100.0], &[0.0, 0.0], 1000.0);
        assert!((alloc[0] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn datacenter_builder_shapes_the_grid() {
        let t = FleetTopology::datacenter(4, 8, |r, s| spec((r + s) % 3, 4)).expect("grid");
        assert_eq!(t.len(), 32);
        assert_eq!(t.num_racks(), 4);
        assert!(t.rack_of().iter().all(|&r| r < 4));
    }
}
