//! Power-aware request-stream migration.
//!
//! When a server's local budget binds — it sits pinned at its assigned
//! set point *and* misses SLOs — no amount of local control recovers the
//! lost latency: the power simply is not there. The fleet's second lever
//! is the request router: move one of the server's request streams to a
//! server with spare *power capacity* (headroom below its achievable
//! peak), where the hierarchical allocator can fund the displaced load
//! next epoch. This mirrors the joint capping-plus-routing control in
//! "Power Aware Dynamic Reallocation For Inference" (PAPERS.md): capping
//! decides how much power a server gets, routing decides how much work.
//!
//! The planner is deterministic: donors are ordered by (misses desc,
//! index asc), receivers by (capacity headroom desc, index asc), pairing
//! is greedy, one stream per pair, each server participates at most once
//! per epoch (hysteresis against ping-ponging).

use crate::sim::ServerStat;

/// Migration policy knobs.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Maximum migrations per allocator epoch.
    pub max_per_epoch: usize,
    /// A server must miss at least this many SLOs in the epoch to shed
    /// load.
    pub min_misses: u64,
    /// "Pinned at the cap" band (W): overloaded means
    /// `measured ≥ assigned − band`.
    pub binding_band_watts: f64,
    /// A receiver must have at least this much capacity headroom
    /// (`max_watts − measured`) to accept a stream.
    pub headroom_watts: f64,
    /// A receiver's epoch miss rate (misses / (misses + completed)) must
    /// not exceed this — occasional Poisson-burst misses do not
    /// disqualify an otherwise healthy server.
    pub receiver_max_miss_rate: f64,
    /// Hard per-server stream ceiling for receivers.
    pub max_streams: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            max_per_epoch: 8,
            min_misses: 1,
            binding_band_watts: 12.0,
            headroom_watts: 40.0,
            receiver_max_miss_rate: 0.002,
            max_streams: 16,
        }
    }
}

/// One planned stream migration (always a single stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Migration {
    /// Shedding server (index).
    pub from: usize,
    /// Receiving server (index).
    pub to: usize,
}

/// Plans this epoch's migrations from the epoch's per-server statistics.
///
/// Pure and deterministic: identical stats produce identical plans
/// regardless of thread count or call site.
pub fn plan(stats: &[ServerStat], cfg: &MigrationConfig) -> Vec<Migration> {
    if cfg.max_per_epoch == 0 {
        return vec![];
    }
    // Donors: binding budget, real misses, and at least one stream to
    // spare (never drain a server to zero offered load).
    let mut donors: Vec<usize> = (0..stats.len())
        .filter(|&i| {
            let s = &stats[i];
            s.streams >= 2
                && s.misses >= cfg.min_misses
                && s.measured >= s.assigned - cfg.binding_band_watts
        })
        .collect();
    donors.sort_by(|&a, &b| stats[b].misses.cmp(&stats[a].misses).then(a.cmp(&b)));

    // Receivers: (near) miss-free with spare power capacity the
    // allocator can still fund (power-aware: headroom is to the
    // server's achievable peak, not to its current assignment).
    let miss_rate = |i: usize| {
        let s = &stats[i];
        let total = s.misses + s.completed;
        if total == 0 {
            0.0
        } else {
            s.misses as f64 / total as f64
        }
    };
    let mut receivers: Vec<usize> = (0..stats.len())
        .filter(|&i| {
            let s = &stats[i];
            s.streams < cfg.max_streams
                && miss_rate(i) <= cfg.receiver_max_miss_rate
                && s.max_watts - s.measured >= cfg.headroom_watts
        })
        .collect();
    receivers.sort_by(|&a, &b| {
        let ha = stats[a].max_watts - stats[a].measured;
        let hb = stats[b].max_watts - stats[b].measured;
        hb.total_cmp(&ha).then(a.cmp(&b))
    });

    let mut plans = Vec::new();
    let mut ri = 0;
    for &from in &donors {
        if plans.len() >= cfg.max_per_epoch || ri >= receivers.len() {
            break;
        }
        let to = receivers[ri];
        if to == from {
            // A server passing both filters takes no part in migration —
            // possible only with a permissive receiver_max_miss_rate.
            ri += 1;
            continue;
        }
        plans.push(Migration { from, to });
        ri += 1;
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(streams: u32, assigned: f64, measured: f64, max_watts: f64, misses: u64) -> ServerStat {
        ServerStat {
            rack: 0,
            class: 0,
            streams,
            demand: assigned,
            min_watts: 500.0,
            max_watts,
            assigned,
            measured,
            misses,
            completed: 100,
        }
    }

    #[test]
    fn overloaded_sheds_to_biggest_headroom() {
        let stats = vec![
            stat(6, 900.0, 898.0, 1200.0, 40), // pinned + missing → donor
            stat(4, 900.0, 700.0, 1200.0, 0),  // 500 W headroom
            stat(4, 900.0, 650.0, 1200.0, 0),  // 550 W headroom → first receiver
        ];
        let plans = plan(&stats, &MigrationConfig::default());
        assert_eq!(plans, vec![Migration { from: 0, to: 2 }]);
    }

    #[test]
    fn unpinned_or_missfree_servers_do_not_shed() {
        let cfg = MigrationConfig::default();
        // Missing SLOs but *not* pinned: more power is still available
        // locally, migration is not the right lever.
        let stats = vec![
            stat(6, 900.0, 700.0, 1200.0, 40),
            stat(4, 900.0, 650.0, 1200.0, 0),
        ];
        assert!(plan(&stats, &cfg).is_empty());
        // Pinned but miss-free: the cap binds yet SLOs hold — no action.
        let stats = vec![
            stat(6, 900.0, 899.0, 1200.0, 0),
            stat(4, 900.0, 650.0, 1200.0, 0),
        ];
        assert!(plan(&stats, &cfg).is_empty());
    }

    #[test]
    fn single_stream_servers_never_drain() {
        let stats = vec![
            stat(1, 900.0, 899.0, 1200.0, 50),
            stat(4, 900.0, 650.0, 1200.0, 0),
        ];
        assert!(plan(&stats, &MigrationConfig::default()).is_empty());
    }

    #[test]
    fn caps_and_ceilings_bound_the_plan() {
        let cfg = MigrationConfig {
            max_per_epoch: 1,
            ..MigrationConfig::default()
        };
        let stats = vec![
            stat(6, 900.0, 899.0, 1200.0, 40),
            stat(6, 900.0, 899.0, 1200.0, 30),
            stat(4, 900.0, 650.0, 1200.0, 0),
            stat(4, 900.0, 640.0, 1200.0, 0),
        ];
        assert_eq!(plan(&stats, &cfg).len(), 1);
        // Full receivers are skipped.
        let stats = vec![
            stat(6, 900.0, 899.0, 1200.0, 40),
            stat(16, 900.0, 650.0, 1200.0, 0),
        ];
        assert!(plan(&stats, &MigrationConfig::default()).is_empty());
    }

    #[test]
    fn plan_is_deterministic_under_ties() {
        // Equal misses and equal headroom: index breaks both ties.
        let stats = vec![
            stat(6, 900.0, 899.0, 1200.0, 40),
            stat(6, 900.0, 899.0, 1200.0, 40),
            stat(4, 900.0, 650.0, 1200.0, 0),
            stat(4, 900.0, 650.0, 1200.0, 0),
        ];
        let a = plan(&stats, &MigrationConfig::default());
        let b = plan(&stats, &MigrationConfig::default());
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![Migration { from: 0, to: 2 }, Migration { from: 1, to: 3 }]
        );
    }
}
