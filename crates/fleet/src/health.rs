//! Fleet health: the `capgpu-obs` control-loop analyzer lifted to fleet
//! scope — one streaming detector bank per rack, fed from the epoch
//! fold a [`FleetReport`](crate::sim::FleetReport) already carries, so
//! a completed fleet run can be triaged without re-simulating.
//!
//! Signal mapping (rack epoch → [`PeriodSample`]):
//! - power / cap: rack measured vs. assigned watts — cap-violation burn
//!   fires when a rack sustainedly draws past its allocated budget.
//! - actuation: the epoch-over-epoch change in the rack's assigned
//!   budget (W stands in for MHz; the oscillation detector only looks
//!   at sign flips above its hysteresis band, so the unit is free).
//! - meter silence: a rack that measured no power at all.
//! - saturation: every server in the rack pinned at its set point.
//! - SLO burn: rack misses over batches completed.

use crate::sim::FleetReport;
use crate::{CapGpuError, Result};
use capgpu_obs::analyzer::{AnalyzerConfig, HealthAnalyzer, PeriodSample, Verdict, DETECTORS};

/// Final detector verdicts for one rack.
#[derive(Debug, Clone, PartialEq)]
pub struct RackHealth {
    /// Rack index (topology order).
    pub rack: usize,
    /// Final verdict per detector, in [`DETECTORS`] order.
    pub verdicts: [(&'static str, Verdict); DETECTORS.len()],
    /// Worst final verdict.
    pub overall: Verdict,
    /// Verdict transitions observed across the epochs (edge count).
    pub edges: usize,
}

/// Fleet-wide health roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealth {
    /// Per-rack health, rack index order.
    pub racks: Vec<RackHealth>,
    /// Racks whose overall verdict is [`Verdict::Ok`].
    pub ok: usize,
    /// Racks at [`Verdict::Warn`].
    pub warn: usize,
    /// Racks at [`Verdict::Critical`].
    pub critical: usize,
}

impl FleetHealth {
    /// Worst overall verdict across racks ([`Verdict::Ok`] for an
    /// empty fleet).
    pub fn overall(&self) -> Verdict {
        self.racks
            .iter()
            .map(|r| r.overall)
            .max()
            .unwrap_or(Verdict::Ok)
    }
}

/// Runs one analyzer per rack over the report's epoch sequence.
///
/// # Errors
/// [`CapGpuError::BadConfig`] on invalid analyzer tuning.
pub fn analyze(report: &FleetReport, cfg: &AnalyzerConfig) -> Result<FleetHealth> {
    let n_racks = report.epochs.first().map_or(0, |e| e.racks.len());
    // Per-rack server counts, for the "fully pinned" saturation signal.
    let mut rack_servers = vec![0usize; n_racks];
    for s in &report.stats {
        if s.rack < n_racks {
            rack_servers[s.rack] += 1;
        }
    }
    let mut analyzers = Vec::with_capacity(n_racks);
    for _ in 0..n_racks {
        analyzers.push(
            HealthAnalyzer::new(cfg.clone())
                .map_err(|e| CapGpuError::BadConfig(format!("fleet health: {e}")))?,
        );
    }
    let mut edges = vec![0usize; n_racks];
    let mut prev_assigned: Vec<Option<f64>> = vec![None; n_racks];
    for epoch in &report.epochs {
        for (r, rack) in epoch.racks.iter().enumerate().take(n_racks) {
            let sample = PeriodSample {
                power_w: rack.measured,
                cap_w: rack.assigned,
                delta_f_mhz: prev_assigned[r].map_or(0.0, |p| rack.assigned - p),
                meter_stale: rack.measured <= 0.0,
                saturated: rack_servers[r] > 0 && rack.binding_servers == rack_servers[r],
                slo_miss_frac: if rack.completed > 0 {
                    rack.misses as f64 / rack.completed as f64
                } else {
                    0.0
                },
            };
            prev_assigned[r] = Some(rack.assigned);
            edges[r] += analyzers[r].observe(&sample).len();
        }
    }
    let racks: Vec<RackHealth> = analyzers
        .iter()
        .enumerate()
        .map(|(rack, a)| RackHealth {
            rack,
            verdicts: a.verdicts(),
            overall: a.overall(),
            edges: edges[rack],
        })
        .collect();
    let ok = racks.iter().filter(|r| r.overall == Verdict::Ok).count();
    let warn = racks.iter().filter(|r| r.overall == Verdict::Warn).count();
    let critical = racks
        .iter()
        .filter(|r| r.overall == Verdict::Critical)
        .count();
    Ok(FleetHealth {
        racks,
        ok,
        warn,
        critical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{EpochReport, RackEpoch, ServerStat};

    fn rack_epoch(assigned: f64, measured: f64, misses: u64, binding: usize) -> RackEpoch {
        RackEpoch {
            assigned,
            measured,
            misses,
            completed: 100,
            binding_servers: binding,
            worst_p99_s: 0.1,
        }
    }

    fn stat(rack: usize) -> ServerStat {
        ServerStat {
            rack,
            class: 0,
            streams: 1,
            demand: 900.0,
            min_watts: 400.0,
            max_watts: 1200.0,
            assigned: 900.0,
            measured: 890.0,
            misses: 0,
            completed: 100,
        }
    }

    fn report(epochs: Vec<EpochReport>, stats: Vec<ServerStat>) -> FleetReport {
        let server_periods = stats.len() * epochs.len();
        FleetReport {
            epochs,
            stats,
            server_periods,
            reorder_window: 1,
            peak_pending: 1,
            peak_live_traces: 1,
        }
    }

    #[test]
    fn healthy_fleet_is_all_ok() {
        let epochs = (0..10)
            .map(|_| EpochReport {
                racks: vec![rack_epoch(1800.0, 1750.0, 0, 0); 2],
                migrations: Vec::new(),
            })
            .collect();
        let r = report(epochs, vec![stat(0), stat(0), stat(1), stat(1)]);
        let h = analyze(&r, &AnalyzerConfig::default()).unwrap();
        assert_eq!(h.racks.len(), 2);
        assert_eq!((h.ok, h.warn, h.critical), (2, 0, 0));
        assert_eq!(h.overall(), Verdict::Ok);
    }

    #[test]
    fn over_budget_rack_burns_while_others_stay_ok() {
        // Rack 0 draws 40 W over budget every epoch; rack 1 is healthy.
        let epochs: Vec<EpochReport> = (0..40)
            .map(|_| EpochReport {
                racks: vec![
                    rack_epoch(1800.0, 1840.0, 0, 0),
                    rack_epoch(1800.0, 1750.0, 0, 0),
                ],
                migrations: Vec::new(),
            })
            .collect();
        let r = report(epochs, vec![stat(0), stat(0), stat(1), stat(1)]);
        let h = analyze(&r, &AnalyzerConfig::default()).unwrap();
        assert_eq!(h.racks[0].overall, Verdict::Critical);
        assert_eq!(h.racks[1].overall, Verdict::Ok);
        assert_eq!(h.critical, 1);
        assert!(h.racks[0].edges >= 1, "burn must edge-trigger");
        let burn = h.racks[0]
            .verdicts
            .iter()
            .find(|(n, _)| *n == "cap_violation_burn")
            .unwrap()
            .1;
        assert_eq!(burn, Verdict::Critical);
    }

    #[test]
    fn fully_pinned_rack_trips_saturation_dwell() {
        // Both servers in rack 0 sit at their set point all run.
        let epochs: Vec<EpochReport> = (0..40)
            .map(|_| EpochReport {
                racks: vec![rack_epoch(1800.0, 1795.0, 0, 2)],
                migrations: Vec::new(),
            })
            .collect();
        let r = report(epochs, vec![stat(0), stat(0)]);
        let h = analyze(&r, &AnalyzerConfig::default()).unwrap();
        let dwell = h.racks[0]
            .verdicts
            .iter()
            .find(|(n, _)| *n == "saturation_dwell")
            .unwrap()
            .1;
        assert_ne!(dwell, Verdict::Ok, "sustained pinning must at least warn");
    }

    #[test]
    fn empty_report_yields_empty_health() {
        let h = analyze(&report(Vec::new(), Vec::new()), &AnalyzerConfig::default()).unwrap();
        assert!(h.racks.is_empty());
        assert_eq!(h.overall(), Verdict::Ok);
    }
}
