//! Ready-made server classes for fleet experiments.

use capgpu::prelude::*;

use crate::sim::ServerClass;

/// Nominal request streams per server for the stock classes: at this
/// stream count the class scenario's arrival rates apply unscaled.
pub const NOMINAL_STREAMS: u32 = 4;

/// Enables the serving layer on a scenario the way
/// [`Scenario::serving_testbed`] does — per-task Poisson arrivals at
/// `rate_factor` × the 60 %-of-capacity baseline, SLOs of 4× each
/// model's full-batch time.
fn with_serving(mut s: Scenario, rate_factor: f64) -> Scenario {
    let rates: Vec<f64> = s
        .gpu_models
        .iter()
        .map(|m| rate_factor * 0.6 * m.batch_size as f64 / m.e_min_s)
        .collect();
    s.slos = s.gpu_models.iter().map(|m| Some(4.0 * m.e_min_s)).collect();
    s.serving = Some(ServingConfig::poisson(&rates));
    s
}

/// Three mixed-generation serving classes — the paper's V100 testbed
/// plus A100 and H100 variants (`capgpu-sim::presets`). Newer
/// generations host moderately more offered load and present much wider
/// power ranges (steeper W/MHz), giving the hierarchical allocator
/// genuinely asymmetric demand ceilings to divide against.
pub fn mixed_generation_classes(seed: u64) -> Vec<ServerClass> {
    let v100 = ServerClass {
        label: "v100-serving".into(),
        scenario: Scenario::serving_testbed(seed),
        nominal_streams: NOMINAL_STREAMS,
    };

    let mut a100_scenario = Scenario::paper_testbed(seed.wrapping_add(1));
    a100_scenario.devices = vec![
        capgpu_sim::presets::xeon_gold_5215(),
        capgpu_sim::presets::a100(),
        capgpu_sim::presets::a100(),
        capgpu_sim::presets::a100(),
    ];
    a100_scenario.platform_watts = 360.0;
    let a100 = ServerClass {
        label: "a100-serving".into(),
        scenario: with_serving(a100_scenario, 1.1),
        nominal_streams: NOMINAL_STREAMS,
    };

    let mut h100_scenario = Scenario::paper_testbed(seed.wrapping_add(2));
    h100_scenario.devices = vec![
        capgpu_sim::presets::xeon_gold_5215(),
        capgpu_sim::presets::h100(),
        capgpu_sim::presets::h100(),
        capgpu_sim::presets::h100(),
    ];
    h100_scenario.platform_watts = 420.0;
    let h100 = ServerClass {
        label: "h100-serving".into(),
        scenario: with_serving(h100_scenario, 1.2),
        nominal_streams: NOMINAL_STREAMS,
    };

    vec![v100, a100, h100]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_classes_are_serving_enabled_and_distinct() {
        let classes = mixed_generation_classes(7);
        assert_eq!(classes.len(), 3);
        for c in &classes {
            assert!(c.scenario.serving.is_some(), "{} lacks serving", c.label);
            assert!(c.scenario.slos.iter().all(Option::is_some));
            assert_eq!(c.nominal_streams, NOMINAL_STREAMS);
        }
        // Device generations actually differ.
        assert_ne!(
            classes[0].scenario.devices[1].name,
            classes[1].scenario.devices[1].name
        );
        assert_ne!(
            classes[1].scenario.devices[1].name,
            classes[2].scenario.devices[1].name
        );
    }
}
