//! Sharded, memory-bounded, deterministic fleet simulation.
//!
//! Every leaf server runs the full CapGPU stack — `ExperimentRunner`,
//! identified model, MPC controller, serving layer — unchanged. The fleet
//! layer adds the epoch loop: hierarchically divide the datacenter budget
//! over observed demand ([`crate::topology`]), step every server one
//! epoch at its assigned set point, fold each finished server trace into
//! per-rack accumulators, update demand estimates, and plan request
//! migrations ([`crate::balancer`]) for the next epoch.
//!
//! # Sharding and determinism
//!
//! Within an epoch, servers are independent: each steps against its own
//! set point with no shared state, so workers claim server indices from
//! an atomic counter exactly like `SweepSpec::streaming_with_threads`
//! claims sweep cells. Determinism across thread counts follows from two
//! facts: (1) each server's epoch is a pure function of its carried state
//! and its epoch inputs, and (2) everything cross-server — rack
//! accumulation, demand updates, allocator input, migration planning —
//! happens in server index order at the fold frontier, gated by the same
//! bounded reorder window the streaming sweep uses (and sharing its
//! [`capgpu::sweep::default_reorder_window`] default). The epoch boundary
//! is a hard barrier: the allocator only ever sees a completely folded
//! epoch, so 1, 2, 4 and 8 worker threads produce bit-identical reports.
//!
//! # Memory
//!
//! A server's `RunTrace` lives only between `run()` returning and the
//! fold consuming it: at most `threads` traces plus `reorder_window`
//! pending summaries exist at any instant, independent of fleet size or
//! horizon. Persistent state is O(servers) (`ServerStat` scalars plus
//! each server's runner) and O(racks × epochs) report rows — never
//! O(servers × periods). The report carries `peak_pending` and
//! `peak_live_traces` so callers can *assert* the bound rather than
//! trust it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use capgpu::controllers::CapGpuController;
use capgpu::prelude::*;
use capgpu::sweep::default_reorder_window;
use capgpu::{CapGpuError, Result};

use crate::balancer::{self, Migration, MigrationConfig};
use crate::topology::FleetTopology;

/// Demand-update noise band (W), matching `capgpu::rack`.
const NOISE_BAND_WATTS: f64 = 8.0;
/// Demand-update probe increment (W), matching `capgpu::rack`.
const RELEASE_MARGIN_WATTS: f64 = 15.0;
/// "Budget binds" band (W) for per-rack binding-server counts.
const BINDING_BAND_WATTS: f64 = 10.0;
/// Steady-state tail fraction for per-epoch measured power.
const STEADY_TAIL: f64 = 0.6;

/// One server class: a scenario template shared by every server of the
/// class. Identification runs once per class; each server clones the
/// identified runner and then evolves independently.
#[derive(Debug, Clone)]
pub struct ServerClass {
    /// Display label ("v100-serving", …).
    pub label: String,
    /// Scenario every server of this class runs. Must have the serving
    /// layer enabled if stream counts ever differ from
    /// `nominal_streams` (startup or migration).
    pub scenario: Scenario,
    /// Stream count at which the scenario's configured arrival rates
    /// apply unscaled (offered load scales as `streams / nominal`).
    pub nominal_streams: u32,
}

/// Which division rule the allocator applies each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorMode {
    /// Demand-driven hierarchical water-filling (the paper-extending
    /// policy under test).
    Hierarchical,
    /// Static equal split at every tree level (the baseline).
    EqualSplit,
}

/// Fleet experiment configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Datacenter (root) power budget (W).
    pub budget_watts: f64,
    /// Number of allocator epochs to run.
    pub epochs: usize,
    /// Control periods per epoch.
    pub epoch_periods: usize,
    /// Division rule.
    pub allocator: AllocatorMode,
    /// Stream migration policy; `None` disables migration.
    pub migration: Option<MigrationConfig>,
    /// Reorder-window override for shard folding; `None` uses
    /// [`capgpu::sweep::default_reorder_window`] — the same knob as the
    /// streaming sweep.
    pub reorder_window: Option<usize>,
    /// Extra per-server floor (W) on top of each server's identified
    /// feasible minimum.
    pub min_share_watts: f64,
}

impl FleetConfig {
    /// A hierarchical-allocator configuration with migration enabled and
    /// default epoch geometry.
    pub fn new(budget_watts: f64) -> Self {
        FleetConfig {
            budget_watts,
            epochs: 12,
            epoch_periods: 8,
            allocator: AllocatorMode::Hierarchical,
            migration: Some(MigrationConfig::default()),
            reorder_window: None,
            min_share_watts: 0.0,
        }
    }
}

/// Per-server scalar state — the only per-server data the fleet layer
/// retains (O(servers) memory).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStat {
    /// Rack index (from the topology).
    pub rack: usize,
    /// Server-class index.
    pub class: usize,
    /// Request streams currently hosted.
    pub streams: u32,
    /// Demand estimate feeding the next allocation (W).
    pub demand: f64,
    /// Identified feasible minimum power (W).
    pub min_watts: f64,
    /// Identified feasible maximum power (W).
    pub max_watts: f64,
    /// Set point assigned in the last epoch (W).
    pub assigned: f64,
    /// Steady-state measured power over the last epoch (W).
    pub measured: f64,
    /// SLO misses in the last epoch.
    pub misses: u64,
    /// Batches completed in the last epoch.
    pub completed: u64,
}

/// Per-rack accumulator for one epoch — the `GroupSummary`-style fold
/// target: O(racks), not O(servers × periods).
#[derive(Debug, Clone, PartialEq)]
pub struct RackEpoch {
    /// Σ assigned set points over the rack's servers (W) — the rack's
    /// effective budget this epoch.
    pub assigned: f64,
    /// Σ steady-state measured power (W).
    pub measured: f64,
    /// Σ SLO misses.
    pub misses: u64,
    /// Σ batches completed.
    pub completed: u64,
    /// Servers pinned at their set point (measured within the binding
    /// band of assigned).
    pub binding_servers: usize,
    /// Worst per-task p99 latency across the rack's servers (s).
    pub worst_p99_s: f64,
}

impl RackEpoch {
    fn zero() -> Self {
        RackEpoch {
            assigned: 0.0,
            measured: 0.0,
            misses: 0,
            completed: 0,
            binding_servers: 0,
            worst_p99_s: 0.0,
        }
    }
}

/// One allocator epoch in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Per-rack accumulators, in rack index order.
    pub racks: Vec<RackEpoch>,
    /// Migrations planned at the end of this epoch (applied at the start
    /// of the next).
    pub migrations: Vec<Migration>,
}

impl EpochReport {
    /// Fleet-total assigned power (W).
    pub fn assigned_watts(&self) -> f64 {
        self.racks.iter().map(|r| r.assigned).sum()
    }

    /// Fleet-total measured power (W).
    pub fn measured_watts(&self) -> f64 {
        self.racks.iter().map(|r| r.measured).sum()
    }

    /// Fleet-total SLO misses.
    pub fn misses(&self) -> u64 {
        self.racks.iter().map(|r| r.misses).sum()
    }

    /// Fleet-total batches completed.
    pub fn completed(&self) -> u64 {
        self.racks.iter().map(|r| r.completed).sum()
    }
}

/// Full fleet report. Equality deliberately ignores the memory
/// instrumentation (`peak_pending`, `peak_live_traces`) — those vary
/// with thread count; everything else is bit-identical across 1/2/4/8
/// threads.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One entry per allocator epoch.
    pub epochs: Vec<EpochReport>,
    /// Final per-server statistics, in server index order.
    pub stats: Vec<ServerStat>,
    /// Server-periods simulated (servers × epochs × epoch_periods).
    pub server_periods: usize,
    /// Reorder window used for shard folding.
    pub reorder_window: usize,
    /// Peak summaries resident in the reorder buffer (≤ window).
    pub peak_pending: usize,
    /// Peak concurrently-live server traces (≤ worker threads).
    pub peak_live_traces: usize,
}

impl PartialEq for FleetReport {
    fn eq(&self, other: &Self) -> bool {
        // `reorder_window`, `peak_pending` and `peak_live_traces` are
        // execution instrumentation — they track how the run was
        // scheduled (and scale with the thread count), not what it
        // computed — so equality covers only the simulation outcome.
        self.epochs == other.epochs
            && self.stats == other.stats
            && self.server_periods == other.server_periods
    }
}

impl FleetReport {
    /// Total SLO misses across all epochs.
    pub fn total_misses(&self) -> u64 {
        self.epochs.iter().map(EpochReport::misses).sum()
    }

    /// Total batches completed across all epochs.
    pub fn total_completed(&self) -> u64 {
        self.epochs.iter().map(EpochReport::completed).sum()
    }

    /// Fleet miss rate: misses / (misses + completed batches).
    pub fn miss_rate(&self) -> f64 {
        let m = self.total_misses() as f64;
        let c = self.total_completed() as f64;
        if m + c == 0.0 {
            0.0
        } else {
            m / (m + c)
        }
    }

    /// Worst rack overshoot: max over epochs and racks of
    /// measured − assigned (W). ≤ 0 means every rack budget held in
    /// every epoch.
    pub fn max_rack_overshoot_watts(&self) -> f64 {
        self.epochs
            .iter()
            .flat_map(|e| e.racks.iter())
            .map(|r| r.measured - r.assigned)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Total migrations planned across all epochs.
    pub fn total_migrations(&self) -> usize {
        self.epochs.iter().map(|e| e.migrations.len()).sum()
    }
}

/// Carried per-server simulation state (runner + controller), stored in
/// per-server slots and checked out by whichever worker claims the
/// server each epoch.
struct ServerState {
    runner: ExperimentRunner,
    controller: CapGpuController,
    applied_streams: u32,
}

/// Inputs a worker needs for one server-epoch, precomputed before the
/// parallel phase so workers never touch shared mutable state.
struct EpochInput {
    setpoint: f64,
    streams: u32,
    scale: f64,
}

/// Scalars distilled from one server's epoch trace — all that survives
/// the fold.
struct ServerSummary {
    measured: f64,
    misses: u64,
    completed: u64,
    worst_p99_s: f64,
}

struct FoldState {
    next: usize,
    pending: BTreeMap<usize, ServerSummary>,
    stats: Vec<ServerStat>,
    racks: Vec<RackEpoch>,
    peak_pending: usize,
}

/// The fleet simulator.
pub struct FleetSim {
    topology: FleetTopology,
    config: FleetConfig,
    states: Vec<Mutex<Option<ServerState>>>,
    stats: Vec<ServerStat>,
    /// Per-server nominal stream count (from the server's class).
    nominals: Vec<u32>,
}

impl FleetSim {
    /// Builds the fleet: identifies one runner per server class, then
    /// clones it per server (shared identification, independent
    /// evolution — the streaming sweep's scheme at fleet scale).
    ///
    /// # Errors
    /// Propagates identification/controller errors; rejects invalid
    /// class references, zero-stream or zero-nominal classes, empty
    /// geometry, a budget below the summed per-server floors, and
    /// migration without the serving layer.
    pub fn new(
        topology: FleetTopology,
        classes: &[ServerClass],
        config: FleetConfig,
    ) -> Result<Self> {
        if classes.is_empty() {
            return Err(CapGpuError::BadConfig(
                "fleet needs >= 1 server class".into(),
            ));
        }
        if config.epochs == 0 || config.epoch_periods == 0 {
            return Err(CapGpuError::BadConfig(
                "fleet epochs and epoch_periods must be >= 1".into(),
            ));
        }
        if let Some(bad) = topology.servers().iter().find(|s| s.class >= classes.len()) {
            return Err(CapGpuError::BadConfig(format!(
                "server references class {} but only {} classes exist",
                bad.class,
                classes.len()
            )));
        }
        if classes.iter().any(|c| c.nominal_streams == 0) {
            return Err(CapGpuError::BadConfig(
                "class nominal_streams must be >= 1".into(),
            ));
        }
        if config.migration.is_some() {
            if let Some(c) = classes.iter().find(|c| c.scenario.serving.is_none()) {
                return Err(CapGpuError::BadConfig(format!(
                    "stream migration needs the serving layer; class '{}' has none",
                    c.label
                )));
            }
        }

        // One identification per class.
        let mut class_runners = Vec::with_capacity(classes.len());
        let mut class_range = Vec::with_capacity(classes.len());
        let equal = config.budget_watts / topology.len() as f64;
        for class in classes {
            let mut runner = ExperimentRunner::new(class.scenario.clone(), equal)?;
            let model = runner.identified_model()?;
            let (lo, hi) = model.achievable_range(&runner.layout().f_min, &runner.layout().f_max);
            class_runners.push(runner);
            class_range.push((lo, hi));
        }

        // Per-server state: cloned runner + fresh controller.
        let mut states = Vec::with_capacity(topology.len());
        let mut stats = Vec::with_capacity(topology.len());
        for (i, spec) in topology.servers().iter().enumerate() {
            let mut runner = class_runners[spec.class].clone();
            let controller = runner.build_capgpu_controller()?;
            let (lo, hi) = class_range[spec.class];
            states.push(Mutex::new(Some(ServerState {
                runner,
                controller,
                applied_streams: classes[spec.class].nominal_streams,
            })));
            stats.push(ServerStat {
                rack: topology.rack_of()[i],
                class: spec.class,
                streams: spec.streams,
                demand: hi,
                min_watts: lo,
                max_watts: hi,
                assigned: 0.0,
                measured: 0.0,
                misses: 0,
                completed: 0,
            });
        }
        let floor_sum: f64 = stats
            .iter()
            .map(|s| s.min_watts.max(config.min_share_watts))
            .sum();
        if config.budget_watts < floor_sum {
            return Err(CapGpuError::BadConfig(format!(
                "fleet budget {:.0} W below summed server floors {floor_sum:.0} W",
                config.budget_watts
            )));
        }
        let nominals: Vec<u32> = stats
            .iter()
            .map(|s| classes[s.class].nominal_streams)
            .collect();
        Ok(FleetSim {
            topology,
            config,
            states,
            stats,
            nominals,
        })
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when the fleet has no servers (cannot happen by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// The fleet topology.
    pub fn topology(&self) -> &FleetTopology {
        &self.topology
    }

    /// Runs the configured number of epochs across `threads` worker
    /// threads. Reports are bit-identical for any thread count
    /// (see module docs); memory stays O(servers) + O(racks × epochs).
    ///
    /// # Errors
    /// Propagates the first server error; the simulator must be rebuilt
    /// after an error.
    pub fn run(&mut self, threads: usize) -> Result<FleetReport> {
        let threads = threads.max(1);
        let n = self.len();
        let window = self
            .config
            .reorder_window
            .unwrap_or_else(|| default_reorder_window(threads))
            .max(1);
        let racks = self.topology.num_racks();
        let rack_of = self.topology.rack_of().to_vec();
        let equal_division = self.topology.divide_equal(self.config.budget_watts);

        let mut epochs = Vec::with_capacity(self.config.epochs);
        let mut peak_pending_all = 0usize;
        let mut peak_live_all = 0usize;

        for _ in 0..self.config.epochs {
            // 1. Allocate the datacenter budget over current demand.
            let allocs = match self.config.allocator {
                AllocatorMode::Hierarchical => {
                    let demands: Vec<f64> = self.stats.iter().map(|s| s.demand).collect();
                    // Floors track the *learned* per-server minimums, so
                    // they are re-read every epoch.
                    let floors: Vec<f64> = self
                        .stats
                        .iter()
                        .map(|s| s.min_watts.max(self.config.min_share_watts))
                        .collect();
                    self.topology
                        .divide(self.config.budget_watts, &demands, &floors)
                        .server_allocs
                }
                AllocatorMode::EqualSplit => equal_division.server_allocs.clone(),
            };

            // 2. Freeze this epoch's per-server inputs.
            let inputs: Vec<EpochInput> = (0..n)
                .map(|i| {
                    let s = &mut self.stats[i];
                    s.assigned = allocs[i];
                    EpochInput {
                        setpoint: allocs[i],
                        streams: s.streams,
                        scale: f64::from(s.streams) / f64::from(self.nominals[i]),
                    }
                })
                .collect();

            // 3. Parallel phase: step every server one epoch, folding
            //    summaries at the frontier in server index order.
            let first_error: Mutex<Option<CapGpuError>> = Mutex::new(None);
            let abort = AtomicBool::new(false);
            let record_error = |e: CapGpuError| {
                abort.store(true, Ordering::Relaxed);
                first_error.lock().expect("error lock").get_or_insert(e);
            };
            let fold = Mutex::new(FoldState {
                next: 0,
                pending: BTreeMap::new(),
                stats: std::mem::take(&mut self.stats),
                racks: vec![RackEpoch::zero(); racks],
                peak_pending: 0,
            });
            let gate = Condvar::new();
            let next = AtomicUsize::new(0);
            let live = AtomicUsize::new(0);
            let peak_live = AtomicUsize::new(0);
            let states = &self.states;
            let epoch_periods = self.config.epoch_periods;

            std::thread::scope(|scope| {
                for _ in 0..threads.min(n) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n || abort.load(Ordering::Relaxed) {
                            break;
                        }
                        // Admission control: stay within the reorder
                        // window of the fold frontier.
                        {
                            let mut st = fold.lock().expect("fold lock");
                            while st.next + window <= i && !abort.load(Ordering::Relaxed) {
                                st = gate.wait(st).expect("fold lock");
                            }
                        }
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let mut state = states[i]
                            .lock()
                            .expect("state lock")
                            .take()
                            .expect("server state present");
                        let inp = &inputs[i];
                        if state.applied_streams != inp.streams {
                            match state.runner.set_serving_intensity_scale(inp.scale) {
                                Ok(()) => state.applied_streams = inp.streams,
                                Err(e) => {
                                    *states[i].lock().expect("state lock") = Some(state);
                                    record_error(e);
                                    gate.notify_all();
                                    break;
                                }
                            }
                        }
                        state.runner.set_setpoint(inp.setpoint);
                        let now_live = live.fetch_add(1, Ordering::Relaxed) + 1;
                        peak_live.fetch_max(now_live, Ordering::Relaxed);
                        let result = state.runner.run(&mut state.controller, epoch_periods);
                        live.fetch_sub(1, Ordering::Relaxed);
                        *states[i].lock().expect("state lock") = Some(state);
                        match result {
                            Ok(trace) => {
                                let summary = summarize(&trace);
                                drop(trace); // the trace dies here — flat memory
                                let mut st = fold.lock().expect("fold lock");
                                st.pending.insert(i, summary);
                                st.peak_pending = st.peak_pending.max(st.pending.len());
                                while let Some(ready) = {
                                    let key = st.next;
                                    st.pending.remove(&key)
                                } {
                                    let j = st.next;
                                    fold_server(&mut st, j, &rack_of, ready);
                                    st.next += 1;
                                }
                                gate.notify_all();
                            }
                            Err(e) => {
                                record_error(e);
                                gate.notify_all();
                            }
                        }
                    });
                }
            });

            let st = fold.into_inner().expect("fold lock");
            self.stats = st.stats;
            if let Some(e) = first_error.lock().expect("error lock").take() {
                return Err(e);
            }
            debug_assert_eq!(st.next, n, "all servers folded");
            debug_assert!(st.pending.is_empty(), "no server left pending");
            peak_pending_all = peak_pending_all.max(st.peak_pending);
            peak_live_all = peak_live_all.max(peak_live.load(Ordering::Relaxed));

            // 4. Plan migrations on the folded epoch; apply for next.
            let migrations = match &self.config.migration {
                Some(cfg) => balancer::plan(&self.stats, cfg),
                None => vec![],
            };
            for m in &migrations {
                self.stats[m.from].streams -= 1;
                self.stats[m.to].streams += 1;
            }
            epochs.push(EpochReport {
                racks: st.racks,
                migrations,
            });
        }

        Ok(FleetReport {
            epochs,
            stats: self.stats.clone(),
            server_periods: n * self.config.epochs * self.config.epoch_periods,
            reorder_window: window,
            peak_pending: peak_pending_all,
            peak_live_traces: peak_live_all,
        })
    }
}

/// Distills one server's epoch trace to fold scalars.
fn summarize(trace: &RunTrace) -> ServerSummary {
    let (measured, _) = trace.steady_state_power(STEADY_TAIL);
    let misses: u64 = trace
        .records
        .iter()
        .map(|r| r.slo_misses.iter().sum::<usize>() as u64)
        .sum();
    let completed: u64 = trace
        .records
        .iter()
        .map(|r| r.batches.iter().sum::<usize>() as u64)
        .sum();
    let worst_p99_s = trace.p99_latency_s.iter().cloned().fold(0.0_f64, f64::max);
    ServerSummary {
        measured,
        misses,
        completed,
        worst_p99_s,
    }
}

/// Folds server `j`'s summary into the epoch state: rack accumulation
/// plus the rack-style demand update. Runs in server index order at the
/// frontier, so every float accumulation is order-deterministic.
fn fold_server(st: &mut FoldState, j: usize, rack_of: &[usize], s: ServerSummary) {
    let stat = &mut st.stats[j];
    stat.measured = s.measured;
    stat.misses = s.misses;
    stat.completed = s.completed;
    // A server that *overshoots* its set point could not physically get
    // there — typically SLO frequency floors holding power up (floors
    // are hard MPC bounds that override the cap). Learn the effective
    // minimum so the next division funds at least what the server will
    // draw anyway; this is what restores the safe-capping invariant at
    // rack level after the first epoch.
    if s.measured > stat.assigned + NOISE_BAND_WATTS {
        stat.min_watts = stat.min_watts.max(s.measured);
    }
    // Pinned at the cap → hungry, probe up; below the cap → satisfied,
    // release slack (the flat rack's estimator, per server).
    stat.demand = if s.measured >= stat.assigned - NOISE_BAND_WATTS {
        (stat.assigned * 1.15).min(stat.max_watts)
    } else {
        (s.measured + RELEASE_MARGIN_WATTS).clamp(stat.min_watts, stat.max_watts)
    };
    let rack = &mut st.racks[rack_of[j]];
    rack.assigned += stat.assigned;
    rack.measured += s.measured;
    rack.misses += s.misses;
    rack.completed += s.completed;
    if s.measured >= stat.assigned - BINDING_BAND_WATTS {
        rack.binding_servers += 1;
    }
    rack.worst_p99_s = rack.worst_p99_s.max(s.worst_p99_s);
}
