//! Deterministic fault-schedule DSL and fault models for CapGPU.
//!
//! The paper's stability analysis covers multiplicative model error; a
//! production power-capping loop must also survive *structural* failures
//! — meters that drop out or drift, clocks that stick or reject
//! commands, GPUs that fall off the bus, PSUs that derate the budget
//! mid-run. This crate describes those failures as data: a
//! [`FaultSchedule`] is a list of [`FaultSpec`]s (fault kind × target
//! device × onset period × duration/intermittency) that the experiment
//! runner replays against the simulated testbed through the injection
//! hooks `capgpu-sim` already exposes (`set_meter_fault`,
//! `set_actuator_fault`, `set_psu_limit`).
//!
//! Everything is deterministic. The [`FaultSchedule::storm`] generator
//! derives all of its randomness from a splitmix64-style hash of the
//! caller's seed, independent of the simulation RNG streams, so the same
//! (scenario, seed) pair always produces the same fault storm — and a
//! faults-enabled sweep stays bit-identical across thread counts.
//!
//! ```
//! use capgpu_faults::{FaultKind, FaultSchedule, FaultSpec, Intermittency};
//!
//! let schedule = FaultSchedule {
//!     specs: vec![FaultSpec {
//!         kind: FaultKind::MeterDropout,
//!         onset_period: 10,
//!         duration: Some(8),
//!         intermittency: Some(Intermittency { on_periods: 2, off_periods: 2 }),
//!     }],
//! };
//! assert!(schedule.specs[0].active_at(10));
//! assert!(!schedule.specs[0].active_at(12)); // off phase
//! assert!(!schedule.specs[0].active_at(30)); // expired
//! ```

#![warn(missing_docs)]

use capgpu_sim::{ActuatorFault, DeviceKind, MeterFault, Server};
use serde::{Deserialize, Serialize};

/// What fails. Telemetry faults hit the server-level meter, actuator
/// faults hit one device's command path, power-delivery faults hit the
/// PSU's advertised budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Meter produces no samples (telemetry).
    MeterDropout,
    /// Meter repeats its last good sample (telemetry).
    MeterStuck,
    /// Meter reads offset by `watts` plus `drift_w_per_s` per second of
    /// fault age (telemetry).
    MeterBias {
        /// Constant additive offset (W).
        watts: f64,
        /// Drift per second of fault age (W/s).
        drift_w_per_s: f64,
    },
    /// Meter reports each sample `seconds` late (telemetry).
    MeterDelay {
        /// Reporting delay in seconds.
        seconds: usize,
    },
    /// A GPU's clock freezes at its current value (actuator).
    ClockStuck {
        /// Target device index.
        device: usize,
    },
    /// A GPU's driver rejects set-clock commands (actuator).
    CommandRejected {
        /// Target device index.
        device: usize,
    },
    /// A GPU only honors a coarse clock grid (actuator).
    CoarseQuantize {
        /// Target device index.
        device: usize,
        /// Coarse quantization step (MHz), must be positive.
        step_mhz: f64,
    },
    /// A GPU falls off the bus; clearing models re-admission (actuator).
    Ejected {
        /// Target device index.
        device: usize,
    },
    /// The PSU derates, shrinking the feasible power budget to
    /// `limit_watts` (power delivery). A supervisor should drop the
    /// effective set-point below the limit.
    PsuDerate {
        /// Advertised PSU limit (W), must be positive.
        limit_watts: f64,
    },
}

impl FaultKind {
    /// Short machine-readable label, e.g. for telemetry journal events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::MeterDropout => "meter_dropout",
            FaultKind::MeterStuck => "meter_stuck",
            FaultKind::MeterBias { .. } => "meter_bias",
            FaultKind::MeterDelay { .. } => "meter_delay",
            FaultKind::ClockStuck { .. } => "clock_stuck",
            FaultKind::CommandRejected { .. } => "command_rejected",
            FaultKind::CoarseQuantize { .. } => "coarse_quantize",
            FaultKind::Ejected { .. } => "ejected",
            FaultKind::PsuDerate { .. } => "psu_derate",
        }
    }

    /// The device this fault targets, if it is device-scoped.
    pub fn device(&self) -> Option<usize> {
        match *self {
            FaultKind::ClockStuck { device }
            | FaultKind::CommandRejected { device }
            | FaultKind::CoarseQuantize { device, .. }
            | FaultKind::Ejected { device } => Some(device),
            _ => None,
        }
    }

    /// Injects this fault into the server.
    ///
    /// Meter faults share one slot: overlapping meter faults resolve
    /// "last applied wins", and clearing any of them clears the slot —
    /// schedules (including [`FaultSchedule::storm`]) should not overlap
    /// meter-fault phases.
    ///
    /// # Errors
    /// Propagates [`capgpu_sim::SimError`] for out-of-range devices or
    /// invalid parameters.
    pub fn apply(&self, server: &mut Server) -> capgpu_sim::Result<()> {
        match *self {
            FaultKind::MeterDropout => server.set_meter_fault(Some(MeterFault::Dropout)),
            FaultKind::MeterStuck => server.set_meter_fault(Some(MeterFault::Stuck)),
            FaultKind::MeterBias {
                watts,
                drift_w_per_s,
            } => server.set_meter_fault(Some(MeterFault::Bias {
                watts,
                drift_w_per_s,
            })),
            FaultKind::MeterDelay { seconds } => {
                server.set_meter_fault(Some(MeterFault::Delay { seconds }))
            }
            FaultKind::ClockStuck { device } => {
                server.set_actuator_fault(device, Some(ActuatorFault::StuckClock))?
            }
            FaultKind::CommandRejected { device } => {
                server.set_actuator_fault(device, Some(ActuatorFault::RejectCommands))?
            }
            FaultKind::CoarseQuantize { device, step_mhz } => server
                .set_actuator_fault(device, Some(ActuatorFault::CoarseQuantize { step_mhz }))?,
            FaultKind::Ejected { device } => {
                server.set_actuator_fault(device, Some(ActuatorFault::Ejected))?
            }
            FaultKind::PsuDerate { limit_watts } => server.set_psu_limit(Some(limit_watts))?,
        }
        Ok(())
    }

    /// Clears this fault from the server (the inverse of
    /// [`FaultKind::apply`]).
    ///
    /// # Errors
    /// Propagates [`capgpu_sim::SimError`] for out-of-range devices.
    pub fn clear(&self, server: &mut Server) -> capgpu_sim::Result<()> {
        match *self {
            FaultKind::MeterDropout
            | FaultKind::MeterStuck
            | FaultKind::MeterBias { .. }
            | FaultKind::MeterDelay { .. } => server.set_meter_fault(None),
            FaultKind::ClockStuck { device }
            | FaultKind::CommandRejected { device }
            | FaultKind::CoarseQuantize { device, .. }
            | FaultKind::Ejected { device } => server.set_actuator_fault(device, None)?,
            FaultKind::PsuDerate { .. } => server.set_psu_limit(None)?,
        }
        Ok(())
    }
}

/// Duty cycle for an intermittent (flapping) fault, in control periods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Intermittency {
    /// Periods the fault is active per cycle (≥ 1).
    pub on_periods: usize,
    /// Periods the fault is cleared per cycle (≥ 1).
    pub off_periods: usize,
}

/// One scheduled fault: what, when, for how long, and whether it flaps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// What fails.
    pub kind: FaultKind,
    /// Control period at which the fault first strikes.
    pub onset_period: usize,
    /// Total lifetime in control periods from onset (`None` = permanent).
    pub duration: Option<usize>,
    /// Optional on/off duty cycle within the lifetime.
    pub intermittency: Option<Intermittency>,
}

impl FaultSpec {
    /// Whether the fault is active during the given control period.
    pub fn active_at(&self, period: usize) -> bool {
        if period < self.onset_period {
            return false;
        }
        let age = period - self.onset_period;
        if let Some(d) = self.duration {
            if age >= d {
                return false;
            }
        }
        match self.intermittency {
            Some(im) => age % (im.on_periods + im.off_periods) < im.on_periods,
            None => true,
        }
    }
}

/// Errors from schedule validation or storm generation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault targets a device index outside the testbed.
    DeviceOutOfRange {
        /// Offending device index.
        device: usize,
        /// Number of devices in the testbed.
        num_devices: usize,
    },
    /// A device-scoped fault targets a non-GPU device (the paper's
    /// actuator path — `nvidia-smi` — only exists for GPUs).
    NotAGpu {
        /// Offending device index.
        device: usize,
    },
    /// A numeric or structural parameter is out of range.
    BadParam(&'static str),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::DeviceOutOfRange {
                device,
                num_devices,
            } => write!(
                f,
                "fault targets device {device} but the testbed has {num_devices} devices"
            ),
            FaultError::NotAGpu { device } => {
                write!(f, "actuator fault targets non-GPU device {device}")
            }
            FaultError::BadParam(m) => write!(f, "bad fault parameter: {m}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// Knobs for the default fault storm ([`FaultSchedule::storm`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StormConfig {
    /// GPU device indices eligible as actuator-fault targets.
    pub gpu_devices: Vec<usize>,
    /// Experiment horizon in control periods; storm phases sit at fixed
    /// fractions of it.
    pub horizon_periods: usize,
    /// Scales phase durations (1.0 = default storm; 0 disables).
    pub intensity: f64,
    /// PSU limit advertised during the power-delivery phase (W).
    pub psu_limit_watts: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            // The paper testbed: device 0 is the CPU, 1–3 are V100s.
            gpu_devices: vec![1, 2, 3],
            horizon_periods: 60,
            intensity: 1.0,
            psu_limit_watts: 940.0,
        }
    }
}

/// splitmix64-style mixer: deterministic, independent of the simulation
/// RNG streams (same construction as the runner's probe-sign hash).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A full fault schedule: the `Scenario::faults` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Scheduled faults, replayed independently (transitions are applied
    /// in spec order each period).
    pub specs: Vec<FaultSpec>,
}

impl FaultSchedule {
    /// The canonical seeded fault storm used by the `faults` ablation:
    /// an intermittent dropout storm, a bias drift, a stuck GPU clock, a
    /// GPU ejection/re-admission, and a PSU derate, staged at fixed
    /// fractions of the horizon with target GPUs chosen by hashing
    /// `seed`. Deterministic: same `(seed, cfg)` ⇒ same schedule.
    pub fn storm(seed: u64, cfg: &StormConfig) -> Result<Self, FaultError> {
        if cfg.gpu_devices.is_empty() {
            return Err(FaultError::BadParam("storm needs >= 1 GPU device"));
        }
        if cfg.horizon_periods < 10 {
            return Err(FaultError::BadParam("storm horizon must be >= 10 periods"));
        }
        if cfg.intensity < 0.0 || !cfg.intensity.is_finite() {
            return Err(FaultError::BadParam("storm intensity must be finite, >= 0"));
        }
        if cfg.psu_limit_watts <= 0.0 || !cfg.psu_limit_watts.is_finite() {
            return Err(FaultError::BadParam("psu limit must be finite and > 0"));
        }
        let h = cfg.horizon_periods as f64;
        let at = |frac: f64| (h * frac).round() as usize;
        let dur = |frac: f64| {
            let d = (h * frac * cfg.intensity).round() as usize;
            if d == 0 {
                None // zero-length phases are dropped below
            } else {
                Some(d)
            }
        };
        let gpu = |salt: u64| {
            let i = (mix(seed, salt, 0x6661756c74) % cfg.gpu_devices.len() as u64) as usize;
            cfg.gpu_devices[i]
        };
        let mut specs = Vec::new();
        let mut push = |kind: FaultKind, onset: f64, length: f64, im: Option<Intermittency>| {
            if let Some(d) = dur(length) {
                specs.push(FaultSpec {
                    kind,
                    onset_period: at(onset),
                    duration: Some(d),
                    intermittency: im,
                });
            }
        };
        // Phase layout leaves gaps between phases so meter faults never
        // overlap (they share the meter's single fault slot).
        push(
            FaultKind::MeterDropout,
            0.16,
            0.14,
            Some(Intermittency {
                on_periods: 2,
                off_periods: 2,
            }),
        );
        push(
            FaultKind::MeterBias {
                watts: 25.0,
                drift_w_per_s: 0.5,
            },
            0.33,
            0.12,
            None,
        );
        push(FaultKind::ClockStuck { device: gpu(1) }, 0.46, 0.14, None);
        push(FaultKind::Ejected { device: gpu(2) }, 0.63, 0.10, None);
        push(
            FaultKind::PsuDerate {
                limit_watts: cfg.psu_limit_watts,
            },
            0.80,
            0.13,
            None,
        );
        Ok(FaultSchedule { specs })
    }

    /// Validates the schedule against a testbed's device kinds.
    ///
    /// # Errors
    /// [`FaultError`] for out-of-range or non-GPU targets and bad
    /// parameters.
    pub fn validate(&self, kinds: &[DeviceKind]) -> Result<(), FaultError> {
        for spec in &self.specs {
            if let Some(device) = spec.kind.device() {
                match kinds.get(device) {
                    None => {
                        return Err(FaultError::DeviceOutOfRange {
                            device,
                            num_devices: kinds.len(),
                        })
                    }
                    Some(DeviceKind::Gpu) => {}
                    Some(_) => return Err(FaultError::NotAGpu { device }),
                }
            }
            match spec.kind {
                FaultKind::CoarseQuantize { step_mhz, .. }
                    if step_mhz <= 0.0 || !step_mhz.is_finite() =>
                {
                    return Err(FaultError::BadParam("coarse-quantize step must be > 0"));
                }
                FaultKind::PsuDerate { limit_watts }
                    if limit_watts <= 0.0 || !limit_watts.is_finite() =>
                {
                    return Err(FaultError::BadParam("psu limit must be finite and > 0"));
                }
                FaultKind::MeterBias {
                    watts,
                    drift_w_per_s,
                } if !watts.is_finite() || !drift_w_per_s.is_finite() => {
                    return Err(FaultError::BadParam("meter bias must be finite"));
                }
                _ => {}
            }
            if spec.duration == Some(0) {
                return Err(FaultError::BadParam("fault duration must be >= 1 period"));
            }
            if let Some(im) = spec.intermittency {
                if im.on_periods == 0 || im.off_periods == 0 {
                    return Err(FaultError::BadParam(
                        "intermittency phases must be >= 1 period",
                    ));
                }
            }
        }
        Ok(())
    }

    /// The tightest PSU limit active during `period`, if any — the
    /// feasible power budget is `min(set-point, this)`.
    pub fn feasible_limit(&self, period: usize) -> Option<f64> {
        self.specs
            .iter()
            .filter(|s| s.active_at(period))
            .filter_map(|s| match s.kind {
                FaultKind::PsuDerate { limit_watts } => Some(limit_watts),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, w| {
                Some(acc.map_or(w, |a| a.min(w)))
            })
    }

    /// True when no fault is active at any period ≥ `period` (the storm
    /// has fully passed).
    pub fn quiescent_after(&self, period: usize) -> bool {
        self.specs.iter().all(|s| match s.duration {
            None => false,
            Some(d) => s.onset_period + d <= period,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_sim::{presets, ServerBuilder};

    fn paper_server(seed: u64) -> Server {
        ServerBuilder::new(seed)
            .add_device(presets::xeon_gold_5215())
            .add_device(presets::tesla_v100())
            .add_device(presets::tesla_v100())
            .add_device(presets::tesla_v100())
            .build()
            .unwrap()
    }

    const PAPER_KINDS: [DeviceKind; 4] = [
        DeviceKind::Cpu,
        DeviceKind::Gpu,
        DeviceKind::Gpu,
        DeviceKind::Gpu,
    ];

    #[test]
    fn activity_window_with_duration() {
        let s = FaultSpec {
            kind: FaultKind::MeterDropout,
            onset_period: 5,
            duration: Some(3),
            intermittency: None,
        };
        assert!(!s.active_at(4));
        assert!(s.active_at(5));
        assert!(s.active_at(7));
        assert!(!s.active_at(8));
    }

    #[test]
    fn permanent_fault_never_expires() {
        let s = FaultSpec {
            kind: FaultKind::MeterStuck,
            onset_period: 2,
            duration: None,
            intermittency: None,
        };
        assert!(s.active_at(2));
        assert!(s.active_at(10_000));
    }

    #[test]
    fn intermittency_duty_cycle() {
        let s = FaultSpec {
            kind: FaultKind::MeterDropout,
            onset_period: 10,
            duration: Some(8),
            intermittency: Some(Intermittency {
                on_periods: 2,
                off_periods: 2,
            }),
        };
        let active: Vec<bool> = (8..20).map(|p| s.active_at(p)).collect();
        assert_eq!(
            active,
            [
                false, false, // pre-onset
                true, true, false, false, true, true, false, false, // duty cycles
                false, false // expired
            ]
        );
    }

    #[test]
    fn apply_and_clear_roundtrip_through_server() {
        let mut server = paper_server(1);
        FaultKind::MeterDropout.apply(&mut server).unwrap();
        assert_eq!(server.tick_second(&[1.0; 4]).unwrap(), None);
        FaultKind::MeterDropout.clear(&mut server).unwrap();
        assert!(server.tick_second(&[1.0; 4]).unwrap().is_some());

        FaultKind::Ejected { device: 2 }.apply(&mut server).unwrap();
        assert!(server.is_ejected(2));
        FaultKind::Ejected { device: 2 }.clear(&mut server).unwrap();
        assert!(!server.is_ejected(2));

        FaultKind::PsuDerate { limit_watts: 900.0 }
            .apply(&mut server)
            .unwrap();
        assert_eq!(server.psu_limit(), Some(900.0));
        FaultKind::PsuDerate { limit_watts: 900.0 }
            .clear(&mut server)
            .unwrap();
        assert_eq!(server.psu_limit(), None);
    }

    #[test]
    fn validation_rejects_bad_targets_and_params() {
        let ok = FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::ClockStuck { device: 1 },
                onset_period: 0,
                duration: None,
                intermittency: None,
            }],
        };
        assert!(ok.validate(&PAPER_KINDS).is_ok());

        let cpu_target = FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::Ejected { device: 0 },
                onset_period: 0,
                duration: None,
                intermittency: None,
            }],
        };
        assert_eq!(
            cpu_target.validate(&PAPER_KINDS),
            Err(FaultError::NotAGpu { device: 0 })
        );

        let oob = FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::ClockStuck { device: 9 },
                onset_period: 0,
                duration: None,
                intermittency: None,
            }],
        };
        assert!(matches!(
            oob.validate(&PAPER_KINDS),
            Err(FaultError::DeviceOutOfRange { device: 9, .. })
        ));

        let bad_step = FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::CoarseQuantize {
                    device: 1,
                    step_mhz: -5.0,
                },
                onset_period: 0,
                duration: None,
                intermittency: None,
            }],
        };
        assert!(bad_step.validate(&PAPER_KINDS).is_err());

        let zero_duration = FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::MeterDropout,
                onset_period: 0,
                duration: Some(0),
                intermittency: None,
            }],
        };
        assert!(zero_duration.validate(&PAPER_KINDS).is_err());

        let zero_duty = FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::MeterDropout,
                onset_period: 0,
                duration: None,
                intermittency: Some(Intermittency {
                    on_periods: 0,
                    off_periods: 1,
                }),
            }],
        };
        assert!(zero_duty.validate(&PAPER_KINDS).is_err());
    }

    #[test]
    fn storm_is_deterministic_and_valid() {
        let cfg = StormConfig::default();
        let a = FaultSchedule::storm(42, &cfg).unwrap();
        let b = FaultSchedule::storm(42, &cfg).unwrap();
        assert_eq!(a, b);
        a.validate(&PAPER_KINDS).unwrap();
        // All five phases present at default intensity.
        assert_eq!(a.specs.len(), 5);
        // A different seed may retarget GPUs but keeps the same phases.
        let c = FaultSchedule::storm(7, &cfg).unwrap();
        assert_eq!(c.specs.len(), 5);
        for (x, y) in a.specs.iter().zip(c.specs.iter()) {
            assert_eq!(x.onset_period, y.onset_period);
            assert_eq!(x.duration, y.duration);
        }
    }

    #[test]
    fn storm_intensity_zero_is_empty() {
        let cfg = StormConfig {
            intensity: 0.0,
            ..StormConfig::default()
        };
        let s = FaultSchedule::storm(1, &cfg).unwrap();
        assert!(s.specs.is_empty());
    }

    #[test]
    fn storm_phases_never_overlap_on_the_meter() {
        // Meter faults share one slot; the storm must keep them disjoint.
        for seed in 0..20u64 {
            let s = FaultSchedule::storm(seed, &StormConfig::default()).unwrap();
            for p in 0..80 {
                let meter_active = s
                    .specs
                    .iter()
                    .filter(|sp| sp.kind.device().is_none())
                    .filter(|sp| !matches!(sp.kind, FaultKind::PsuDerate { .. }) && sp.active_at(p))
                    .count();
                assert!(meter_active <= 1, "seed {seed} period {p}");
            }
        }
    }

    #[test]
    fn feasible_limit_tracks_psu_phase() {
        let s = FaultSchedule::storm(42, &StormConfig::default()).unwrap();
        let derate = s
            .specs
            .iter()
            .find(|sp| matches!(sp.kind, FaultKind::PsuDerate { .. }))
            .unwrap();
        assert_eq!(s.feasible_limit(derate.onset_period), Some(940.0));
        assert_eq!(s.feasible_limit(0), None);
    }

    #[test]
    fn quiescence() {
        let s = FaultSchedule::storm(42, &StormConfig::default()).unwrap();
        assert!(!s.quiescent_after(0));
        assert!(s.quiescent_after(60));
        let permanent = FaultSchedule {
            specs: vec![FaultSpec {
                kind: FaultKind::MeterStuck,
                onset_period: 0,
                duration: None,
                intermittency: None,
            }],
        };
        assert!(!permanent.quiescent_after(1_000_000));
    }

    #[test]
    fn storm_rejects_bad_config() {
        let mut cfg = StormConfig::default();
        cfg.gpu_devices.clear();
        assert!(FaultSchedule::storm(1, &cfg).is_err());
        let cfg = StormConfig {
            horizon_periods: 4,
            ..StormConfig::default()
        };
        assert!(FaultSchedule::storm(1, &cfg).is_err());
        let cfg = StormConfig {
            psu_limit_watts: -1.0,
            ..StormConfig::default()
        };
        assert!(FaultSchedule::storm(1, &cfg).is_err());
    }
}
