//! The per-GPU discrete-event serving engine.
//!
//! One engine models one GPU's serving loop: requests arrive by a
//! pluggable [`ArrivalGen`], wait in a bounded FIFO queue, and are
//! dispatched by a dynamic batcher — a batch launches when `max_batch`
//! requests are queued, or when the oldest queued request has waited
//! `batch_timeout_s` (vLLM/Triton-style size-or-timeout batching). Batch
//! service time is the paper's γ latency law at the device's *effective*
//! frequency, scaled by a calibrated batch-efficiency curve so partial
//! batches run faster than full ones but pay a fixed launch overhead.
//!
//! The engine is driven in wall-clock windows (one per power-meter
//! second, matching `PipelineSim::advance`): the caller passes the
//! window length and the effective core clock in force, and receives
//! per-window statistics — completions, busy fraction, and every
//! completed request's end-to-end latency (queue wait + service), the
//! sample stream that feeds `SloTracker` for measured-p99 constraint
//! checking.
//!
//! Internally a single binary heap orders three event kinds — request
//! arrival, batcher timeout, batch completion — by `(time, sequence)`;
//! the sequence number makes simultaneous events deterministically
//! ordered, so the whole engine is bit-reproducible per seed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::arrivals::ArrivalGen;
use crate::{Result, ServeError};

/// The batch service-time model: the γ frequency law times a linear
/// batch-efficiency curve.
///
/// A full batch (`b = max_batch`) at `f_max` takes exactly `e_min_s` —
/// consistent with the pipeline simulator's batch latency — and a
/// partial batch takes `overhead + (1 − overhead) · b / max_batch` of
/// the full-batch time: GPU kernels amortize launch and memory-movement
/// cost across the batch, so halving the batch does not halve the time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Full-batch service time at `f_max_mhz` (seconds).
    pub e_min_s: f64,
    /// Frequency-scaling exponent γ.
    pub gamma: f64,
    /// Maximum core frequency (MHz).
    pub f_max_mhz: f64,
    /// Maximum batch size the batcher will dispatch.
    pub max_batch: usize,
    /// Fixed fraction of the full-batch time a batch pays regardless of
    /// its size (`0` = perfectly linear, measured GPUs sit near 0.2–0.5).
    pub batch_overhead: f64,
}

impl ServiceModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] describing the first inconsistency.
    pub fn validate(&self) -> Result<()> {
        let pos = |x: f64| x > 0.0 && x.is_finite();
        if !pos(self.e_min_s) {
            return Err(ServeError::BadConfig(
                "service model e_min must be positive and finite",
            ));
        }
        if !pos(self.gamma) {
            return Err(ServeError::BadConfig(
                "service model gamma must be positive and finite",
            ));
        }
        if !pos(self.f_max_mhz) {
            return Err(ServeError::BadConfig(
                "service model f_max must be positive and finite",
            ));
        }
        if self.max_batch == 0 {
            return Err(ServeError::BadConfig("max batch must be >= 1"));
        }
        if !self.batch_overhead.is_finite() || !(0.0..1.0).contains(&self.batch_overhead) {
            return Err(ServeError::BadConfig("batch overhead must be in [0, 1)"));
        }
        Ok(())
    }

    /// Service time of a `batch`-request batch at effective frequency
    /// `f_eff_mhz`.
    pub fn batch_service_s(&self, batch: usize, f_eff_mhz: f64) -> f64 {
        debug_assert!(batch >= 1 && batch <= self.max_batch);
        debug_assert!(f_eff_mhz > 0.0);
        let freq_factor = (self.f_max_mhz / f_eff_mhz).powf(self.gamma);
        let efficiency = self.batch_overhead
            + (1.0 - self.batch_overhead) * batch as f64 / self.max_batch as f64;
        self.e_min_s * freq_factor * efficiency
    }
}

/// What happens inside one simulated window.
#[derive(Debug, Clone, Default)]
pub struct ServeWindowStats {
    /// Window length (s).
    pub window_s: f64,
    /// Requests that arrived during the window.
    pub arrivals: usize,
    /// Requests whose inference completed during the window.
    pub completions: usize,
    /// Batches completed during the window.
    pub batches: usize,
    /// Requests shed because the queue was full.
    pub dropped: usize,
    /// Fraction of the window a batch was in flight.
    pub busy_fraction: f64,
    /// End-to-end latency (queue wait + service) of every request
    /// completed in the window (s).
    pub request_latencies: Vec<f64>,
    /// Queue length at window end.
    pub queue_len_end: usize,
    /// Heap events processed during the window.
    pub events: usize,
    /// Size of every batch *completed* in the window, in completion
    /// order (telemetry: batch-size histograms). `len() == batches`.
    pub batch_sizes: Vec<usize>,
    /// Prefill (prompt) tokens processed during the window, including
    /// any recomputed after preemption. Zero for one-shot engines.
    pub prefill_tokens: usize,
    /// Decode tokens emitted during the window. Zero for one-shot
    /// engines, which model whole requests rather than token streams.
    pub decode_tokens: usize,
    /// Seconds of the window spent in prefill-dominated work.
    pub prefill_busy_s: f64,
    /// Seconds of the window spent in decode-dominated work.
    pub decode_busy_s: f64,
    /// KV-cache tokens resident at window end (0 without a KV cache).
    pub kv_used_tokens_end: usize,
    /// KV-cache budget in force (0 without a KV cache).
    pub kv_budget_tokens: usize,
    /// Requests preempted (evicted for recompute) during the window.
    pub preemptions: usize,
    /// Time-to-first-token of every request whose first decode token
    /// was emitted in the window (s). Empty for one-shot engines.
    pub ttft_s: Vec<f64>,
    /// Gap between consecutive decode tokens, one sample per emitted
    /// non-first token in the window (s). Empty for one-shot engines.
    pub inter_token_s: Vec<f64>,
}

impl ServeWindowStats {
    /// Mean dispatched batch size over the window (0 when no batch
    /// completed).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completions as f64 / self.batches as f64
        }
    }

    /// Fraction of the window's busy time spent in prefill-dominated
    /// work. Returns 1.0 when the window did no phase-attributed work at
    /// all — an idle (or one-shot) device is fully cap-elastic, so the
    /// neutral value must not shelter it from the controller.
    pub fn prefill_share(&self) -> f64 {
        let total = self.prefill_busy_s + self.decode_busy_s;
        if total <= 0.0 {
            1.0
        } else {
            (self.prefill_busy_s / total).clamp(0.0, 1.0)
        }
    }

    /// KV-cache occupancy at window end as a fraction of the budget
    /// (0 without a KV cache).
    pub fn kv_occupancy(&self) -> f64 {
        if self.kv_budget_tokens == 0 {
            0.0
        } else {
            (self.kv_used_tokens_end as f64 / self.kv_budget_tokens as f64).clamp(0.0, 1.0)
        }
    }

    /// Tokens processed per second of window time (prefill + decode).
    pub fn tokens_per_s(&self) -> f64 {
        if self.window_s <= 0.0 {
            0.0
        } else {
            (self.prefill_tokens + self.decode_tokens) as f64 / self.window_s
        }
    }

    /// Resets every field for reuse as a scratch window, recycling the
    /// sample buffers. One-shot and token-level engines share this
    /// scratch, so each must start from a fully cleared window.
    pub fn clear_for_window(&mut self, window_s: f64) {
        self.window_s = window_s;
        self.arrivals = 0;
        self.completions = 0;
        self.batches = 0;
        self.dropped = 0;
        self.busy_fraction = 0.0;
        self.request_latencies.clear();
        self.queue_len_end = 0;
        self.events = 0;
        self.batch_sizes.clear();
        self.prefill_tokens = 0;
        self.decode_tokens = 0;
        self.prefill_busy_s = 0.0;
        self.decode_busy_s = 0.0;
        self.kv_used_tokens_end = 0;
        self.kv_budget_tokens = 0;
        self.preemptions = 0;
        self.ttft_s.clear();
        self.inter_token_s.clear();
    }
}

/// Event kinds ordered by the engine's heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A request arrives.
    Arrival,
    /// The batcher's size-or-timeout timer fires; stale timers (whose
    /// generation no longer matches) are ignored.
    BatchTimeout {
        /// Timer generation at arming time.
        gen: u64,
    },
    /// The in-flight batch completes.
    BatchDone,
}

/// A heap event: `(time, sequence)` gives a strict total order, so
/// simultaneous events resolve deterministically in scheduling order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    at: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .partial_cmp(&self.at)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The batch currently executing on the GPU.
#[derive(Debug, Clone)]
struct InFlight {
    started_at: f64,
    done_at: f64,
    /// Arrival timestamps of the batched requests.
    requests: Vec<f64>,
}

/// The deterministic discrete-event serving engine for one GPU.
#[derive(Debug, Clone)]
pub struct ServeEngine {
    model: ServiceModel,
    batch_timeout_s: f64,
    queue_capacity: usize,
    arrivals: ArrivalGen,
    now: f64,
    heap: BinaryHeap<Event>,
    seq: u64,
    /// Arrival timestamps of queued requests, FIFO.
    queue: VecDeque<f64>,
    in_flight: Option<InFlight>,
    /// Generation of the currently armed batcher timer.
    timer_gen: u64,
    timer_armed: bool,
    /// Recycled batch buffer (no per-batch allocation).
    spare: Vec<f64>,
    // Lifetime conservation counters.
    arrivals_total: u64,
    completions_total: u64,
    dropped_total: u64,
    batches_total: u64,
    events_total: u64,
    /// Stays true while every popped event time is >= the previous one.
    monotone: bool,
    last_event_at: f64,
}

impl ServeEngine {
    /// Creates an engine and schedules the first arrival.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] on invalid model, timeout, or capacity
    /// (the queue must hold at least one full batch).
    pub fn new(
        model: ServiceModel,
        batch_timeout_s: f64,
        queue_capacity: usize,
        mut arrivals: ArrivalGen,
    ) -> Result<Self> {
        model.validate()?;
        if !(batch_timeout_s >= 0.0 && batch_timeout_s.is_finite()) {
            return Err(ServeError::BadConfig(
                "batch timeout must be finite and >= 0",
            ));
        }
        if queue_capacity < model.max_batch {
            return Err(ServeError::BadConfig("queue must hold one full batch"));
        }
        let first = arrivals.next_after(0.0);
        let mut engine = ServeEngine {
            model,
            batch_timeout_s,
            queue_capacity,
            arrivals,
            now: 0.0,
            heap: BinaryHeap::new(),
            seq: 0,
            queue: VecDeque::new(),
            in_flight: None,
            timer_gen: 0,
            timer_armed: false,
            spare: Vec::new(),
            arrivals_total: 0,
            completions_total: 0,
            dropped_total: 0,
            batches_total: 0,
            events_total: 0,
            monotone: true,
            last_event_at: 0.0,
        };
        engine.push(first, EventKind::Arrival);
        Ok(engine)
    }

    /// Simulation clock (s).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Queued (not yet dispatched) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests in the batch currently executing (0 when idle).
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.as_ref().map_or(0, |b| b.requests.len())
    }

    /// Lifetime arrivals.
    pub fn arrivals_total(&self) -> u64 {
        self.arrivals_total
    }

    /// Lifetime completions.
    pub fn completions_total(&self) -> u64 {
        self.completions_total
    }

    /// Lifetime load-shed (queue-full) drops.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Lifetime dispatched batches.
    pub fn batches_total(&self) -> u64 {
        self.batches_total
    }

    /// Lifetime heap events processed.
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// Whether every event processed so far carried a timestamp no
    /// earlier than its predecessor's (the heap-order invariant).
    pub fn timestamps_monotone(&self) -> bool {
        self.monotone
    }

    /// Conservation invariant: every request that ever arrived is
    /// completed, dropped, queued, or in flight.
    pub fn conserved(&self) -> bool {
        self.arrivals_total
            == self.completions_total
                + self.dropped_total
                + self.queue.len() as u64
                + self.in_flight_len() as u64
    }

    /// Scales the arrival intensity (scheduled burst/ebb); takes effect
    /// from the next drawn arrival.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] on a non-positive scale.
    pub fn set_intensity_scale(&mut self, scale: f64) -> Result<()> {
        self.arrivals.set_intensity_scale(scale)
    }

    fn push(&mut self, at: f64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Event {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Arms the batcher timer for the current queue front.
    fn arm_timer(&mut self, deadline: f64) {
        self.timer_gen += 1;
        self.timer_armed = true;
        let gen = self.timer_gen;
        self.push(deadline, EventKind::BatchTimeout { gen });
    }

    /// Dispatches up to `max_batch` queued requests at time `t`.
    fn dispatch(&mut self, t: f64, f_eff_mhz: f64) {
        debug_assert!(self.in_flight.is_none() && !self.queue.is_empty());
        self.timer_armed = false;
        let b = self.queue.len().min(self.model.max_batch);
        let mut requests = std::mem::take(&mut self.spare);
        requests.clear();
        requests.reserve(b);
        for _ in 0..b {
            requests.push(self.queue.pop_front().expect("len checked"));
        }
        let service = self.model.batch_service_s(b, f_eff_mhz);
        self.batches_total += 1;
        self.in_flight = Some(InFlight {
            started_at: t,
            done_at: t + service,
            requests,
        });
        self.push(t + service, EventKind::BatchDone);
        // A remainder left behind a full-batch dispatch starts its own
        // timeout clock from its oldest request.
        if !self.queue.is_empty() {
            let deadline = self.queue.front().expect("non-empty") + self.batch_timeout_s;
            self.arm_timer(deadline.max(t));
        }
    }

    /// Advances the engine by `window_s` seconds with the effective core
    /// frequency `f_eff_mhz` in force, writing the window's statistics
    /// into `stats` (cleared first; its buffers are recycled). Batches
    /// dispatched during the window use the window's frequency; a batch
    /// already in flight keeps the service time it was launched with.
    pub fn advance_into(&mut self, window_s: f64, f_eff_mhz: f64, stats: &mut ServeWindowStats) {
        debug_assert!(window_s > 0.0 && f_eff_mhz > 0.0);
        let start = self.now;
        let end = start + window_s;
        stats.clear_for_window(window_s);
        let mut busy = 0.0;

        while let Some(&Event { at, .. }) = self.heap.peek() {
            if at > end {
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            self.events_total += 1;
            stats.events += 1;
            self.monotone &= ev.at >= self.last_event_at;
            self.last_event_at = ev.at;
            self.now = ev.at.max(self.now);
            match ev.kind {
                EventKind::Arrival => {
                    self.arrivals_total += 1;
                    stats.arrivals += 1;
                    let next = self.arrivals.next_after(ev.at);
                    self.push(next, EventKind::Arrival);
                    if self.queue.len() >= self.queue_capacity {
                        self.dropped_total += 1;
                        stats.dropped += 1;
                    } else {
                        self.queue.push_back(ev.at);
                        if self.in_flight.is_none() {
                            if self.queue.len() >= self.model.max_batch {
                                self.dispatch(ev.at, f_eff_mhz);
                            } else if !self.timer_armed {
                                self.arm_timer(ev.at + self.batch_timeout_s);
                            }
                        }
                    }
                }
                EventKind::BatchTimeout { gen } => {
                    // Stale timers — re-armed since, or consumed by a
                    // size-triggered dispatch — are no-ops.
                    if self.timer_armed && gen == self.timer_gen {
                        self.timer_armed = false;
                        if self.in_flight.is_none() && !self.queue.is_empty() {
                            self.dispatch(ev.at, f_eff_mhz);
                        }
                    }
                }
                EventKind::BatchDone => {
                    let batch = self.in_flight.take().expect("done event implies a batch");
                    busy += batch.done_at - batch.started_at.max(start);
                    stats.batches += 1;
                    stats.batch_sizes.push(batch.requests.len());
                    stats.completions += batch.requests.len();
                    self.completions_total += batch.requests.len() as u64;
                    for &arrived in &batch.requests {
                        stats.request_latencies.push(batch.done_at - arrived);
                    }
                    self.spare = batch.requests;
                    if !self.queue.is_empty() {
                        if self.queue.len() >= self.model.max_batch {
                            self.dispatch(ev.at, f_eff_mhz);
                        } else {
                            let deadline =
                                self.queue.front().expect("non-empty") + self.batch_timeout_s;
                            if deadline <= ev.at {
                                // Oldest request already overdue (it
                                // waited out a long batch): go now.
                                self.dispatch(ev.at, f_eff_mhz);
                            } else {
                                self.arm_timer(deadline);
                            }
                        }
                    }
                }
            }
        }

        // Partial busy time of a batch still in flight at window end.
        if let Some(b) = &self.in_flight {
            busy += end.min(b.done_at) - b.started_at.max(start);
        }
        self.now = end;
        stats.busy_fraction = (busy / window_s).clamp(0.0, 1.0);
        stats.queue_len_end = self.queue.len();
    }

    /// Allocating convenience wrapper over
    /// [`ServeEngine::advance_into`].
    pub fn advance(&mut self, window_s: f64, f_eff_mhz: f64) -> ServeWindowStats {
        let mut stats = ServeWindowStats::default();
        self.advance_into(window_s, f_eff_mhz, &mut stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalGen, ArrivalProcess};

    fn model() -> ServiceModel {
        // ResNet50-shaped: 55 ms full batch of 20 at 1380 MHz.
        ServiceModel {
            e_min_s: 0.055,
            gamma: 0.91,
            f_max_mhz: 1380.0,
            max_batch: 20,
            batch_overhead: 0.3,
        }
    }

    fn engine(rate: f64, seed: u64) -> ServeEngine {
        let arrivals = ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: rate }, seed).unwrap();
        ServeEngine::new(model(), 0.05, 200, arrivals).unwrap()
    }

    #[test]
    fn validation() {
        let arr = || ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: 10.0 }, 1).unwrap();
        let mut m = model();
        m.max_batch = 0;
        assert!(ServeEngine::new(m, 0.05, 200, arr()).is_err());
        let mut m = model();
        m.batch_overhead = 1.0;
        assert!(ServeEngine::new(m, 0.05, 200, arr()).is_err());
        assert!(ServeEngine::new(model(), -0.1, 200, arr()).is_err());
        assert!(ServeEngine::new(model(), 0.05, 5, arr()).is_err()); // < max_batch
    }

    #[test]
    fn validation_names_the_offending_field() {
        let msg = |m: ServiceModel| match m.validate() {
            Err(crate::ServeError::BadConfig(s)) => s,
            Ok(()) => panic!("expected a validation error"),
        };
        let mut m = model();
        m.e_min_s = 0.0;
        assert!(msg(m).contains("e_min"));
        let mut m = model();
        m.gamma = f64::NAN;
        assert!(msg(m).contains("gamma"));
        let mut m = model();
        m.f_max_mhz = -1.0;
        assert!(msg(m).contains("f_max"));
        let mut m = model();
        m.batch_overhead = f64::INFINITY;
        assert!(msg(m).contains("overhead"));
    }

    #[test]
    fn phase_helpers_cover_one_shot_and_token_windows() {
        // A fresh (one-shot) window: no phase work, no KV cache — the
        // phase share is the neutral 1.0 (fully cap-elastic).
        let mut s = ServeWindowStats::default();
        assert_eq!(s.prefill_share(), 1.0);
        assert_eq!(s.kv_occupancy(), 0.0);
        assert_eq!(s.tokens_per_s(), 0.0);
        // Token-level window: share, occupancy and throughput follow
        // the counters, and clear_for_window resets all of them.
        s.window_s = 2.0;
        s.prefill_busy_s = 0.5;
        s.decode_busy_s = 1.5;
        s.prefill_tokens = 4000;
        s.decode_tokens = 100;
        s.kv_used_tokens_end = 30_000;
        s.kv_budget_tokens = 60_000;
        s.preemptions = 2;
        s.ttft_s.push(0.4);
        s.inter_token_s.push(0.03);
        assert!((s.prefill_share() - 0.25).abs() < 1e-12);
        assert!((s.kv_occupancy() - 0.5).abs() < 1e-12);
        assert!((s.tokens_per_s() - 2050.0).abs() < 1e-9);
        s.clear_for_window(1.0);
        assert_eq!(s.prefill_tokens, 0);
        assert_eq!(s.decode_tokens, 0);
        assert_eq!(s.kv_budget_tokens, 0);
        assert_eq!(s.preemptions, 0);
        assert!(s.ttft_s.is_empty() && s.inter_token_s.is_empty());
        assert_eq!(s.prefill_share(), 1.0);
    }

    #[test]
    fn service_model_curve() {
        let m = model();
        // Full batch at f_max is exactly e_min.
        assert!((m.batch_service_s(20, 1380.0) - 0.055).abs() < 1e-12);
        // Partial batches are faster but pay the overhead floor.
        let b1 = m.batch_service_s(1, 1380.0);
        let b10 = m.batch_service_s(10, 1380.0);
        assert!(b1 < b10 && b10 < 0.055);
        assert!(b1 > 0.3 * 0.055);
        // Halving frequency follows the γ law.
        let slow = m.batch_service_s(20, 690.0);
        assert!((slow / 0.055 - 2.0_f64.powf(0.91)).abs() < 1e-9);
    }

    #[test]
    fn underload_completes_all_arrivals() {
        // 100 rps against ~300 rps of capacity: drain keeps up.
        let mut e = engine(100.0, 7);
        let mut arrivals = 0;
        let mut completions = 0;
        for _ in 0..120 {
            let s = e.advance(1.0, 1380.0);
            arrivals += s.arrivals;
            completions += s.completions;
            assert!(e.conserved(), "conservation broke");
        }
        assert!(arrivals > 10_000, "arrivals {arrivals}");
        // Everything but the residual queue/in-flight tail completed.
        assert!(arrivals - completions < 50, "{arrivals} vs {completions}");
        assert_eq!(e.dropped_total(), 0);
    }

    #[test]
    fn overload_saturates_and_sheds() {
        // ~364 rps full-batch capacity at 1380 MHz; offer 800 rps.
        let mut e = engine(800.0, 9);
        let mut last = ServeWindowStats::default();
        for _ in 0..60 {
            e.advance_into(1.0, 1380.0, &mut last);
        }
        assert!(last.busy_fraction > 0.95, "{}", last.busy_fraction);
        assert!(e.dropped_total() > 0, "queue never filled");
        assert!(e.conserved());
    }

    #[test]
    fn lower_frequency_inflates_tail_latency() {
        let p99 = |f_mhz: f64| {
            let mut e = engine(150.0, 11);
            let mut lats = Vec::new();
            for _ in 0..90 {
                let s = e.advance(1.0, f_mhz);
                lats.extend_from_slice(&s.request_latencies);
            }
            capgpu_linalg::stats::percentile(&lats, 99.0)
        };
        let fast = p99(1380.0);
        let slow = p99(700.0);
        assert!(
            slow > 1.5 * fast,
            "p99 {slow} at 700 MHz vs {fast} at 1380 MHz"
        );
    }

    #[test]
    fn batch_timeout_bounds_queue_wait_under_trickle() {
        // 5 rps against a 20-batch: without the timeout a batch would
        // wait ~4 s to fill; with a 50 ms timeout p99 stays near the
        // timeout + service scale.
        let mut e = engine(5.0, 13);
        let mut lats = Vec::new();
        for _ in 0..120 {
            lats.extend_from_slice(&e.advance(1.0, 1380.0).request_latencies);
        }
        assert!(!lats.is_empty());
        let worst = lats.iter().cloned().fold(0.0, f64::max);
        assert!(worst < 0.3, "worst latency {worst} s under trickle load");
    }

    #[test]
    fn zero_timeout_dispatches_immediately() {
        let arrivals = ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: 30.0 }, 17).unwrap();
        let mut e = ServeEngine::new(model(), 0.0, 200, arrivals).unwrap();
        let mut batches = 0;
        let mut completions = 0;
        for _ in 0..30 {
            let s = e.advance(1.0, 1380.0);
            batches += s.batches;
            completions += s.completions;
        }
        // Mostly singleton batches: mean batch size stays small.
        assert!(batches > 0);
        assert!((completions as f64 / batches as f64) < 3.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut e = engine(200.0, seed);
            let mut sig = Vec::new();
            for k in 0..60 {
                // Vary frequency to exercise dispatch paths.
                let f = if k % 2 == 0 { 1380.0 } else { 900.0 };
                let s = e.advance(1.0, f);
                sig.push((
                    s.arrivals,
                    s.completions,
                    s.batches,
                    s.request_latencies.clone(),
                ));
            }
            (sig, e.events_total())
        };
        assert_eq!(run(23), run(23));
        assert_ne!(run(23).0, run(24).0);
    }

    #[test]
    fn monotone_timestamps_and_event_accounting() {
        let mut e = engine(300.0, 29);
        let mut events = 0;
        for _ in 0..60 {
            events += e.advance(1.0, 1100.0).events;
        }
        assert!(e.timestamps_monotone());
        assert_eq!(events as u64, e.events_total());
        assert!(e.events_total() > 0);
    }

    #[test]
    fn burst_scale_shifts_load() {
        let mut e = engine(50.0, 31);
        let mut before = 0;
        for _ in 0..30 {
            before += e.advance(1.0, 1380.0).arrivals;
        }
        e.set_intensity_scale(4.0).unwrap();
        let mut after = 0;
        for _ in 0..30 {
            after += e.advance(1.0, 1380.0).arrivals;
        }
        assert!(
            after as f64 > 2.5 * before as f64,
            "before {before} after {after}"
        );
    }
}
