//! Request-level inference serving for CapGPU: queues, dynamic batching
//! and tail-latency observability under a power cap.
//!
//! The paper enforces its latency constraint (10b)/(10c) through the
//! steady-state model `e = e_min · (f_max / f)^γ` — no requests, queues
//! or batches exist in that formulation. Real inference serving (PALS,
//! deadline-aware GPU frequency scaling) shows that power capping's true
//! cost surfaces at the *tail* of a queueing system: frequency cuts
//! inflate service time, queues build, and p99 latency diverges long
//! before the mean does. This crate supplies the missing request level:
//!
//! * [`arrivals`] — pluggable arrival processes: Poisson, 2-state MMPP
//!   (bursty), and deterministic trace-driven arrivals derived from the
//!   synthetic PAI trace in `capgpu_workload::pai`.
//! * [`engine`] — a deterministic discrete-event engine per GPU: a
//!   seeded, binary-heap event queue over arrivals, batching timeouts
//!   and batch completions; a bounded FIFO request queue; and a dynamic
//!   batcher (max batch size + batching timeout) whose batch service
//!   time is the γ latency law scaled by a calibrated batch-efficiency
//!   curve at the device's *effective* (throttle-clamped) frequency.
//!
//! ## Determinism
//!
//! Every stochastic draw comes from a seeded `StdRng` owned by the
//! engine's arrival generator; event ties are broken by a monotone
//! sequence number. The same seed therefore produces bit-identical
//! event sequences, window statistics and per-request latencies across
//! repeated runs and thread counts — the property `capgpu::sweep`
//! relies on when it fans serving scenarios out across OS threads.

#![warn(missing_docs)]

pub mod arrivals;
pub mod engine;

pub use arrivals::{ArrivalGen, ArrivalProcess};
pub use engine::{ServeEngine, ServeWindowStats, ServiceModel};

/// Errors from the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Invalid configuration.
    BadConfig(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadConfig(m) => write!(f, "bad serving config: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Result alias for the serving layer.
pub type Result<T> = std::result::Result<T, ServeError>;
