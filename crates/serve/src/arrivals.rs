//! Arrival processes for the serving engine.
//!
//! Three request streams cover the traffic shapes power-capping serving
//! work evaluates against: memoryless Poisson (the queueing-theory
//! baseline), a 2-state Markov-modulated Poisson process whose high-rate
//! phase models bursts, and a deterministic trace-driven stream whose
//! inter-arrival times are derived from the synthetic Alibaba-PAI trace
//! (`capgpu_workload::pai`) so request pressure inherits the production
//! trace's job-mix variability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Result, ServeError};

/// Declarative description of a request arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless Poisson arrivals at a constant mean rate.
    Poisson {
        /// Mean arrival rate (requests/s).
        rate_rps: f64,
    },
    /// 2-state Markov-modulated Poisson process: a low-rate baseline
    /// phase and a high-rate burst phase with exponentially distributed
    /// dwell times. The classic bursty-traffic model.
    Mmpp {
        /// Arrival rate during the baseline phase (requests/s).
        rate_low_rps: f64,
        /// Arrival rate during the burst phase (requests/s).
        rate_high_rps: f64,
        /// Mean dwell time in the baseline phase (s).
        mean_dwell_low_s: f64,
        /// Mean dwell time in the burst phase (s).
        mean_dwell_high_s: f64,
    },
    /// Deterministic trace-driven arrivals: the given inter-arrival
    /// times are replayed cyclically. Use [`ArrivalProcess::pai_trace`]
    /// to derive one from the synthetic PAI workload trace.
    Trace {
        /// Inter-arrival times (s), replayed in order and wrapped.
        iats: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// A trace-driven process derived from the synthetic PAI trace:
    /// each job's (log-)duration, normalized by the trace mean, becomes
    /// one inter-arrival gap, scaled so the stream's long-run mean rate
    /// is `mean_rate_rps`. Heavier jobs therefore space requests out and
    /// light-job runs bunch them — deterministic, production-shaped
    /// variability with no RNG at serve time.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] on a non-positive row count or rate.
    pub fn pai_trace(n_rows: usize, seed: u64, mean_rate_rps: f64) -> Result<Self> {
        if n_rows == 0 {
            return Err(ServeError::BadConfig("PAI trace needs >= 1 row"));
        }
        if !(mean_rate_rps > 0.0 && mean_rate_rps.is_finite()) {
            return Err(ServeError::BadConfig("trace mean rate must be positive"));
        }
        let trace = capgpu_workload::pai::generate(n_rows, seed);
        let mean_y: f64 = trace.y.iter().sum::<f64>() / trace.y.len() as f64;
        let iats = trace
            .y
            .iter()
            .map(|&y| (y / mean_y) / mean_rate_rps)
            .collect();
        Ok(ArrivalProcess::Trace { iats })
    }

    /// The process's nominal mean rate (requests/s), before any
    /// intensity scaling. MMPP reports the dwell-weighted average.
    pub fn mean_rate_rps(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_rps } => *rate_rps,
            ArrivalProcess::Mmpp {
                rate_low_rps,
                rate_high_rps,
                mean_dwell_low_s,
                mean_dwell_high_s,
            } => {
                (rate_low_rps * mean_dwell_low_s + rate_high_rps * mean_dwell_high_s)
                    / (mean_dwell_low_s + mean_dwell_high_s)
            }
            ArrivalProcess::Trace { iats } => {
                let total: f64 = iats.iter().sum();
                if total > 0.0 {
                    iats.len() as f64 / total
                } else {
                    0.0
                }
            }
        }
    }

    /// The same process with its mean rate multiplied by `factor`
    /// (arrival-rate sweeps scale one base scenario's traffic).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> ArrivalProcess {
        match self {
            ArrivalProcess::Poisson { rate_rps } => ArrivalProcess::Poisson {
                rate_rps: rate_rps * factor,
            },
            ArrivalProcess::Mmpp {
                rate_low_rps,
                rate_high_rps,
                mean_dwell_low_s,
                mean_dwell_high_s,
            } => ArrivalProcess::Mmpp {
                rate_low_rps: rate_low_rps * factor,
                rate_high_rps: rate_high_rps * factor,
                mean_dwell_low_s: *mean_dwell_low_s,
                mean_dwell_high_s: *mean_dwell_high_s,
            },
            ArrivalProcess::Trace { iats } => ArrivalProcess::Trace {
                iats: iats.iter().map(|g| g / factor).collect(),
            },
        }
    }

    /// Validates the process parameters.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] describing the first inconsistency.
    pub fn validate(&self) -> Result<()> {
        let pos = |x: f64| x > 0.0 && x.is_finite();
        match self {
            ArrivalProcess::Poisson { rate_rps } => {
                if !pos(*rate_rps) {
                    return Err(ServeError::BadConfig("Poisson rate must be positive"));
                }
            }
            ArrivalProcess::Mmpp {
                rate_low_rps,
                rate_high_rps,
                mean_dwell_low_s,
                mean_dwell_high_s,
            } => {
                if !(pos(*rate_low_rps)
                    && pos(*rate_high_rps)
                    && pos(*mean_dwell_low_s)
                    && pos(*mean_dwell_high_s))
                {
                    return Err(ServeError::BadConfig(
                        "MMPP rates and dwell times must be positive",
                    ));
                }
            }
            ArrivalProcess::Trace { iats } => {
                if iats.is_empty() {
                    return Err(ServeError::BadConfig("trace needs >= 1 inter-arrival time"));
                }
                if iats.iter().any(|g| !(*g > 0.0 && g.is_finite())) {
                    return Err(ServeError::BadConfig(
                        "trace inter-arrival times must be positive",
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Stateful arrival generator: owns the process, its seeded RNG and an
/// intensity scale (the knob scheduled bursts turn).
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: StdRng,
    /// Multiplier on the instantaneous arrival intensity.
    scale: f64,
    /// MMPP phase: `true` = burst (high-rate) phase.
    mmpp_high: bool,
    /// MMPP: absolute time of the next phase switch.
    next_switch: f64,
    /// Trace: index of the next inter-arrival gap.
    trace_idx: usize,
}

impl ArrivalGen {
    /// Creates a generator; MMPP starts in the baseline phase.
    ///
    /// # Errors
    /// Propagates [`ArrivalProcess::validate`] failures.
    pub fn new(process: ArrivalProcess, seed: u64) -> Result<Self> {
        process.validate()?;
        let mut gen = ArrivalGen {
            process,
            rng: StdRng::seed_from_u64(seed),
            scale: 1.0,
            mmpp_high: false,
            next_switch: f64::INFINITY,
            trace_idx: 0,
        };
        if let ArrivalProcess::Mmpp {
            mean_dwell_low_s, ..
        } = gen.process
        {
            gen.next_switch = gen.draw_exp(1.0 / mean_dwell_low_s);
        }
        Ok(gen)
    }

    /// Current intensity scale.
    pub fn intensity_scale(&self) -> f64 {
        self.scale
    }

    /// Scales the instantaneous arrival intensity (a scheduled burst or
    /// ebb). Affects only draws made after the call.
    ///
    /// # Errors
    /// [`ServeError::BadConfig`] on a non-positive or non-finite scale.
    pub fn set_intensity_scale(&mut self, scale: f64) -> Result<()> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(ServeError::BadConfig("intensity scale must be positive"));
        }
        self.scale = scale;
        Ok(())
    }

    /// Exponential draw with the given rate (already intensity-scaled by
    /// the caller where applicable).
    fn draw_exp(&mut self, rate: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / rate
    }

    /// Draws the next arrival time strictly after `t`.
    pub fn next_after(&mut self, t: f64) -> f64 {
        match &self.process {
            ArrivalProcess::Poisson { rate_rps } => {
                let rate = rate_rps * self.scale;
                t + self.draw_exp(rate)
            }
            ArrivalProcess::Mmpp {
                rate_low_rps,
                rate_high_rps,
                mean_dwell_low_s,
                mean_dwell_high_s,
            } => {
                let (rl, rh, dl, dh) = (
                    *rate_low_rps,
                    *rate_high_rps,
                    *mean_dwell_low_s,
                    *mean_dwell_high_s,
                );
                let mut from = t;
                loop {
                    let rate = if self.mmpp_high { rh } else { rl } * self.scale;
                    let candidate = from + self.draw_exp(rate);
                    if candidate <= self.next_switch {
                        return candidate;
                    }
                    // Phase switches first; memorylessness lets us
                    // restart the draw from the switch instant at the
                    // new phase's rate.
                    from = self.next_switch;
                    self.mmpp_high = !self.mmpp_high;
                    let dwell = if self.mmpp_high { dh } else { dl };
                    self.next_switch = from + self.draw_exp(1.0 / dwell);
                }
            }
            ArrivalProcess::Trace { iats } => {
                let gap = iats[self.trace_idx % iats.len()] / self.scale;
                self.trace_idx += 1;
                t + gap
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_rate(gen: &mut ArrivalGen, horizon_s: f64) -> f64 {
        let mut t = 0.0;
        let mut n = 0usize;
        loop {
            t = gen.next_after(t);
            if t > horizon_s {
                break;
            }
            n += 1;
        }
        n as f64 / horizon_s
    }

    #[test]
    fn poisson_rate_matches() {
        let mut gen = ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: 80.0 }, 7).unwrap();
        let r = mean_rate(&mut gen, 200.0);
        assert!((r - 80.0).abs() < 5.0, "measured rate {r}");
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let draws = |seed| {
            let mut gen =
                ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: 50.0 }, seed).unwrap();
            let mut t = 0.0;
            (0..100)
                .map(|_| {
                    t = gen.next_after(t);
                    t
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(3), draws(3));
        assert_ne!(draws(3), draws(4));
    }

    #[test]
    fn mmpp_long_run_rate_is_dwell_weighted() {
        let p = ArrivalProcess::Mmpp {
            rate_low_rps: 20.0,
            rate_high_rps: 200.0,
            mean_dwell_low_s: 8.0,
            mean_dwell_high_s: 2.0,
        };
        let expected = p.mean_rate_rps();
        assert!((expected - 56.0).abs() < 1e-9);
        let mut gen = ArrivalGen::new(p, 11).unwrap();
        let r = mean_rate(&mut gen, 2000.0);
        assert!(
            (r - expected).abs() < 0.15 * expected,
            "rate {r} vs {expected}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Per-second arrival counts: MMPP's variance/mean (index of
        // dispersion) must clearly exceed Poisson's ~1.
        let dispersion = |p: ArrivalProcess| {
            let mut gen = ArrivalGen::new(p, 13).unwrap();
            let mut counts = vec![0usize; 1000];
            let mut t = 0.0;
            loop {
                t = gen.next_after(t);
                if t >= counts.len() as f64 {
                    break;
                }
                counts[t as usize] += 1;
            }
            let xs: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
            v / m
        };
        let poisson = dispersion(ArrivalProcess::Poisson { rate_rps: 56.0 });
        let mmpp = dispersion(ArrivalProcess::Mmpp {
            rate_low_rps: 20.0,
            rate_high_rps: 200.0,
            mean_dwell_low_s: 8.0,
            mean_dwell_high_s: 2.0,
        });
        assert!(poisson < 1.5, "Poisson dispersion {poisson}");
        assert!(mmpp > 3.0, "MMPP dispersion {mmpp}");
    }

    #[test]
    fn pai_trace_rate_and_determinism() {
        let p = ArrivalProcess::pai_trace(500, 21, 40.0).unwrap();
        assert!((p.mean_rate_rps() - 40.0).abs() < 1e-9);
        let q = ArrivalProcess::pai_trace(500, 21, 40.0).unwrap();
        assert_eq!(p, q);
        // Trace arrivals ignore the RNG entirely: two generators with
        // different seeds replay the same gaps.
        let mut a = ArrivalGen::new(p.clone(), 1).unwrap();
        let mut b = ArrivalGen::new(p, 2).unwrap();
        for _ in 0..50 {
            let t = a.next_after(0.0);
            assert_eq!(t, b.next_after(0.0));
        }
    }

    #[test]
    fn intensity_scale_shifts_rate() {
        let mut gen = ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: 40.0 }, 17).unwrap();
        gen.set_intensity_scale(3.0).unwrap();
        let r = mean_rate(&mut gen, 200.0);
        assert!((r - 120.0).abs() < 10.0, "scaled rate {r}");
        assert!(gen.set_intensity_scale(0.0).is_err());
        assert!(gen.set_intensity_scale(f64::NAN).is_err());
    }

    #[test]
    fn scaling_multiplies_mean_rate() {
        let procs = [
            ArrivalProcess::Poisson { rate_rps: 40.0 },
            ArrivalProcess::Mmpp {
                rate_low_rps: 20.0,
                rate_high_rps: 200.0,
                mean_dwell_low_s: 8.0,
                mean_dwell_high_s: 2.0,
            },
            ArrivalProcess::pai_trace(200, 5, 40.0).unwrap(),
        ];
        for p in procs {
            let scaled = p.scaled(1.5);
            scaled.validate().unwrap();
            assert!(
                (scaled.mean_rate_rps() - 1.5 * p.mean_rate_rps()).abs() < 1e-9 * p.mean_rate_rps(),
                "{p:?}"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_processes() {
        assert!(ArrivalProcess::Poisson { rate_rps: 0.0 }
            .validate()
            .is_err());
        assert!(ArrivalProcess::Mmpp {
            rate_low_rps: 10.0,
            rate_high_rps: -1.0,
            mean_dwell_low_s: 5.0,
            mean_dwell_high_s: 5.0,
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::Trace { iats: vec![] }.validate().is_err());
        assert!(ArrivalProcess::Trace {
            iats: vec![0.1, 0.0]
        }
        .validate()
        .is_err());
        assert!(ArrivalProcess::pai_trace(0, 1, 10.0).is_err());
        assert!(ArrivalProcess::pai_trace(10, 1, 0.0).is_err());
    }
}
