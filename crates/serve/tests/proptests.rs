//! Property tests for the discrete-event serving engine: request
//! conservation at every window boundary, monotone event timestamps,
//! bounded window statistics, and bit-identical replay per seed.

use capgpu_serve::{ArrivalGen, ArrivalProcess, ServeEngine, ServiceModel};
use proptest::prelude::*;

fn model(max_batch: usize, overhead: f64) -> ServiceModel {
    ServiceModel {
        e_min_s: 0.06,
        gamma: 0.91,
        f_max_mhz: 1380.0,
        max_batch,
        batch_overhead: overhead,
    }
}

fn process(kind: u8, rate: f64) -> ArrivalProcess {
    match kind % 3 {
        0 => ArrivalProcess::Poisson { rate_rps: rate },
        1 => ArrivalProcess::Mmpp {
            rate_low_rps: rate * 0.5,
            rate_high_rps: rate * 3.0,
            mean_dwell_low_s: 6.0,
            mean_dwell_high_s: 2.0,
        },
        _ => ArrivalProcess::pai_trace(200, 99, rate).expect("trace"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_and_bounds_hold_at_every_window(
        kind in 0u8..3,
        rate in 20.0..600.0f64,
        timeout in 0.0..0.2f64,
        max_batch in 1usize..32,
        overhead in 0.0..0.9f64,
        seed in 0u64..1000,
        f_lo in 400.0..900.0f64,
        f_hi in 900.0..1380.0f64,
    ) {
        let arrivals = ArrivalGen::new(process(kind, rate), seed).unwrap();
        let capacity = max_batch.max(64);
        let mut engine =
            ServeEngine::new(model(max_batch, overhead), timeout, capacity, arrivals).unwrap();
        for k in 0..40 {
            // Alternate frequencies so dispatches span service times.
            let f = if k % 2 == 0 { f_hi } else { f_lo };
            let s = engine.advance(1.0, f);
            // Conservation: arrivals == completions + dropped + queued
            // + in flight, at every window boundary.
            prop_assert!(engine.conserved(), "window {k}");
            prop_assert!((0.0..=1.0).contains(&s.busy_fraction));
            prop_assert!(s.queue_len_end <= capacity);
            prop_assert_eq!(s.request_latencies.len(), s.completions);
            for l in &s.request_latencies {
                prop_assert!(*l > 0.0 && l.is_finite());
            }
            prop_assert!(s.mean_batch_size() <= max_batch as f64 + 1e-9);
        }
        // Timestamps popped from the heap never went backwards.
        prop_assert!(engine.timestamps_monotone());
        prop_assert!(engine.events_total() > 0);
    }

    #[test]
    fn same_seed_replays_bit_identical(
        kind in 0u8..3,
        rate in 20.0..400.0f64,
        seed in 0u64..1000,
    ) {
        let run = || {
            let arrivals = ArrivalGen::new(process(kind, rate), seed).unwrap();
            let mut engine =
                ServeEngine::new(model(20, 0.3), 0.05, 128, arrivals).unwrap();
            let mut sig: Vec<(usize, usize, usize, Vec<f64>)> = Vec::new();
            for k in 0..25 {
                let f = if k % 3 == 0 { 700.0 } else { 1300.0 };
                let s = engine.advance(1.0, f);
                sig.push((s.arrivals, s.completions, s.batches, s.request_latencies));
            }
            (sig, engine.events_total(), engine.completions_total())
        };
        let a = run();
        let b = run();
        // Bit-identical: exact f64 equality on every latency.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn drops_only_when_queue_caps(
        rate in 20.0..200.0f64,
        seed in 0u64..500,
    ) {
        // A queue big enough for the offered load never sheds.
        let arrivals =
            ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: rate }, seed).unwrap();
        let mut engine = ServeEngine::new(model(20, 0.3), 0.05, 4096, arrivals).unwrap();
        for _ in 0..30 {
            engine.advance(1.0, 1380.0);
        }
        prop_assert_eq!(engine.dropped_total(), 0);
        prop_assert!(engine.conserved());
    }
}
