//! SLSQP-style sequential quadratic programming.
//!
//! The paper implements the CapGPU controller "with SLSQP in Python"
//! (§4.3). This module is the native equivalent: a damped-BFGS SQP loop
//! whose subproblems are solved by the active-set QP solver from [`crate::qp`],
//! globalized with an L1 merit function and Armijo backtracking.
//!
//! The production MPC path reduces its SLO constraints analytically and
//! solves a single QP; this solver exists to (a) mirror the paper's solver
//! choice for the *non-reduced* nonlinear latency constraint
//! `e_min·(f_max/f)^γ ≤ SLO`, and (b) cross-validate the reduction — the
//! test suites assert both paths land on the same optimum.

use capgpu_linalg::{vector, Matrix};

use crate::qp::{ActiveSetQp, LinearConstraint, QpProblem};
use crate::{OptimError, Result};

/// A smooth nonlinear program:
///
/// ```text
///   minimize    f(x)
///   subject to  cᵢ(x) ≤ 0   (i = 1..m)
///               lo ≤ x ≤ hi
/// ```
pub trait NlpProblem {
    /// Problem dimension.
    fn dim(&self) -> usize;

    /// Number of (non-box) inequality constraints.
    fn num_constraints(&self) -> usize;

    /// Objective value.
    fn objective(&self, x: &[f64]) -> f64;

    /// Constraint values `cᵢ(x)` (≤ 0 feasible).
    fn constraints(&self, x: &[f64]) -> Vec<f64>;

    /// Box lower bounds (may be −∞).
    fn lower_bounds(&self) -> Vec<f64> {
        vec![f64::NEG_INFINITY; self.dim()]
    }

    /// Box upper bounds (may be +∞).
    fn upper_bounds(&self) -> Vec<f64> {
        vec![f64::INFINITY; self.dim()]
    }

    /// Objective gradient; default is central finite differences.
    fn objective_gradient(&self, x: &[f64]) -> Vec<f64> {
        finite_difference(x, |p| self.objective(p))
    }

    /// Jacobian of the constraints, row `i` = ∇cᵢ; default is central
    /// finite differences.
    fn constraint_jacobian(&self, x: &[f64]) -> Matrix {
        let m = self.num_constraints();
        let n = self.dim();
        let mut jac = Matrix::zeros(m, n);
        for i in 0..m {
            let gi = finite_difference(x, |p| self.constraints(p)[i]);
            for j in 0..n {
                jac[(i, j)] = gi[j];
            }
        }
        jac
    }
}

/// Central finite-difference gradient with adaptive step.
pub fn finite_difference(x: &[f64], f: impl Fn(&[f64]) -> f64) -> Vec<f64> {
    let n = x.len();
    let mut g = vec![0.0; n];
    let mut xp = x.to_vec();
    for i in 0..n {
        let h = 1e-6 * (1.0 + x[i].abs());
        xp[i] = x[i] + h;
        let fp = f(&xp);
        xp[i] = x[i] - h;
        let fm = f(&xp);
        xp[i] = x[i];
        g[i] = (fp - fm) / (2.0 * h);
    }
    g
}

/// Solver options.
#[derive(Debug, Clone)]
pub struct SqpOptions {
    /// Maximum major (SQP) iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the step ∞-norm and constraint violation.
    pub tolerance: f64,
    /// Initial L1 merit penalty.
    pub initial_penalty: f64,
}

impl Default for SqpOptions {
    fn default() -> Self {
        SqpOptions {
            max_iterations: 100,
            tolerance: 1e-8,
            initial_penalty: 10.0,
        }
    }
}

/// Result of an SQP run.
#[derive(Debug, Clone)]
pub struct SqpResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Objective at the final iterate.
    pub objective: f64,
    /// Maximum constraint violation at the final iterate.
    pub max_violation: f64,
    /// Major iterations used.
    pub iterations: usize,
}

/// The SQP solver.
#[derive(Debug, Clone, Default)]
pub struct SqpSolver {
    /// Options.
    pub options: SqpOptions,
}

impl SqpSolver {
    /// Creates a solver with the given options.
    pub fn new(options: SqpOptions) -> Self {
        SqpSolver { options }
    }

    /// Minimizes the problem starting from `x0` (projected onto the box).
    ///
    /// # Errors
    /// * [`OptimError::BadProblem`] on dimension mismatch.
    /// * [`OptimError::IterationLimit`] if the major loop does not converge.
    /// * QP subproblem errors are propagated.
    pub fn solve(&self, problem: &impl NlpProblem, x0: &[f64]) -> Result<SqpResult> {
        let n = problem.dim();
        if x0.len() != n {
            return Err(OptimError::BadProblem("x0 length != problem dim"));
        }
        let lo = problem.lower_bounds();
        let hi = problem.upper_bounds();
        if lo.len() != n || hi.len() != n {
            return Err(OptimError::BadProblem("bound length != problem dim"));
        }
        let mut x = vector::clamp_box(x0, &lo, &hi);
        let mut b = Matrix::identity(n); // BFGS Hessian approximation
        let mut mu = self.options.initial_penalty;
        let qp_solver = ActiveSetQp::default();

        let merit = |x: &[f64], mu: f64| -> f64 {
            let viol: f64 = problem.constraints(x).iter().map(|c| c.max(0.0)).sum();
            problem.objective(x) + mu * viol
        };

        let mut grad = problem.objective_gradient(&x);
        for iter in 0..self.options.max_iterations {
            let cons = problem.constraints(&x);
            let jac = problem.constraint_jacobian(&x);
            let m = cons.len();

            // Build the QP subproblem in the step p, in *elastic mode*
            // (the standard SLSQP/SNOPT device): one slack scalar t ≥ 0
            // jointly relaxes the linearized constraints so the subproblem
            // is always feasible, and a linear penalty μ·t drives t to 0
            // whenever the linearization itself is feasible.
            //
            //   min  ½pᵀBp + ∇fᵀp + ε·t² + μ·t
            //   s.t. ∇cᵢᵀp − t ≤ −cᵢ,  t ≥ 0,  lo − x ≤ p ≤ hi − x.
            let dim = n + 1; // [p; t]
            let mut h_sub = Matrix::zeros(dim, dim);
            for i in 0..n {
                for j in 0..n {
                    h_sub[(i, j)] = b[(i, j)];
                }
            }
            h_sub[(n, n)] = 1e-4; // keep the Hessian SPD in t
            let mut g_sub = grad.clone();
            g_sub.push(mu);
            let mut qcons = Vec::with_capacity(m + 2 * n + 1);
            for i in 0..m {
                let mut a: Vec<f64> = (0..n).map(|j| jac[(i, j)]).collect();
                a.push(-1.0); // − t
                qcons.push(LinearConstraint::new(a, -cons[i]));
            }
            qcons.push(LinearConstraint::lower_bound(dim, n, 0.0)); // t ≥ 0
            for j in 0..n {
                if hi[j].is_finite() {
                    qcons.push(LinearConstraint::upper_bound(dim, j, hi[j] - x[j]));
                }
                if lo[j].is_finite() {
                    qcons.push(LinearConstraint::lower_bound(dim, j, lo[j] - x[j]));
                }
            }
            let qp = QpProblem::new(h_sub, g_sub, qcons)?;
            // Feasible start: p = 0, t = current max violation (+ margin).
            let viol0: f64 = cons.iter().map(|c| c.max(0.0)).fold(0.0, f64::max);
            let mut start = vec![0.0; dim];
            start[n] = viol0 + 1e-9;
            let sub = qp_solver.solve(&qp, &start)?;
            let p = sub.x[..n].to_vec();

            // Penalty update: μ must dominate the multipliers for the L1
            // merit function to be exact.
            let lambda_max = sub.multipliers.iter().cloned().fold(0.0_f64, f64::max);
            mu = mu.max(2.0 * lambda_max + 1.0);

            let viol_now: f64 = cons.iter().map(|c| c.max(0.0)).fold(0.0, f64::max);
            if vector::norm_inf(&p) <= self.options.tolerance && viol_now <= self.options.tolerance
            {
                return Ok(SqpResult {
                    objective: problem.objective(&x),
                    max_violation: viol_now,
                    x,
                    iterations: iter + 1,
                });
            }

            // Armijo backtracking on the merit function.
            let merit0 = merit(&x, mu);
            // Directional derivative estimate of the merit function.
            let viol_l1: f64 = cons.iter().map(|c| c.max(0.0)).sum();
            let ddir = vector::dot(&grad, &p) - mu * viol_l1;
            let mut alpha = 1.0;
            let mut x_new = vector::clamp_box(&vector::axpy(&x, alpha, &p), &lo, &hi);
            let mut accepted = false;
            for _ in 0..30 {
                if merit(&x_new, mu) <= merit0 + 1e-4 * alpha * ddir.min(0.0) {
                    accepted = true;
                    break;
                }
                alpha *= 0.5;
                x_new = vector::clamp_box(&vector::axpy(&x, alpha, &p), &lo, &hi);
            }
            if !accepted {
                // The merit function cannot decrease along p; accept the
                // tiny step anyway (standard last-resort in SLSQP codes) —
                // B is reset so the next direction is gradient-like.
                b = Matrix::identity(n);
            }

            // Damped BFGS update (Powell's damping keeps B positive
            // definite even when curvature along s is negative).
            let grad_new = problem.objective_gradient(&x_new);
            let s = vector::sub(&x_new, &x);
            let y = vector::sub(&grad_new, &grad);
            let sts = vector::dot(&s, &s);
            if sts > 1e-16 {
                let bs = b.matvec(&s);
                let sbs = vector::dot(&s, &bs);
                let sy = vector::dot(&s, &y);
                let theta = if sy >= 0.2 * sbs {
                    1.0
                } else {
                    0.8 * sbs / (sbs - sy)
                };
                // r = θ·y + (1−θ)·B·s ensures sᵀr ≥ 0.2·sᵀBs > 0.
                let r: Vec<f64> = y
                    .iter()
                    .zip(bs.iter())
                    .map(|(yi, bsi)| theta * yi + (1.0 - theta) * bsi)
                    .collect();
                let sr = vector::dot(&s, &r);
                if sr > 1e-12 && sbs > 1e-12 {
                    // B ← B − (B s sᵀ B)/(sᵀBs) + (r rᵀ)/(sᵀr)
                    for i in 0..n {
                        for j in 0..n {
                            b[(i, j)] += -bs[i] * bs[j] / sbs + r[i] * r[j] / sr;
                        }
                    }
                }
            }
            x = x_new;
            grad = grad_new;
        }
        Err(OptimError::IterationLimit {
            iterations: self.options.max_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// min (x−3)² + (y−4)²  s.t. x + y ≤ 5, 0 ≤ x,y ≤ 10.
    struct QuadraticWithHalfspace;

    impl NlpProblem for QuadraticWithHalfspace {
        fn dim(&self) -> usize {
            2
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn objective(&self, x: &[f64]) -> f64 {
            (x[0] - 3.0).powi(2) + (x[1] - 4.0).powi(2)
        }
        fn constraints(&self, x: &[f64]) -> Vec<f64> {
            vec![x[0] + x[1] - 5.0]
        }
        fn lower_bounds(&self) -> Vec<f64> {
            vec![0.0, 0.0]
        }
        fn upper_bounds(&self) -> Vec<f64> {
            vec![10.0, 10.0]
        }
    }

    #[test]
    fn quadratic_with_halfspace() {
        let sol = SqpSolver::default()
            .solve(&QuadraticWithHalfspace, &[0.0, 0.0])
            .unwrap();
        // Analytic optimum: project (3,4) onto x+y=5 → (2, 3).
        assert!((sol.x[0] - 2.0).abs() < 1e-5, "{:?}", sol.x);
        assert!((sol.x[1] - 3.0).abs() < 1e-5, "{:?}", sol.x);
        assert!(sol.max_violation < 1e-6);
    }

    /// Rosenbrock with a box — classic nonconvex smoke test.
    struct BoxedRosenbrock;

    impl NlpProblem for BoxedRosenbrock {
        fn dim(&self) -> usize {
            2
        }
        fn num_constraints(&self) -> usize {
            0
        }
        fn objective(&self, x: &[f64]) -> f64 {
            (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)
        }
        fn constraints(&self, _x: &[f64]) -> Vec<f64> {
            vec![]
        }
        fn lower_bounds(&self) -> Vec<f64> {
            vec![-2.0, -2.0]
        }
        fn upper_bounds(&self) -> Vec<f64> {
            vec![2.0, 2.0]
        }
    }

    #[test]
    fn rosenbrock_converges() {
        let opts = SqpOptions {
            max_iterations: 500,
            tolerance: 1e-7,
            initial_penalty: 10.0,
        };
        let sol = SqpSolver::new(opts)
            .solve(&BoxedRosenbrock, &[-1.2, 1.0])
            .unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-3, "{:?}", sol.x);
        assert!((sol.x[1] - 1.0).abs() < 1e-3, "{:?}", sol.x);
    }

    /// The CapGPU latency constraint in its raw nonlinear form:
    /// maximize f (minimize −f) subject to e_min·(f_max/f)^γ ≤ SLO.
    struct LatencyConstrained {
        e_min: f64,
        gamma: f64,
        f_max: f64,
        slo: f64,
    }

    impl NlpProblem for LatencyConstrained {
        fn dim(&self) -> usize {
            1
        }
        fn num_constraints(&self) -> usize {
            1
        }
        fn objective(&self, x: &[f64]) -> f64 {
            // Prefer low frequency (power saving) — the constraint must
            // push frequency *up* to its analytic floor.
            x[0]
        }
        fn constraints(&self, x: &[f64]) -> Vec<f64> {
            vec![self.e_min * (self.f_max / x[0]).powf(self.gamma) - self.slo]
        }
        fn lower_bounds(&self) -> Vec<f64> {
            vec![100.0]
        }
        fn upper_bounds(&self) -> Vec<f64> {
            vec![self.f_max]
        }
    }

    #[test]
    fn latency_constraint_matches_analytic_reduction() {
        let p = LatencyConstrained {
            e_min: 0.05,
            gamma: 0.91,
            f_max: 1350.0,
            slo: 0.08,
        };
        let sol = SqpSolver::default().solve(&p, &[1350.0]).unwrap();
        // Analytic floor: f ≥ f_max·(e_min/SLO)^{1/γ}.
        let floor = 1350.0 * (0.05_f64 / 0.08).powf(1.0 / 0.91);
        assert!(
            (sol.x[0] - floor).abs() < 0.5,
            "sqp {} vs analytic {floor}",
            sol.x[0]
        );
    }

    #[test]
    fn infeasible_start_recovers() {
        // Start violating x+y ≤ 5; relaxed linearization must pull back in.
        let sol = SqpSolver::default()
            .solve(&QuadraticWithHalfspace, &[5.0, 5.0])
            .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-4);
        assert!((sol.x[1] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn finite_difference_gradient() {
        let g = finite_difference(&[2.0, -1.0], |x| x[0] * x[0] + 3.0 * x[1]);
        assert!((g[0] - 4.0).abs() < 1e-5);
        assert!((g[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_start_length() {
        assert!(matches!(
            SqpSolver::default()
                .solve(&QuadraticWithHalfspace, &[0.0])
                .unwrap_err(),
            OptimError::BadProblem(_)
        ));
    }
}
