//! Constrained optimization solvers for the CapGPU controller.
//!
//! The paper implements its model-predictive controller "with SLSQP in
//! Python" (§4.3). This crate provides the equivalent machinery natively:
//!
//! * [`qp`] — a primal **active-set solver** for strictly convex quadratic
//!   programs with general linear inequality constraints. The condensed MPC
//!   problem (paper Eq. 9 with constraints 10a–10c reduced to linear form)
//!   is exactly such a QP, so this is the production path of the controller.
//! * [`boxqp`] — a **box-constrained specialization** of the active-set
//!   solver. After the cumulative-move change of variables the condensed MPC
//!   problem has only per-variable bounds, so the working set is a bound
//!   state per variable and each active-set change is an `O(f²)` incremental
//!   Cholesky update instead of a dense KKT re-factorization. This is the
//!   fast path of the controller (opt-in via `MpcConfig::fast_solver`).
//! * [`projgrad`] — **projected gradient descent** for box-constrained QPs.
//!   Slower but simple; used as an independent cross-check of the active-set
//!   solver in tests and as a fallback if the active set cycles.
//! * [`sqp`] — an **SLSQP-style sequential quadratic programming** loop
//!   (damped-BFGS Hessian, L1 merit line search) for smooth nonlinear
//!   problems. This mirrors the paper's solver choice and handles the
//!   *non-reduced* latency constraint `e_min·(f_max/f)^γ ≤ SLO` directly;
//!   tests verify it agrees with the analytic reduction used by the QP path.
//! * [`kkt`] — first-order optimality (KKT) condition checking shared by the
//!   test suites of all solvers.

#![warn(missing_docs)]

pub mod boxqp;
pub mod kkt;
pub mod projgrad;
pub mod qp;
pub mod sqp;

pub use boxqp::{BoxFactor, BoxQp, BoxQpProblem, BoxQpSolution, VarState};
pub use qp::{ActiveSetQp, QpProblem, QpSolution};
pub use sqp::{NlpProblem, SqpOptions, SqpResult, SqpSolver};

/// Errors produced by the optimization solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimError {
    /// The problem definition is inconsistent (dimension mismatches,
    /// lb > ub, non-square Hessian, …). The message explains the issue.
    BadProblem(&'static str),
    /// The provided starting point violates the constraints.
    InfeasibleStart,
    /// The solver hit its iteration limit before reaching the tolerance.
    IterationLimit {
        /// Iterations performed.
        iterations: usize,
    },
    /// A linear-algebra subroutine failed (e.g. singular KKT system).
    Numerical(capgpu_linalg::LinalgError),
}

impl std::fmt::Display for OptimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimError::BadProblem(msg) => write!(f, "ill-posed problem: {msg}"),
            OptimError::InfeasibleStart => write!(f, "starting point is infeasible"),
            OptimError::IterationLimit { iterations } => {
                write!(f, "iteration limit reached after {iterations} iterations")
            }
            OptimError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for OptimError {}

impl From<capgpu_linalg::LinalgError> for OptimError {
    fn from(e: capgpu_linalg::LinalgError) -> Self {
        OptimError::Numerical(e)
    }
}

/// Result alias for optimization routines.
pub type Result<T> = std::result::Result<T, OptimError>;
