//! First-order optimality (KKT) condition checking.
//!
//! Shared by the QP and SQP test suites: a solution is accepted only when
//! stationarity, primal feasibility, dual feasibility, and complementary
//! slackness all hold within tolerance. The controller's own regression
//! tests lean on this to prove the MPC solve is a true optimum, not just a
//! feasible point.

use capgpu_linalg::vector;

use crate::qp::QpProblem;

/// A violated KKT condition, with the worst offending magnitude.
#[derive(Debug, Clone, PartialEq)]
pub enum KktViolation {
    /// `‖H x + g + Aᵀλ‖∞` exceeds tolerance.
    Stationarity(f64),
    /// Some constraint is violated by this much.
    PrimalFeasibility(f64),
    /// Some multiplier is negative by this much.
    DualFeasibility(f64),
    /// Some `λᵢ · cᵢ(x)` product exceeds tolerance.
    ComplementarySlackness(f64),
}

impl std::fmt::Display for KktViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KktViolation::Stationarity(v) => write!(f, "stationarity violated by {v:e}"),
            KktViolation::PrimalFeasibility(v) => {
                write!(f, "primal feasibility violated by {v:e}")
            }
            KktViolation::DualFeasibility(v) => write!(f, "dual feasibility violated by {v:e}"),
            KktViolation::ComplementarySlackness(v) => {
                write!(f, "complementary slackness violated by {v:e}")
            }
        }
    }
}

/// Checks the KKT conditions of a QP solution.
///
/// # Errors
/// Returns the first violated condition with its magnitude.
pub fn check_qp(
    qp: &QpProblem,
    x: &[f64],
    multipliers: &[f64],
    tol: f64,
) -> Result<(), KktViolation> {
    assert_eq!(multipliers.len(), qp.constraints.len(), "multiplier count");

    // Stationarity: ∇f(x) + Σ λᵢ aᵢ = 0.
    let mut grad = qp.objective_gradient(x);
    for (lam, c) in multipliers.iter().zip(qp.constraints.iter()) {
        grad = vector::axpy(&grad, *lam, &c.a);
    }
    let stat = vector::norm_inf(&grad);
    if stat > tol {
        return Err(KktViolation::Stationarity(stat));
    }

    // Primal feasibility.
    let viol = qp.max_violation(x);
    if viol > tol {
        return Err(KktViolation::PrimalFeasibility(viol));
    }

    // Dual feasibility.
    let min_lambda = multipliers.iter().cloned().fold(0.0_f64, f64::min);
    if min_lambda < -tol {
        return Err(KktViolation::DualFeasibility(-min_lambda));
    }

    // Complementary slackness — scaled by the constraint magnitude so large
    // right-hand sides don't produce spurious failures.
    for (lam, c) in multipliers.iter().zip(qp.constraints.iter()) {
        let slack = c.eval(x);
        let prod = (lam * slack).abs();
        let scale = 1.0 + lam.abs().max(slack.abs());
        if prod > tol * scale {
            return Err(KktViolation::ComplementarySlackness(prod));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::LinearConstraint;
    use capgpu_linalg::Matrix;

    fn qp_with_bound() -> QpProblem {
        // min (x-3)², x ≤ 1
        QpProblem::new(
            Matrix::from_diag(&[2.0]),
            vec![-6.0],
            vec![LinearConstraint::upper_bound(1, 0, 1.0)],
        )
        .unwrap()
    }

    #[test]
    fn accepts_true_optimum() {
        // x* = 1 active, λ = −∇f = −(2·1 − 6) = 4.
        let qp = qp_with_bound();
        assert!(check_qp(&qp, &[1.0], &[4.0], 1e-9).is_ok());
    }

    #[test]
    fn rejects_wrong_multiplier() {
        let qp = qp_with_bound();
        assert!(matches!(
            check_qp(&qp, &[1.0], &[1.0], 1e-9),
            Err(KktViolation::Stationarity(_))
        ));
    }

    #[test]
    fn rejects_infeasible_point() {
        let qp = qp_with_bound();
        assert!(matches!(
            check_qp(&qp, &[2.0], &[2.0], 1e-9),
            Err(KktViolation::PrimalFeasibility(_))
        ));
    }

    #[test]
    fn rejects_negative_multiplier() {
        // Stationary pair with a negative multiplier: 2x − 6 + λ = 0 with
        // λ = −0.5 gives x = 3.25 (feasible, stationarity holds) — the dual
        // feasibility check must fire.
        let qp = QpProblem::new(
            Matrix::from_diag(&[2.0]),
            vec![-6.0],
            vec![LinearConstraint::upper_bound(1, 0, 10.0)],
        )
        .unwrap();
        assert!(matches!(
            check_qp(&qp, &[3.25], &[-0.5], 1e-9),
            Err(KktViolation::DualFeasibility(_))
        ));
    }

    #[test]
    fn rejects_slackness_violation() {
        // Interior point with positive multiplier on an inactive constraint.
        let qp = QpProblem::new(
            Matrix::from_diag(&[2.0]),
            vec![0.0],
            vec![LinearConstraint::upper_bound(1, 0, 10.0)],
        )
        .unwrap();
        // x = 0 is stationary for λ=0; try λ=0.5 with slack −10:
        // stationarity breaks first unless gradient offset matches, so build
        // a consistent-but-slack-violating pair: x = −0.5·... easier: check
        // directly that slackness test fires when stationarity passes.
        // ∇f + λ·a = 2x + λ = 0 → x = −λ/2 = −0.25, slack = −10.25.
        let res = check_qp(&qp, &[-0.25], &[0.5], 1e-6);
        assert!(matches!(res, Err(KktViolation::ComplementarySlackness(_))));
    }

    #[test]
    fn display_messages() {
        let v = KktViolation::Stationarity(1e-3);
        assert!(format!("{v}").contains("stationarity"));
    }
}
