//! Primal active-set solver for strictly convex quadratic programs.
//!
//! Solves
//!
//! ```text
//!   minimize    ½·xᵀH x + gᵀx
//!   subject to  aᵢᵀx ≤ bᵢ        (i = 1..m, including box bounds)
//! ```
//!
//! with `H` symmetric positive definite. This is the exact shape of the
//! condensed CapGPU MPC problem: the Hessian `SᵀQS + R` is SPD by
//! construction (R > 0), the frequency bounds of constraint (10a) and the
//! SLO-derived frequency floors of constraints (10b)+(10c) are all linear
//! in the decision vector.
//!
//! The implementation is the textbook primal active-set method
//! (Nocedal & Wright, *Numerical Optimization*, Alg. 16.3): maintain a
//! working set of constraints treated as equalities, solve the
//! equality-constrained subproblem via its KKT system, and add/drop
//! constraints based on blocking steps and multiplier signs.

use capgpu_linalg::{lu::Lu, vector, Matrix};

use crate::{OptimError, Result};

/// Tolerance for treating a step / residual as zero.
const ZERO_TOL: f64 = 1e-10;
/// Feasibility slack: constraints may be violated by at most this much.
const FEAS_TOL: f64 = 1e-8;

/// A linear inequality constraint `aᵀx ≤ b`.
#[derive(Debug, Clone)]
pub struct LinearConstraint {
    /// Constraint normal `a`.
    pub a: Vec<f64>,
    /// Right-hand side `b`.
    pub b: f64,
}

impl LinearConstraint {
    /// Creates a constraint `aᵀx ≤ b`.
    pub fn new(a: Vec<f64>, b: f64) -> Self {
        LinearConstraint { a, b }
    }

    /// Constraint value `aᵀx − b` (≤ 0 when satisfied).
    pub fn eval(&self, x: &[f64]) -> f64 {
        vector::dot(&self.a, x) - self.b
    }

    /// Upper-bound constraint `x[i] ≤ ub` in `n` dimensions.
    pub fn upper_bound(n: usize, i: usize, ub: f64) -> Self {
        let mut a = vec![0.0; n];
        a[i] = 1.0;
        LinearConstraint::new(a, ub)
    }

    /// Lower-bound constraint `x[i] ≥ lb`, encoded as `−x[i] ≤ −lb`.
    pub fn lower_bound(n: usize, i: usize, lb: f64) -> Self {
        let mut a = vec![0.0; n];
        a[i] = -1.0;
        LinearConstraint::new(a, -lb)
    }
}

/// A strictly convex QP instance.
#[derive(Debug, Clone)]
pub struct QpProblem {
    /// Symmetric positive-definite Hessian `H`.
    pub hessian: Matrix,
    /// Linear term `g`.
    pub gradient: Vec<f64>,
    /// Inequality constraints `aᵢᵀx ≤ bᵢ`.
    pub constraints: Vec<LinearConstraint>,
}

impl QpProblem {
    /// Creates a QP; validates dimensions.
    ///
    /// # Errors
    /// [`OptimError::BadProblem`] on any dimension inconsistency.
    pub fn new(
        hessian: Matrix,
        gradient: Vec<f64>,
        constraints: Vec<LinearConstraint>,
    ) -> Result<Self> {
        if !hessian.is_square() {
            return Err(OptimError::BadProblem("Hessian must be square"));
        }
        let n = hessian.rows();
        if gradient.len() != n {
            return Err(OptimError::BadProblem("gradient length != Hessian dim"));
        }
        if constraints.iter().any(|c| c.a.len() != n) {
            return Err(OptimError::BadProblem("constraint normal length != dim"));
        }
        Ok(QpProblem {
            hessian,
            gradient,
            constraints,
        })
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.hessian.rows()
    }

    /// Objective value `½xᵀHx + gᵀx`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        0.5 * vector::dot(x, &self.hessian.matvec(x)) + vector::dot(&self.gradient, x)
    }

    /// Objective gradient `Hx + g`.
    pub fn objective_gradient(&self, x: &[f64]) -> Vec<f64> {
        vector::add(&self.hessian.matvec(x), &self.gradient)
    }

    /// Maximum constraint violation at `x` (0 when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        self.constraints
            .iter()
            .map(|c| c.eval(x).max(0.0))
            .fold(0.0_f64, f64::max)
    }
}

/// Solution of a QP.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// Optimal point.
    pub x: Vec<f64>,
    /// Lagrange multipliers, one per constraint (0 for inactive).
    pub multipliers: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Active-set iterations used.
    pub iterations: usize,
    /// Constraints in the working set at the solution (indices into the
    /// problem's constraint list). Feed to [`ActiveSetQp::solve_warm`] to
    /// warm-start the next solve of a slowly varying problem.
    pub active_set: Vec<usize>,
}

/// The primal active-set QP solver.
#[derive(Debug, Clone)]
pub struct ActiveSetQp {
    /// Maximum active-set changes before giving up.
    pub max_iterations: usize,
}

impl Default for ActiveSetQp {
    fn default() -> Self {
        ActiveSetQp {
            max_iterations: 200,
        }
    }
}

impl ActiveSetQp {
    /// Solves the QP starting from a feasible point `x0`.
    ///
    /// # Errors
    /// * [`OptimError::InfeasibleStart`] if `x0` violates a constraint by
    ///   more than the feasibility tolerance.
    /// * [`OptimError::IterationLimit`] if the working set keeps changing
    ///   beyond `max_iterations` (cycling; does not occur on the
    ///   non-degenerate MPC problems CapGPU builds).
    /// * [`OptimError::Numerical`] if a KKT system is singular.
    pub fn solve(&self, qp: &QpProblem, x0: &[f64]) -> Result<QpSolution> {
        self.check_start(qp, x0)?;
        // Start with the working set = constraints active at x0.
        let working: Vec<usize> = (0..qp.constraints.len())
            .filter(|&i| qp.constraints[i].eval(x0).abs() <= FEAS_TOL)
            .collect();
        self.solve_from(qp, x0, working)
    }

    /// Solves the QP starting from a feasible point `x0` with the initial
    /// working set seeded from `hint` — typically the
    /// [`QpSolution::active_set`] of the previous period's solve of a
    /// slowly varying problem (receding-horizon MPC). Hint entries that
    /// are out of range, duplicated, or not active at `x0` are dropped,
    /// so a stale hint degrades to a cold start rather than an error.
    ///
    /// The returned minimizer is the same point `solve` finds (the
    /// problem is strictly convex); only the active-set path — and hence
    /// the iteration count and last-ulp rounding — may differ.
    ///
    /// # Errors
    /// Same as [`ActiveSetQp::solve`].
    pub fn solve_warm(&self, qp: &QpProblem, x0: &[f64], hint: &[usize]) -> Result<QpSolution> {
        self.check_start(qp, x0)?;
        let m = qp.constraints.len();
        let mut working: Vec<usize> = Vec::with_capacity(hint.len());
        for &i in hint {
            if i < m && qp.constraints[i].eval(x0).abs() <= FEAS_TOL && !working.contains(&i) {
                working.push(i);
            }
        }
        self.solve_from(qp, x0, working)
    }

    /// Validates dimensions and feasibility of the start point.
    fn check_start(&self, qp: &QpProblem, x0: &[f64]) -> Result<()> {
        if x0.len() != qp.dim() {
            return Err(OptimError::BadProblem("x0 length != dim"));
        }
        if qp.max_violation(x0) > FEAS_TOL {
            return Err(OptimError::InfeasibleStart);
        }
        Ok(())
    }

    /// The active-set iteration, starting from feasible `x0` with the
    /// given initial working set (every entry must be active at `x0`).
    fn solve_from(
        &self,
        qp: &QpProblem,
        x0: &[f64],
        mut working: Vec<usize>,
    ) -> Result<QpSolution> {
        let n = qp.dim();
        let m = qp.constraints.len();
        let mut x = x0.to_vec();
        let mut multipliers = vec![0.0; m];
        for iter in 0..self.max_iterations {
            // Solve the equality-constrained subproblem:
            //   min ½pᵀHp + (Hx+g)ᵀp  s.t.  aᵢᵀp = 0 for i ∈ W
            // via the KKT system [H Aᵀ; A 0]·[p; λ] = [−(Hx+g); 0].
            let grad = qp.objective_gradient(&x);
            let k = working.len();
            let dim = n + k;
            let mut kkt = Matrix::zeros(dim, dim);
            for r in 0..n {
                for c in 0..n {
                    kkt[(r, c)] = qp.hessian[(r, c)];
                }
            }
            for (j, &ci) in working.iter().enumerate() {
                for r in 0..n {
                    let a = qp.constraints[ci].a[r];
                    kkt[(r, n + j)] = a;
                    kkt[(n + j, r)] = a;
                }
            }
            let mut rhs = vec![0.0; dim];
            for r in 0..n {
                rhs[r] = -grad[r];
            }
            // A degenerate working set (linearly dependent normals) makes
            // the KKT matrix singular; drop the most recently added
            // constraint and retry on the next iteration.
            let sol = match Lu::new(&kkt).and_then(|lu| lu.solve(&rhs)) {
                Ok(s) => s,
                Err(_) if !working.is_empty() => {
                    working.pop();
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            let p = &sol[..n];
            let lambda = &sol[n..];

            // Relative zero test: iterates can be O(10³) (MHz moves), so an
            // absolute 1e-10 threshold would chase numerical noise forever.
            let step_tol = ZERO_TOL * (1.0 + vector::norm_inf(&x));
            if vector::norm_inf(p) <= step_tol {
                // No step possible: check multipliers for optimality.
                multipliers.iter_mut().for_each(|l| *l = 0.0);
                for (j, &ci) in working.iter().enumerate() {
                    multipliers[ci] = lambda[j];
                }
                let (min_idx, min_lambda) = working
                    .iter()
                    .enumerate()
                    .map(|(j, _)| (j, lambda[j]))
                    .fold((usize::MAX, 0.0_f64), |(bi, bv), (j, v)| {
                        if v < bv {
                            (j, v)
                        } else {
                            (bi, bv)
                        }
                    });
                if min_idx == usize::MAX || min_lambda >= -ZERO_TOL {
                    // All multipliers non-negative: KKT point found.
                    return Ok(QpSolution {
                        objective: qp.objective(&x),
                        x,
                        multipliers,
                        iterations: iter + 1,
                        active_set: working,
                    });
                }
                // Drop the constraint with the most negative multiplier.
                working.remove(min_idx);
                continue;
            }

            // Step length: largest α ∈ (0, 1] keeping all constraints
            // outside the working set feasible.
            let mut alpha = 1.0;
            let mut blocking: Option<usize> = None;
            for i in 0..m {
                if working.contains(&i) {
                    continue;
                }
                let ap = vector::dot(&qp.constraints[i].a, p);
                if ap > ZERO_TOL {
                    let slack = qp.constraints[i].b - vector::dot(&qp.constraints[i].a, &x);
                    let a_max = (slack / ap).max(0.0);
                    if a_max < alpha {
                        alpha = a_max;
                        blocking = Some(i);
                    }
                }
            }
            if std::env::var_os("CAPGPU_QP_TRACE").is_some() {
                eprintln!(
                    "iter {iter}: |p|={:.3e} alpha={alpha:.3e} blocking={blocking:?} W={working:?}",
                    vector::norm_inf(p)
                );
            }
            x = vector::axpy(&x, alpha, p);
            if let Some(bi) = blocking {
                working.push(bi);
            }
        }
        Err(OptimError::IterationLimit {
            iterations: self.max_iterations,
        })
    }

    /// Solves the QP, finding a feasible start automatically for problems
    /// whose constraints are a (possibly partial) box: each constraint
    /// normal must have exactly one nonzero entry. The start is the box
    /// midpoint (or clamped zero when a side is unbounded).
    ///
    /// # Errors
    /// * [`OptimError::BadProblem`] if a constraint couples variables or
    ///   the box is empty.
    /// * Everything [`ActiveSetQp::solve`] can return.
    pub fn solve_box_start(&self, qp: &QpProblem) -> Result<QpSolution> {
        let n = qp.dim();
        let mut lo = vec![f64::NEG_INFINITY; n];
        let mut hi = vec![f64::INFINITY; n];
        for c in &qp.constraints {
            let nz: Vec<usize> = (0..n).filter(|&i| c.a[i] != 0.0).collect();
            if nz.len() != 1 {
                return Err(OptimError::BadProblem(
                    "solve_box_start requires single-variable constraints",
                ));
            }
            let i = nz[0];
            let coef = c.a[i];
            let bound = c.b / coef;
            if coef > 0.0 {
                hi[i] = hi[i].min(bound);
            } else {
                lo[i] = lo[i].max(bound);
            }
        }
        let mut x0 = vec![0.0; n];
        for i in 0..n {
            if lo[i] > hi[i] + FEAS_TOL {
                return Err(OptimError::BadProblem("empty box"));
            }
            x0[i] = match (lo[i].is_finite(), hi[i].is_finite()) {
                (true, true) => 0.5 * (lo[i] + hi[i]),
                (true, false) => lo[i].max(0.0),
                (false, true) => hi[i].min(0.0),
                (false, false) => 0.0,
            };
        }
        self.solve(qp, &x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kkt;

    fn simple_qp() -> QpProblem {
        // min (x-3)² + (y-4)² = ½ xᵀ(2I)x + (-6,-8)ᵀx + const
        QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![-6.0, -8.0], vec![]).unwrap()
    }

    #[test]
    fn unconstrained_minimum() {
        let qp = simple_qp();
        let sol = ActiveSetQp::default().solve(&qp, &[0.0, 0.0]).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
        assert!((sol.x[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn active_upper_bound() {
        // Same objective with x ≤ 1: solution (1, 4), multiplier > 0.
        let mut qp = simple_qp();
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 0, 1.0));
        let sol = ActiveSetQp::default().solve(&qp, &[0.0, 0.0]).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-9);
        assert!((sol.x[1] - 4.0).abs() < 1e-9);
        assert!(sol.multipliers[0] > 0.0);
        assert!(kkt::check_qp(&qp, &sol.x, &sol.multipliers, 1e-7).is_ok());
    }

    #[test]
    fn inactive_constraint_has_zero_multiplier() {
        let mut qp = simple_qp();
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 0, 10.0));
        let sol = ActiveSetQp::default().solve(&qp, &[0.0, 0.0]).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
        assert_eq!(sol.multipliers[0], 0.0);
    }

    #[test]
    fn box_constrained_corner() {
        // Minimum pushed into the corner (1, 2).
        let mut qp = simple_qp();
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 0, 1.0));
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 1, 2.0));
        let sol = ActiveSetQp::default().solve(&qp, &[0.0, 0.0]).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-9);
        assert!((sol.x[1] - 2.0).abs() < 1e-9);
        assert!(kkt::check_qp(&qp, &sol.x, &sol.multipliers, 1e-7).is_ok());
    }

    #[test]
    fn general_halfspace_constraint() {
        // min ½‖x‖² s.t. x+y ≥ 2  → x = y = 1.
        let qp = QpProblem::new(
            Matrix::identity(2),
            vec![0.0, 0.0],
            vec![LinearConstraint::new(vec![-1.0, -1.0], -2.0)],
        )
        .unwrap();
        let sol = ActiveSetQp::default().solve(&qp, &[2.0, 2.0]).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-9);
        assert!((sol.x[1] - 1.0).abs() < 1e-9);
        assert!(kkt::check_qp(&qp, &sol.x, &sol.multipliers, 1e-7).is_ok());
    }

    #[test]
    fn lower_bound_encoding() {
        let c = LinearConstraint::lower_bound(3, 1, 5.0);
        assert!(c.eval(&[0.0, 6.0, 0.0]) < 0.0); // satisfied
        assert!(c.eval(&[0.0, 4.0, 0.0]) > 0.0); // violated
    }

    #[test]
    fn infeasible_start_rejected() {
        let mut qp = simple_qp();
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 0, 1.0));
        let err = ActiveSetQp::default().solve(&qp, &[5.0, 0.0]).unwrap_err();
        assert_eq!(err, OptimError::InfeasibleStart);
    }

    #[test]
    fn dimension_validation() {
        assert!(QpProblem::new(Matrix::zeros(2, 3), vec![0.0], vec![]).is_err());
        assert!(QpProblem::new(Matrix::identity(2), vec![0.0], vec![]).is_err());
        assert!(QpProblem::new(
            Matrix::identity(2),
            vec![0.0, 0.0],
            vec![LinearConstraint::new(vec![1.0], 0.0)]
        )
        .is_err());
    }

    #[test]
    fn box_start_finds_feasible_point() {
        let mut qp = simple_qp();
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 0, 1.0));
        qp.constraints
            .push(LinearConstraint::lower_bound(2, 0, -1.0));
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 1, 2.0));
        let sol = ActiveSetQp::default().solve_box_start(&qp).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-9);
        assert!((sol.x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn box_start_rejects_coupled_constraints() {
        let qp = QpProblem::new(
            Matrix::identity(2),
            vec![0.0, 0.0],
            vec![LinearConstraint::new(vec![1.0, 1.0], 1.0)],
        )
        .unwrap();
        assert!(matches!(
            ActiveSetQp::default().solve_box_start(&qp).unwrap_err(),
            OptimError::BadProblem(_)
        ));
    }

    #[test]
    fn box_start_rejects_empty_box() {
        let qp = QpProblem::new(
            Matrix::identity(1),
            vec![0.0],
            vec![
                LinearConstraint::upper_bound(1, 0, -1.0),
                LinearConstraint::lower_bound(1, 0, 1.0),
            ],
        )
        .unwrap();
        assert!(matches!(
            ActiveSetQp::default().solve_box_start(&qp).unwrap_err(),
            OptimError::BadProblem(_)
        ));
    }

    #[test]
    fn warm_start_matches_cold_solution() {
        // Same box-cornered problem: cold solve, then re-solve warm from
        // the cold active set; both must land on the unique minimizer.
        let mut qp = simple_qp();
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 0, 1.0));
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 1, 2.0));
        let solver = ActiveSetQp::default();
        let cold = solver.solve(&qp, &[0.0, 0.0]).unwrap();
        let warm = solver
            .solve_warm(&qp, &[1.0, 2.0], &cold.active_set)
            .unwrap();
        assert!((warm.x[0] - cold.x[0]).abs() < 1e-9);
        assert!((warm.x[1] - cold.x[1]).abs() < 1e-9);
        // Seeded at the solution's active set from the solution itself,
        // the warm solve should terminate immediately.
        assert_eq!(warm.iterations, 1);
    }

    #[test]
    fn warm_start_ignores_stale_hint() {
        // Hints that are out of range or inactive at x0 must be dropped,
        // not break the solve.
        let mut qp = simple_qp();
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 0, 1.0));
        let solver = ActiveSetQp::default();
        let warm = solver.solve_warm(&qp, &[0.0, 0.0], &[0, 0, 17]).unwrap();
        assert!((warm.x[0] - 1.0).abs() < 1e-9);
        assert!((warm.x[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn active_set_reported_at_solution() {
        let mut qp = simple_qp();
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 0, 1.0));
        qp.constraints
            .push(LinearConstraint::upper_bound(2, 1, 10.0));
        let sol = ActiveSetQp::default().solve(&qp, &[0.0, 0.0]).unwrap();
        assert!(sol.active_set.contains(&0));
        assert!(!sol.active_set.contains(&1));
    }

    #[test]
    fn mpc_shaped_problem() {
        // A miniature condensed-MPC problem: 2 devices × control horizon 2,
        // tracking a power error of −50 W with gains [0.08, 0.18] W/MHz.
        let gains = [0.08, 0.18, 0.08, 0.18];
        let mut h = Matrix::zeros(4, 4);
        for i in 0..4 {
            for j in 0..4 {
                h[(i, j)] = 2.0 * gains[i] * gains[j];
            }
        }
        h.add_diagonal(0.01).unwrap(); // control penalty
        let err = -50.0; // p − P_s
        let g: Vec<f64> = gains.iter().map(|&a| 2.0 * a * err).collect();
        let mut cons = vec![];
        for i in 0..4 {
            cons.push(LinearConstraint::upper_bound(4, i, 300.0));
            cons.push(LinearConstraint::lower_bound(4, i, -300.0));
        }
        let qp = QpProblem::new(h, g, cons).unwrap();
        let sol = ActiveSetQp::default().solve(&qp, &[0.0; 4]).unwrap();
        // All moves must be positive (power deficit → raise frequencies).
        for v in &sol.x {
            assert!(*v > 0.0, "expected positive move, got {v}");
        }
        assert!(kkt::check_qp(&qp, &sol.x, &sol.multipliers, 1e-6).is_ok());
    }
}
