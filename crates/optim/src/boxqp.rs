//! Box-constrained specialization of the active-set QP solver.
//!
//! The condensed CapGPU MPC problem becomes a *pure box* QP after the
//! cumulative-move change of variables (see `capgpu-control::mpc`): every
//! constraint is a per-variable bound `lo_j ≤ x_j ≤ hi_j`, separable across
//! devices and horizon blocks. That structure admits a much cheaper
//! active-set iteration than the generic [`crate::qp::ActiveSetQp`] path:
//!
//! * the working set is just a per-variable state (free / at lower bound /
//!   at upper bound), so "constraint rows" never need to be materialized;
//! * each active-set change touches one variable, so instead of
//!   re-factorizing a dense `(n+k)×(n+k)` KKT system per iteration we
//!   maintain a Cholesky factor of the Hessian restricted to the free set
//!   (`H_FF`) and update it incrementally — an `O(f²)` forward-solve append
//!   when a variable leaves a bound, and an `O(f²)` Givens-rotation row
//!   deletion when one hits a bound;
//! * the bound handling (clamping, ratio tests, multiplier signs) runs as
//!   one vectorized pass over all devices' boxes per iteration.
//!
//! Determinism contract: the solver finishes with a *polish* step that
//! re-factorizes `H_FF` from scratch over the sorted free set and recomputes
//! the free coordinates in one solve. The returned solution is therefore a
//! pure function of `(problem, final active set)` — independent of the
//! iteration path that discovered the active set. Warm starts, cold starts,
//! and cached explicit-MPC lookups that share a final active set produce
//! bit-identical solutions.

use crate::{OptimError, Result};
use capgpu_linalg::{Cholesky, LinalgError, Matrix};

/// Bound state of one variable in the active-set iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarState {
    /// Strictly inside its box (a free optimization variable).
    Free,
    /// Pinned at its lower bound.
    AtLo,
    /// Pinned at its upper bound.
    AtHi,
}

/// A strictly convex QP with box constraints only:
/// minimize `½·xᵀHx + gᵀx` subject to `lo ≤ x ≤ hi` (element-wise).
#[derive(Debug, Clone)]
pub struct BoxQpProblem {
    /// Symmetric positive-definite Hessian `H` (n×n).
    pub hessian: Matrix,
    /// Linear term `g` (length n).
    pub gradient: Vec<f64>,
    /// Lower bounds (length n; `f64::NEG_INFINITY` allowed).
    pub lo: Vec<f64>,
    /// Upper bounds (length n; `f64::INFINITY` allowed).
    pub hi: Vec<f64>,
}

impl BoxQpProblem {
    /// Validates dimensions and bound ordering.
    ///
    /// # Errors
    /// [`OptimError::BadProblem`] on a non-square Hessian, mismatched
    /// lengths, a non-finite Hessian/gradient entry, a NaN bound, or any
    /// `lo_j > hi_j`.
    pub fn new(hessian: Matrix, gradient: Vec<f64>, lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        if !hessian.is_square() {
            return Err(OptimError::BadProblem("Hessian must be square"));
        }
        let n = hessian.rows();
        if n == 0 {
            return Err(OptimError::BadProblem("empty problem"));
        }
        if gradient.len() != n || lo.len() != n || hi.len() != n {
            return Err(OptimError::BadProblem(
                "gradient/bound lengths must match Hessian dimension",
            ));
        }
        if gradient.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::BadProblem("gradient must be finite"));
        }
        for i in 0..n {
            for j in 0..n {
                if !hessian[(i, j)].is_finite() {
                    return Err(OptimError::BadProblem("Hessian must be finite"));
                }
            }
        }
        for j in 0..n {
            if lo[j].is_nan() || hi[j].is_nan() {
                return Err(OptimError::BadProblem("bounds must not be NaN"));
            }
            if lo[j] > hi[j] {
                return Err(OptimError::BadProblem("lower bound exceeds upper bound"));
            }
        }
        Ok(Self {
            hessian,
            gradient,
            lo,
            hi,
        })
    }

    /// Problem dimension.
    pub fn dim(&self) -> usize {
        self.gradient.len()
    }

    /// Objective `½·xᵀHx + gᵀx` at `x`.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let hx = self.hessian.matvec(x);
        0.5 * dot(x, &hx) + dot(&self.gradient, x)
    }

    fn clamp(&self, v: f64, j: usize) -> f64 {
        v.max(self.lo[j]).min(self.hi[j])
    }
}

/// Solution of a box QP.
#[derive(Debug, Clone)]
pub struct BoxQpSolution {
    /// Optimal point (within the box by construction).
    pub x: Vec<f64>,
    /// Final bound state of each variable.
    pub states: Vec<VarState>,
    /// KKT multiplier per variable: `ν_j ≥ 0` for an active lower bound,
    /// `μ_j ≥ 0` for an active upper bound, `0` for free variables.
    pub multipliers: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Active-set iterations performed.
    pub iterations: usize,
}

impl BoxQpSolution {
    /// Number of variables pinned at a bound.
    pub fn active_count(&self) -> usize {
        self.states.iter().filter(|s| **s != VarState::Free).count()
    }
}

/// Gradient tolerance for stationarity / multiplier sign checks,
/// scaled by the problem magnitude.
const OPT_TOL: f64 = 1e-10;
/// Direction components below this (scaled) are treated as zero in the
/// ratio test.
const DIR_TOL: f64 = 1e-12;

/// Incrementally maintained Cholesky factor of `H_FF`, the Hessian
/// restricted to the free variables (kept in insertion order).
///
/// Storage is a dense `n×n` scratch matrix whose top-left `f×f` block is the
/// current lower-triangular factor; appends and deletions never reallocate.
#[derive(Debug, Clone)]
struct FreeFactor {
    /// Free variables in insertion order (parallel to factor rows).
    vars: Vec<usize>,
    /// Factor storage (top-left `vars.len()` square is valid).
    l: Matrix,
}

impl FreeFactor {
    fn new(dim: usize) -> Self {
        Self {
            vars: Vec::with_capacity(dim),
            l: Matrix::zeros(dim.max(1), dim.max(1)),
        }
    }

    fn len(&self) -> usize {
        self.vars.len()
    }

    /// Rebuilds the factor from scratch over the current `vars` list.
    fn rebuild(&mut self, h: &Matrix) -> Result<()> {
        let f = self.vars.len();
        for i in 0..f {
            for j in 0..=i {
                let mut sum = h[(self.vars[i], self.vars[j])];
                for k in 0..j {
                    sum -= self.l[(i, k)] * self.l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(OptimError::Numerical(LinalgError::NotPositiveDefinite));
                    }
                    self.l[(i, i)] = sum.sqrt();
                } else {
                    self.l[(i, j)] = sum / self.l[(j, j)];
                }
            }
        }
        Ok(())
    }

    /// Resets to the free set implied by `states` and factorizes.
    fn reset(&mut self, h: &Matrix, states: &[VarState]) -> Result<()> {
        self.vars.clear();
        self.vars
            .extend((0..states.len()).filter(|&j| states[j] == VarState::Free));
        self.rebuild(h)
    }

    /// Appends variable `v` to the free set: one forward solve plus a
    /// square root (`O(f²)`), falling back to a full rebuild if rounding
    /// leaves a non-positive pivot.
    fn append(&mut self, h: &Matrix, v: usize) -> Result<()> {
        let f = self.vars.len();
        let mut norm2 = 0.0;
        for i in 0..f {
            let mut acc = h[(self.vars[i], v)];
            for k in 0..i {
                acc -= self.l[(i, k)] * self.l[(f, k)];
            }
            let w = acc / self.l[(i, i)];
            self.l[(f, i)] = w;
            norm2 += w * w;
        }
        let d2 = h[(v, v)] - norm2;
        self.vars.push(v);
        if d2 <= 1e-10 * h[(v, v)].abs().max(1.0) || !d2.is_finite() {
            return self.rebuild(h);
        }
        self.l[(f, f)] = d2.sqrt();
        Ok(())
    }

    /// Removes the free variable at position `pos`: deletes its factor row
    /// and restores triangularity with Givens rotations (`O((f−pos)²)`).
    fn remove(&mut self, h: &Matrix, pos: usize) -> Result<()> {
        let f = self.vars.len();
        self.vars.remove(pos);
        // Shift rows below the deleted one up; they keep one entry past the
        // diagonal (a lower-Hessenberg tail).
        for r in (pos + 1)..f {
            for c in 0..=r {
                self.l[(r - 1, c)] = self.l[(r, c)];
            }
        }
        let newf = f - 1;
        // Rotate columns (c, c+1) to zero each superdiagonal entry, keeping
        // the new diagonal positive. Rows above c are already triangular
        // with zeros in both columns, so only rows ≥ c are touched.
        for c in pos..newf {
            let a = self.l[(c, c)];
            let b = self.l[(c, c + 1)];
            let r = a.hypot(b);
            if r <= 0.0 || !r.is_finite() {
                return self.rebuild(h);
            }
            let (cos, sin) = (a / r, b / r);
            for i in c..newf {
                let x = self.l[(i, c)];
                let y = self.l[(i, c + 1)];
                self.l[(i, c)] = cos * x + sin * y;
                self.l[(i, c + 1)] = -sin * x + cos * y;
            }
        }
        // Clear the now-unused trailing column so later appends start clean.
        for i in 0..f {
            self.l[(i, newf)] = 0.0;
        }
        Ok(())
    }

    /// Solves `H_FF·y = b` (b indexed like `vars`) in place.
    // Triangular index loops are the clearest idiom here (as in
    // `capgpu_linalg::cholesky`).
    #[allow(clippy::needless_range_loop)]
    fn solve_in_place(&self, b: &mut [f64]) {
        let f = self.vars.len();
        for i in 0..f {
            let mut acc = b[i];
            for k in 0..i {
                acc -= self.l[(i, k)] * b[k];
            }
            b[i] = acc / self.l[(i, i)];
        }
        for i in (0..f).rev() {
            let mut acc = b[i];
            for k in (i + 1)..f {
                acc -= self.l[(k, i)] * b[k];
            }
            b[i] = acc / self.l[(i, i)];
        }
    }
}

/// Frozen factorization of `H_FF` over a *sorted* free set — the object an
/// explicit-MPC region table caches per active set.
///
/// [`BoxFactor::polish`] reproduces, bit for bit, the final solve the
/// iterative [`BoxQp`] performs for the same active set: both sort the free
/// variables ascending, factorize `H_FF` with the same [`Cholesky`] routine,
/// and evaluate `x_F = H_FF⁻¹·(−g_F − H_FB·x_B)` with identical arithmetic.
#[derive(Debug, Clone)]
pub struct BoxFactor {
    free: Vec<usize>,
    chol: Option<Cholesky>,
}

impl BoxFactor {
    /// Factorizes the Hessian over the free set implied by `states`
    /// (ascending variable order).
    ///
    /// # Errors
    /// [`OptimError::Numerical`] if `H_FF` is not positive definite.
    pub fn from_states(h: &Matrix, states: &[VarState]) -> Result<Self> {
        let free: Vec<usize> = (0..states.len())
            .filter(|&j| states[j] == VarState::Free)
            .collect();
        let chol = if free.is_empty() {
            None
        } else {
            let f = free.len();
            let mut hff = Matrix::zeros(f, f);
            for (ri, &vi) in free.iter().enumerate() {
                for (ci, &vj) in free.iter().enumerate() {
                    hff[(ri, ci)] = h[(vi, vj)];
                }
            }
            Some(Cholesky::new(&hff)?)
        };
        Ok(Self { free, chol })
    }

    /// Number of free variables in this region.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Evaluates the affine control law of this active set: bound variables
    /// sit exactly on their bound, free variables solve the reduced system
    /// `H_FF·x_F = −g_F − H_FB·x_B`.
    ///
    /// The caller is responsible for checking that the result is actually
    /// optimal for `(g, lo, hi)` (primal bounds on `x_F`, dual signs on the
    /// bound variables); see [`kkt_optimal`].
    pub fn polish(
        &self,
        h: &Matrix,
        g: &[f64],
        lo: &[f64],
        hi: &[f64],
        states: &[VarState],
    ) -> Vec<f64> {
        let n = states.len();
        let mut x = vec![0.0; n];
        for j in 0..n {
            x[j] = match states[j] {
                VarState::Free => 0.0,
                VarState::AtLo => lo[j],
                VarState::AtHi => hi[j],
            };
        }
        if let Some(chol) = &self.chol {
            let mut rhs = vec![0.0; self.free.len()];
            for (ri, &vi) in self.free.iter().enumerate() {
                let mut acc = -g[vi];
                for (j, xv) in x.iter().enumerate() {
                    if states[j] != VarState::Free {
                        acc -= h[(vi, j)] * xv;
                    }
                }
                rhs[ri] = acc;
            }
            // Factor dimension matches rhs by construction.
            let xf = chol.solve(&rhs).expect("BoxFactor rhs length");
            for (ri, &vi) in self.free.iter().enumerate() {
                x[vi] = xf[ri];
            }
        }
        x
    }
}

/// Checks the KKT conditions of a candidate active-set solution `x` for a
/// box QP: free variables inside `[lo, hi]` (within `tol`), bound variables
/// with correctly signed multipliers (within `tol`). Used by the explicit
/// region table to validate a cached law before trusting it.
pub fn kkt_optimal(
    h: &Matrix,
    g: &[f64],
    lo: &[f64],
    hi: &[f64],
    states: &[VarState],
    x: &[f64],
    tol: f64,
) -> bool {
    let grad = {
        let mut grad = h.matvec(x);
        for (gi, gv) in grad.iter_mut().zip(g.iter()) {
            *gi += gv;
        }
        grad
    };
    for j in 0..states.len() {
        match states[j] {
            VarState::Free => {
                if x[j] < lo[j] - tol || x[j] > hi[j] + tol || grad[j].abs() > tol {
                    return false;
                }
            }
            VarState::AtLo => {
                if grad[j] < -tol {
                    return false;
                }
            }
            VarState::AtHi => {
                if grad[j] > tol {
                    return false;
                }
            }
        }
    }
    true
}

/// Primal active-set solver for box-constrained strictly convex QPs.
///
/// Equivalent to [`crate::qp::ActiveSetQp`] restricted to bound constraints
/// (same method, Nocedal & Wright §16.5), but with the incremental free-set
/// Cholesky factor replacing the dense KKT factorization and a vectorized
/// bound pass per iteration. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone)]
pub struct BoxQp {
    /// Maximum active-set changes before giving up.
    pub max_iterations: usize,
}

impl Default for BoxQp {
    fn default() -> Self {
        Self {
            max_iterations: 200,
        }
    }
}

impl BoxQp {
    /// Solves from the cold start `x₀ = clamp(0, lo, hi)`.
    ///
    /// # Errors
    /// See [`BoxQp::solve_from`].
    pub fn solve(&self, qp: &BoxQpProblem) -> Result<BoxQpSolution> {
        let x0 = vec![0.0; qp.dim()];
        self.solve_from(qp, &x0, None)
    }

    /// Solves warm-started from a previous solution's bound states: hinted
    /// variables start pinned on their bound, the rest start from `x0`.
    ///
    /// # Errors
    /// See [`BoxQp::solve_from`].
    pub fn solve_warm(
        &self,
        qp: &BoxQpProblem,
        x0: &[f64],
        hint: &[VarState],
    ) -> Result<BoxQpSolution> {
        self.solve_from(qp, x0, Some(hint))
    }

    /// Solves starting from `x0` (clamped into the box) with an optional
    /// working-set hint.
    ///
    /// # Errors
    /// * [`OptimError::BadProblem`] if `x0`/`hint` lengths mismatch.
    /// * [`OptimError::Numerical`] if `H_FF` is not positive definite.
    /// * [`OptimError::IterationLimit`] if the active set fails to settle
    ///   within [`BoxQp::max_iterations`].
    // Index loops mirror the mathematical statement of the iteration; the
    // gradient pass indexes `grad` and the Hessian rows in lockstep.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_from(
        &self,
        qp: &BoxQpProblem,
        x0: &[f64],
        hint: Option<&[VarState]>,
    ) -> Result<BoxQpSolution> {
        let n = qp.dim();
        if x0.len() != n {
            return Err(OptimError::BadProblem("start point length mismatch"));
        }
        if let Some(h) = hint {
            if h.len() != n {
                return Err(OptimError::BadProblem("hint length mismatch"));
            }
        }

        // Start point: clamp into the box; hinted variables snap onto their
        // bound (always feasible), others bind only if the clamp hit.
        let mut x = vec![0.0; n];
        let mut states = vec![VarState::Free; n];
        for j in 0..n {
            let (xj, st) = match hint.map(|h| h[j]) {
                Some(VarState::AtLo) => (qp.lo[j], VarState::AtLo),
                Some(VarState::AtHi) => (qp.hi[j], VarState::AtHi),
                _ => {
                    let v = qp.clamp(x0[j], j);
                    if v <= qp.lo[j] {
                        (qp.lo[j], VarState::AtLo)
                    } else if v >= qp.hi[j] {
                        (qp.hi[j], VarState::AtHi)
                    } else {
                        (v, VarState::Free)
                    }
                }
            };
            x[j] = xj;
            states[j] = st;
        }

        let scale = 1.0 + qp.gradient.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let opt_tol = OPT_TOL * scale;

        let mut factor = FreeFactor::new(n);
        factor.reset(&qp.hessian, &states)?;

        let mut grad = vec![0.0; n];
        let mut step = vec![0.0; n];
        for iteration in 0..self.max_iterations {
            // grad = H·x + g (bound variables contribute exactly their bound).
            for i in 0..n {
                let mut acc = qp.gradient[i];
                for (j, xv) in x.iter().enumerate() {
                    acc += qp.hessian[(i, j)] * xv;
                }
                grad[i] = acc;
            }

            // Newton step on the free set: p_F = −H_FF⁻¹·grad_F.
            let f = factor.len();
            for (ri, &v) in factor.vars.iter().enumerate() {
                step[ri] = -grad[v];
            }
            factor.solve_in_place(&mut step[..f]);
            let p_inf = step[..f].iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let x_scale = 1.0 + x.iter().fold(0.0f64, |m, v| m.max(v.abs()));

            if p_inf <= OPT_TOL * x_scale {
                // Stationary on the free set; check bound multipliers.
                // AtLo: ν = grad_j ≥ 0. AtHi: μ = −grad_j ≥ 0.
                let mut worst = -opt_tol;
                let mut worst_j = None;
                for j in 0..n {
                    let lam = match states[j] {
                        VarState::Free => continue,
                        VarState::AtLo => grad[j],
                        VarState::AtHi => -grad[j],
                    };
                    if lam < worst && qp.lo[j] < qp.hi[j] {
                        worst = lam;
                        worst_j = Some(j);
                    }
                }
                match worst_j {
                    None => return Ok(self.finish(qp, &states, iteration)),
                    Some(j) => {
                        states[j] = VarState::Free;
                        factor.append(&qp.hessian, j)?;
                    }
                }
                continue;
            }

            // Ratio test over the free variables (one vectorized pass over
            // every device's box).
            let mut alpha = 1.0f64;
            let mut blocking: Option<(usize, usize, VarState)> = None;
            for (ri, &v) in factor.vars.iter().enumerate() {
                let p = step[ri];
                if p > DIR_TOL * x_scale {
                    let room = qp.hi[v] - x[v];
                    let a = room / p;
                    if a < alpha {
                        alpha = a.max(0.0);
                        blocking = Some((ri, v, VarState::AtHi));
                    }
                } else if p < -DIR_TOL * x_scale {
                    let room = qp.lo[v] - x[v];
                    let a = room / p;
                    if a < alpha {
                        alpha = a.max(0.0);
                        blocking = Some((ri, v, VarState::AtLo));
                    }
                }
            }

            for (ri, &v) in factor.vars.iter().enumerate() {
                x[v] = qp.clamp(x[v] + alpha * step[ri], v);
            }
            if let Some((ri, v, side)) = blocking {
                x[v] = match side {
                    VarState::AtHi => qp.hi[v],
                    _ => qp.lo[v],
                };
                states[v] = side;
                factor.remove(&qp.hessian, ri)?;
            }
        }
        Err(OptimError::IterationLimit {
            iterations: self.max_iterations,
        })
    }

    /// Deterministic final polish: re-solve the free coordinates from a
    /// fresh sorted-free-set factorization so the output depends only on
    /// the final active set.
    fn finish(&self, qp: &BoxQpProblem, states: &[VarState], iterations: usize) -> BoxQpSolution {
        let bf = BoxFactor::from_states(&qp.hessian, states)
            .expect("free-set Hessian stayed SPD through the iteration");
        let x = bf.polish(&qp.hessian, &qp.gradient, &qp.lo, &qp.hi, states);
        let grad = {
            let mut g = qp.hessian.matvec(&x);
            for (gi, gv) in g.iter_mut().zip(qp.gradient.iter()) {
                *gi += gv;
            }
            g
        };
        let multipliers = states
            .iter()
            .zip(grad.iter())
            .map(|(s, g)| match s {
                VarState::Free => 0.0,
                VarState::AtLo => *g,
                VarState::AtHi => -*g,
            })
            .collect();
        let objective = qp.objective(&x);
        BoxQpSolution {
            x,
            states: states.to_vec(),
            multipliers,
            objective,
            iterations,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 1.0], &[0.5, 1.0, 2.0]])
    }

    #[test]
    fn interior_minimum_matches_unconstrained() {
        let h = spd3();
        let g = vec![-1.0, 0.5, -0.25];
        let qp = BoxQpProblem::new(h.clone(), g.clone(), vec![-10.0; 3], vec![10.0; 3]).unwrap();
        let sol = BoxQp::default().solve(&qp).unwrap();
        // Unconstrained optimum: H·x = −g.
        let expect = capgpu_linalg::cholesky::solve_spd(&h, &[1.0, -0.5, 0.25]).unwrap();
        for (a, b) in sol.x.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        assert_eq!(sol.active_count(), 0);
        assert!(sol.multipliers.iter().all(|m| *m == 0.0));
    }

    #[test]
    fn binds_at_bounds_with_positive_multipliers() {
        // Strong pull toward +∞ on x0, box caps it.
        let h = Matrix::from_diag(&[1.0, 1.0]);
        let qp = BoxQpProblem::new(h, vec![-10.0, -0.2], vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let sol = BoxQp::default().solve(&qp).unwrap();
        assert_eq!(sol.states[0], VarState::AtHi);
        assert!((sol.x[0] - 1.0).abs() < 1e-12);
        assert!((sol.x[1] - 0.2).abs() < 1e-12);
        assert!(sol.multipliers[0] > 0.0);
    }

    #[test]
    fn warm_start_is_bit_identical_to_cold() {
        let h = spd3();
        let g = vec![-5.0, 2.0, -1.0];
        let qp = BoxQpProblem::new(h, g, vec![-0.5, -0.5, -0.5], vec![0.5, 0.5, 0.5]).unwrap();
        let solver = BoxQp::default();
        let cold = solver.solve(&qp).unwrap();
        let warm = solver.solve_warm(&qp, &cold.x, &cold.states).unwrap();
        assert_eq!(cold.x, warm.x, "polish must make warm == cold bitwise");
        assert_eq!(cold.states, warm.states);
        // A deliberately wrong hint must still converge to the same point.
        let bad_hint = vec![VarState::AtHi; 3];
        let warm2 = solver.solve_warm(&qp, &[0.0; 3], &bad_hint).unwrap();
        assert_eq!(cold.x, warm2.x);
    }

    #[test]
    fn box_factor_reproduces_iterative_solution() {
        let h = spd3();
        let g = vec![-5.0, 2.0, -1.0];
        let lo = vec![-0.5; 3];
        let hi = vec![0.5; 3];
        let qp = BoxQpProblem::new(h.clone(), g.clone(), lo.clone(), hi.clone()).unwrap();
        let sol = BoxQp::default().solve(&qp).unwrap();
        let bf = BoxFactor::from_states(&h, &sol.states).unwrap();
        let x = bf.polish(&h, &g, &lo, &hi, &sol.states);
        assert_eq!(x, sol.x, "cached law must be bitwise equal to the solve");
        assert!(kkt_optimal(&h, &g, &lo, &hi, &sol.states, &x, 1e-8));
    }

    #[test]
    fn kkt_check_rejects_wrong_region() {
        let h = Matrix::from_diag(&[1.0, 1.0]);
        let g = vec![-10.0, -0.2];
        let lo = vec![0.0, 0.0];
        let hi = vec![1.0, 1.0];
        // Claim "everything free" — but the optimum has x0 at its cap.
        let states = vec![VarState::Free, VarState::Free];
        let bf = BoxFactor::from_states(&h, &states).unwrap();
        let x = bf.polish(&h, &g, &lo, &hi, &states);
        assert!(!kkt_optimal(&h, &g, &lo, &hi, &states, &x, 1e-8));
    }

    #[test]
    fn fully_clamped_box() {
        // lo == hi pins every variable; solver must cope with an empty
        // free set.
        let h = spd3();
        let qp = BoxQpProblem::new(h, vec![1.0; 3], vec![0.25; 3], vec![0.25; 3]).unwrap();
        let sol = BoxQp::default().solve(&qp).unwrap();
        assert_eq!(sol.x, vec![0.25; 3]);
        assert_eq!(sol.active_count(), 3);
    }

    #[test]
    fn rejects_inverted_bounds() {
        let err = BoxQpProblem::new(
            Matrix::identity(2),
            vec![0.0; 2],
            vec![1.0; 2],
            vec![0.0; 2],
        )
        .unwrap_err();
        assert!(matches!(err, OptimError::BadProblem(_)));
    }

    #[test]
    fn larger_random_style_problem_agrees_with_projected_gradient() {
        // Deterministic pseudo-random SPD problem (no RNG dependency here).
        let n = 8;
        let mut b = Matrix::zeros(n, n);
        let mut s = 1234567u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = next();
            }
        }
        let mut h = b.transpose().matmul(&b);
        h.add_diagonal(0.5).unwrap();
        let g: Vec<f64> = (0..n).map(|_| 2.0 * next()).collect();
        let lo = vec![-0.3; 8];
        let hi = vec![0.4; 8];
        let qp = BoxQpProblem::new(h.clone(), g.clone(), lo.clone(), hi.clone()).unwrap();
        let sol = BoxQp::default().solve(&qp).unwrap();
        assert!(kkt_optimal(&h, &g, &lo, &hi, &sol.states, &sol.x, 1e-7));
        let bounds = crate::projgrad::Box::new(lo.clone(), hi.clone()).unwrap();
        let pg =
            crate::projgrad::solve_box_qp(&h, &g, &bounds, &vec![0.0; n], 1e-12, 200_000).unwrap();
        for (a, b) in sol.x.iter().zip(pg.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }
}
