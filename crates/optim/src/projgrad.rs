//! Projected gradient descent for box-constrained convex QPs.
//!
//! An intentionally simple solver used two ways:
//!
//! 1. as an **independent cross-check** of the active-set method in tests
//!    (two very different algorithms agreeing on the optimum is strong
//!    evidence both are right), and
//! 2. as a **fallback** inside the MPC if the active set ever cycles on a
//!    degenerate problem — projected gradient cannot cycle, it only
//!    converges slowly.
//!
//! Uses a fixed step `1/L` with `L` an upper bound on the Hessian spectral
//! norm obtained by power iteration, which guarantees monotone convergence
//! for convex problems.

use capgpu_linalg::{vector, Matrix};

use crate::{OptimError, Result};

/// Box bounds `lo ≤ x ≤ hi` (entries may be ±∞).
#[derive(Debug, Clone)]
pub struct Box {
    /// Lower bounds.
    pub lo: Vec<f64>,
    /// Upper bounds.
    pub hi: Vec<f64>,
}

impl Box {
    /// Creates a box; validates `lo[i] <= hi[i]`.
    ///
    /// # Errors
    /// [`OptimError::BadProblem`] when the box is empty or lengths differ.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        if lo.len() != hi.len() {
            return Err(OptimError::BadProblem("box bound lengths differ"));
        }
        if lo.iter().zip(hi.iter()).any(|(l, h)| l > h) {
            return Err(OptimError::BadProblem("box lower bound exceeds upper"));
        }
        Ok(Box { lo, hi })
    }

    /// Projects a point onto the box.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        vector::clamp_box(x, &self.lo, &self.hi)
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }
}

/// Estimates the spectral norm of a symmetric matrix by power iteration.
///
/// Returns an upper-bound-ish estimate inflated by 5% so the step size
/// `1/L` remains safe even if the iteration has not fully converged.
pub fn spectral_norm_estimate(h: &Matrix, iterations: usize) -> f64 {
    let n = h.rows();
    if n == 0 {
        return 0.0;
    }
    // Deterministic start vector with all components nonzero.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.01).collect();
    let norm = vector::norm2(&v);
    v = vector::scale(&v, 1.0 / norm);
    let mut lambda = 0.0;
    for _ in 0..iterations {
        let w = h.matvec(&v);
        let wn = vector::norm2(&w);
        if wn == 0.0 {
            return h.frobenius_norm().max(1e-12) * 1.05;
        }
        lambda = wn;
        v = vector::scale(&w, 1.0 / wn);
    }
    lambda * 1.05
}

/// Solves `min ½xᵀHx + gᵀx` over a box by projected gradient descent.
///
/// # Errors
/// * [`OptimError::BadProblem`] on dimension mismatch.
/// * [`OptimError::IterationLimit`] if the tolerance is not reached.
pub fn solve_box_qp(
    h: &Matrix,
    g: &[f64],
    bounds: &Box,
    x0: &[f64],
    tol: f64,
    max_iterations: usize,
) -> Result<Vec<f64>> {
    let n = h.rows();
    if !h.is_square() || g.len() != n || bounds.dim() != n || x0.len() != n {
        return Err(OptimError::BadProblem("box QP dimension mismatch"));
    }
    let l = spectral_norm_estimate(h, 50).max(1e-12);
    let step = 1.0 / l;
    let mut x = bounds.project(x0);
    for _ in 0..max_iterations {
        let grad = vector::add(&h.matvec(&x), g);
        let x_new = bounds.project(&vector::axpy(&x, -step, &grad));
        let delta = vector::norm_inf(&vector::sub(&x_new, &x));
        x = x_new;
        if delta <= tol {
            return Ok(x);
        }
    }
    Err(OptimError::IterationLimit {
        iterations: max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_quadratic() {
        // min (x-3)² + (y+1)²
        let h = Matrix::from_diag(&[2.0, 2.0]);
        let g = vec![-6.0, 2.0];
        let bounds = Box::new(vec![-100.0, -100.0], vec![100.0, 100.0]).unwrap();
        let x = solve_box_qp(&h, &g, &bounds, &[0.0, 0.0], 1e-10, 10_000).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-6);
        assert!((x[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn clipped_at_bound() {
        let h = Matrix::from_diag(&[2.0]);
        let g = vec![-6.0]; // optimum at 3
        let bounds = Box::new(vec![0.0], vec![1.0]).unwrap();
        let x = solve_box_qp(&h, &g, &bounds, &[0.5], 1e-10, 10_000).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn coupled_hessian() {
        // H = [[2,1],[1,2]], g = [-3,-3] → unconstrained optimum (1,1).
        let h = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let g = vec![-3.0, -3.0];
        let bounds = Box::new(vec![-10.0, -10.0], vec![10.0, 10.0]).unwrap();
        let x = solve_box_qp(&h, &g, &bounds, &[0.0, 0.0], 1e-11, 50_000).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let h = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let est = spectral_norm_estimate(&h, 100);
        assert!((5.0..=5.5).contains(&est), "estimate {est}");
    }

    #[test]
    fn empty_box_rejected() {
        assert!(Box::new(vec![1.0], vec![0.0]).is_err());
        assert!(Box::new(vec![0.0, 0.0], vec![1.0]).is_err());
    }

    #[test]
    fn projection() {
        let b = Box::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert_eq!(b.project(&[-1.0, 2.0]), vec![0.0, 1.0]);
        assert_eq!(b.project(&[0.5, 0.5]), vec![0.5, 0.5]);
    }

    #[test]
    fn infinite_bounds_ok() {
        let h = Matrix::from_diag(&[2.0]);
        let bounds = Box::new(vec![f64::NEG_INFINITY], vec![f64::INFINITY]).unwrap();
        let x = solve_box_qp(&h, &[-4.0], &bounds, &[0.0], 1e-10, 10_000).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let h = Matrix::identity(2);
        let bounds = Box::new(vec![0.0], vec![1.0]).unwrap();
        assert!(solve_box_qp(&h, &[0.0, 0.0], &bounds, &[0.0, 0.0], 1e-8, 10).is_err());
    }
}
