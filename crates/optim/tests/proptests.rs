//! Property tests: the active-set solver must agree with projected gradient
//! on random box-constrained QPs and always satisfy the KKT conditions.

use capgpu_linalg::Matrix;
use capgpu_optim::boxqp::{self, BoxFactor, BoxQp, BoxQpProblem, VarState};
use capgpu_optim::kkt;
use capgpu_optim::projgrad::{self, Box as PgBox};
use capgpu_optim::qp::{ActiveSetQp, LinearConstraint, QpProblem};
use proptest::prelude::*;

/// Random SPD Hessian `BᵀB + I` of size n.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut g = b.gram();
        g.add_diagonal(1.0).unwrap();
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn active_set_matches_projected_gradient(
        h in spd(3),
        g in prop::collection::vec(-5.0..5.0f64, 3),
        lo_raw in prop::collection::vec(-3.0..0.0f64, 3),
        width in prop::collection::vec(0.5..4.0f64, 3),
    ) {
        let lo = lo_raw.clone();
        let hi: Vec<f64> = lo.iter().zip(width.iter()).map(|(l, w)| l + w).collect();

        // Active-set formulation with explicit bound constraints.
        let mut cons = vec![];
        for i in 0..3 {
            cons.push(LinearConstraint::upper_bound(3, i, hi[i]));
            cons.push(LinearConstraint::lower_bound(3, i, lo[i]));
        }
        let qp = QpProblem::new(h.clone(), g.clone(), cons).unwrap();
        let x0: Vec<f64> = lo.iter().zip(hi.iter()).map(|(l, u)| 0.5 * (l + u)).collect();
        let sol = ActiveSetQp::default().solve(&qp, &x0).unwrap();

        // Projected gradient on the same box.
        let bounds = PgBox::new(lo, hi).unwrap();
        let x_pg = projgrad::solve_box_qp(&h, &g, &bounds, &x0, 1e-11, 200_000).unwrap();

        for (a, b) in sol.x.iter().zip(x_pg.iter()) {
            prop_assert!((a - b).abs() < 1e-5, "active-set {a} vs projgrad {b}");
        }
        prop_assert!(kkt::check_qp(&qp, &sol.x, &sol.multipliers, 1e-6).is_ok());
    }

    #[test]
    fn solution_never_beats_optimum(
        h in spd(2),
        g in prop::collection::vec(-3.0..3.0f64, 2),
        probe in prop::collection::vec(0.0..1.0f64, 2),
    ) {
        // Any feasible point must have objective >= the solver's optimum.
        let mut cons = vec![];
        for i in 0..2 {
            cons.push(LinearConstraint::upper_bound(2, i, 1.0));
            cons.push(LinearConstraint::lower_bound(2, i, 0.0));
        }
        let qp = QpProblem::new(h, g, cons).unwrap();
        let sol = ActiveSetQp::default().solve(&qp, &[0.5, 0.5]).unwrap();
        let f_probe = qp.objective(&probe);
        prop_assert!(sol.objective <= f_probe + 1e-8,
            "solver {} worse than probe {} at {probe:?}", sol.objective, f_probe);
    }

    #[test]
    fn box_qp_matches_generic_active_set(
        h in spd(4),
        g in prop::collection::vec(-5.0..5.0f64, 4),
        lo_raw in prop::collection::vec(-3.0..0.0f64, 4),
        width in prop::collection::vec(0.5..4.0f64, 4),
    ) {
        // The box specialization must land on the same minimizer as the
        // generic active-set solver fed the same box as explicit linear
        // constraints, and its KKT point must certify.
        let lo = lo_raw.clone();
        let hi: Vec<f64> = lo.iter().zip(width.iter()).map(|(l, w)| l + w).collect();

        let bqp = BoxQpProblem::new(h.clone(), g.clone(), lo.clone(), hi.clone()).unwrap();
        let sol = BoxQp::default().solve(&bqp).unwrap();

        let mut cons = vec![];
        for i in 0..4 {
            cons.push(LinearConstraint::upper_bound(4, i, hi[i]));
            cons.push(LinearConstraint::lower_bound(4, i, lo[i]));
        }
        let qp = QpProblem::new(h.clone(), g.clone(), cons).unwrap();
        let x0: Vec<f64> = lo.iter().zip(hi.iter()).map(|(l, u)| 0.5 * (l + u)).collect();
        let generic = ActiveSetQp::default().solve(&qp, &x0).unwrap();

        for (a, b) in sol.x.iter().zip(generic.x.iter()) {
            prop_assert!((a - b).abs() < 1e-6, "box {a} vs generic {b}");
        }
        prop_assert!((sol.objective - generic.objective).abs() < 1e-7);
        prop_assert!(boxqp::kkt_optimal(&h, &g, &bqp.lo, &bqp.hi, &sol.states, &sol.x, 1e-7));
    }

    #[test]
    fn box_qp_warm_start_is_bit_identical_to_cold(
        h in spd(4),
        g in prop::collection::vec(-5.0..5.0f64, 4),
        lo_raw in prop::collection::vec(-3.0..0.0f64, 4),
        width in prop::collection::vec(0.5..4.0f64, 4),
        hint_raw in prop::collection::vec(0u8..3, 4),
    ) {
        // Determinism contract of the fast MPC path: the final polish
        // re-solves from the converged active set alone, so any hint —
        // including an adversarially wrong one — must yield the exact
        // bits of the cold solve, and the cached affine law (BoxFactor
        // polish) must reproduce them too.
        let lo = lo_raw.clone();
        let hi: Vec<f64> = lo.iter().zip(width.iter()).map(|(l, w)| l + w).collect();
        let bqp = BoxQpProblem::new(h.clone(), g.clone(), lo, hi).unwrap();

        let cold = BoxQp::default().solve(&bqp).unwrap();

        let hint: Vec<VarState> = hint_raw
            .iter()
            .map(|&v| match v {
                0 => VarState::Free,
                1 => VarState::AtLo,
                _ => VarState::AtHi,
            })
            .collect();
        let x0: Vec<f64> = bqp
            .lo
            .iter()
            .zip(bqp.hi.iter())
            .map(|(l, u)| 0.5 * (l + u))
            .collect();
        let warm = BoxQp::default().solve_warm(&bqp, &x0, &hint).unwrap();

        prop_assert_eq!(&cold.x, &warm.x);
        prop_assert_eq!(&cold.states, &warm.states);

        // Explicit-MPC region lookup: polishing from the converged
        // active set reproduces the iterative solution bit for bit.
        let factor = BoxFactor::from_states(&bqp.hessian, &cold.states).unwrap();
        let cached = factor.polish(&bqp.hessian, &bqp.gradient, &bqp.lo, &bqp.hi, &cold.states);
        prop_assert_eq!(&cold.x, &cached);
    }

    #[test]
    fn objective_gradient_consistency(
        h in spd(3),
        g in prop::collection::vec(-2.0..2.0f64, 3),
        x in prop::collection::vec(-2.0..2.0f64, 3),
    ) {
        // ∇f via the QP helper matches finite differences of the objective.
        let qp = QpProblem::new(h, g, vec![]).unwrap();
        let grad = qp.objective_gradient(&x);
        let fd = capgpu_optim::sqp::finite_difference(&x, |p| qp.objective(p));
        for (a, b) in grad.iter().zip(fd.iter()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
