//! Minimal flat-JSON-object parser for journal records.
//!
//! The journal writer (`capgpu_telemetry::journal`) only ever emits
//! one-level objects whose values are numbers, booleans, strings, or
//! `null` — so that is exactly what this parser accepts. Nested arrays
//! or objects are rejected as corruption rather than silently skipped:
//! a journal line that needs them is from a future schema the reader
//! must not guess at.
//!
//! Numbers round-trip exactly: the writer uses Rust's
//! shortest-roundtrip float formatting and `str::parse::<f64>` is
//! correctly rounded, so `parse(format(x)) == x` bit-for-bit. That is
//! what lets crash-recovery replay rebuild the *identical* power model
//! the dead daemon was running.

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// JSON `null` (the journal renders non-finite floats as null).
    Null,
    /// Boolean.
    Bool(bool),
    /// Any JSON number, held as `f64` (exact for the journal's u64
    /// counters up to 2^53, far beyond any period index).
    Num(f64),
    /// String (unescaped).
    Str(String),
}

impl JsonValue {
    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v)
                if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007_199_254_740_992e15 =>
            {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if textual.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object into `(key, value)` pairs in document
/// order. Duplicate keys are kept (callers use first-wins lookups).
pub fn parse_object(src: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                Some(c) => return Err(format!("expected `,` or `}}`, found `{}`", c as char)),
                None => return Err("unterminated object".into()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(format!(
                "expected `{}`, found `{}`",
                want as char, b as char
            )),
            None => Err(format!("expected `{}`, found end of input", want as char)),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b'{' | b'[') => Err("nested containers are not valid journal values".into()),
            Some(_) => self.parse_number(),
            None => Err("expected a value, found end of input".into()),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal (expected `{lit}`)"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad utf-8")?;
        let v: f64 = text
            .parse()
            .map_err(|_| format!("unparseable number `{text}`"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number `{text}`"));
        }
        Ok(JsonValue::Num(v))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad utf-8 in \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        self.pos += 4;
                        // The journal only escapes control characters,
                        // which are never surrogates.
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    Some(c) => return Err(format!("bad escape `\\{}`", c as char)),
                    None => return Err("unterminated escape".into()),
                },
                Some(b) if b < 0x20 => return Err("raw control character in string".into()),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return Err("truncated utf-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "bad utf-8 sequence")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_journal_shaped_objects() {
        let fields = parse_object(
            r#"{"v":1,"period":3,"t_s":12.5,"kind":"tier_change","from":0,"to":1,"reason":"stale_meter","ok":true,"bad":null}"#,
        )
        .unwrap();
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        assert_eq!(get("v").unwrap().as_u64(), Some(1));
        assert_eq!(get("t_s").unwrap().as_f64(), Some(12.5));
        assert_eq!(get("reason").unwrap().as_str(), Some("stale_meter"));
        assert_eq!(get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(get("bad"), Some(&JsonValue::Null));
        assert_eq!(parse_object("{}").unwrap().len(), 0);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[
            441.348_230_213_280_5_f64,
            0.995_229_017_143_9,
            -1.5e-300,
            9.007_199_254_740_992e15,
        ] {
            let line = format!("{{\"x\":{x}}}");
            let fields = parse_object(&line).unwrap();
            assert_eq!(fields[0].1.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn rejects_torn_and_nested_input() {
        assert!(parse_object(r#"{"v":1,"per"#).is_err());
        assert!(parse_object(r#"{"v":1}extra"#).is_err());
        assert!(parse_object(r#"{"v":[1]}"#).is_err());
        assert!(parse_object(r#"{"v":{"x":1}}"#).is_err());
        assert!(parse_object("").is_err());
    }

    #[test]
    fn escapes_unwind() {
        let fields = parse_object(r#"{"msg":"a\"b\\c\nd"}"#).unwrap();
        assert_eq!(fields[0].1.as_str(), Some("a\"b\\c\nd"));
    }
}
