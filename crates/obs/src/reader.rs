//! Journal reading: parse JSONL records, verify sealed segments,
//! tolerate a torn tail in the active segment, and refuse schema
//! versions this reader does not understand.

use std::path::Path;

use capgpu_telemetry::journal::SCHEMA_VERSION;

use crate::crc::crc32;
use crate::json::{parse_object, JsonValue};
use crate::rotate::list_segments;
use crate::{ObsError, Result};

/// One parsed journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Journal schema version (`"v"`).
    pub schema_version: u64,
    /// Control period index.
    pub period: u64,
    /// Record clock (sim seconds in deterministic runs).
    pub t_s: f64,
    /// Event kind (`"period"`, `"tier_change"`, …).
    pub kind: String,
    /// Every other field, in document order.
    pub fields: Vec<(String, JsonValue)>,
}

impl Record {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as `u64`.
    pub fn u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(JsonValue::as_u64)
    }

    /// Field as `f64`.
    pub fn f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(JsonValue::as_f64)
    }

    /// Field as string.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }

    /// Field as bool.
    pub fn bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(JsonValue::as_bool)
    }
}

/// What the reader learned about one segment file.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentInfo {
    /// Segment index from the file name.
    pub index: u64,
    /// Records parsed out of it (excluding the seal footer).
    pub records: usize,
    /// Whether a seal footer was present and verified.
    pub sealed: bool,
    /// Whether this segment ended in a torn (incomplete) record.
    pub torn: bool,
}

/// A fully scanned journal directory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JournalScan {
    /// All records across all segments, in (segment, line) order.
    pub records: Vec<Record>,
    /// Per-segment metadata, in index order.
    pub segments: Vec<SegmentInfo>,
    /// The torn final record of the active segment, when one was
    /// dropped (raw text, for diagnostics).
    pub torn_tail: Option<String>,
}

/// Parses one record line.
///
/// # Errors
/// [`ObsError::Corrupt`] on malformed JSON or missing required fields,
/// [`ObsError::SchemaVersion`] on a version this reader does not speak.
pub fn parse_record(line: &str, source: &str, lineno: usize) -> Result<Record> {
    let corrupt = |message: String| ObsError::Corrupt {
        source: source.to_string(),
        line: lineno,
        message,
    };
    let fields = parse_object(line).map_err(corrupt)?;
    let lookup = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let schema_version = lookup("v")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| corrupt("missing schema version field `v`".to_string()))?;
    if schema_version != u64::from(SCHEMA_VERSION) {
        return Err(ObsError::SchemaVersion {
            found: schema_version,
            supported: u64::from(SCHEMA_VERSION),
        });
    }
    let kind = lookup("kind")
        .and_then(|v| v.as_str().map(str::to_string))
        .ok_or_else(|| corrupt("missing `kind`".to_string()))?;
    // The seal footer is the one record shape without period/t_s.
    let (period, t_s) = if kind == "segment_seal" {
        (0, 0.0)
    } else {
        (
            lookup("period")
                .and_then(|v| v.as_u64())
                .ok_or_else(|| corrupt("missing `period`".to_string()))?,
            lookup("t_s")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| corrupt("missing `t_s`".to_string()))?,
        )
    };
    let fields = fields
        .into_iter()
        .filter(|(k, _)| !matches!(k.as_str(), "v" | "period" | "t_s" | "kind"))
        .collect();
    Ok(Record {
        schema_version,
        period,
        t_s,
        kind,
        fields,
    })
}

/// Outcome of parsing one segment's text.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentScan {
    /// Parsed records (seal footer excluded).
    pub records: Vec<Record>,
    /// The verified seal footer, if present: `(records, crc32)`.
    pub seal: Option<(u64, u32)>,
    /// Torn final record, if one was dropped.
    pub torn_tail: Option<String>,
}

/// Parses one segment's text. `tolerate_torn_tail` is set for the
/// active (unsealed, possibly crashed) segment: a final record that is
/// incomplete — no trailing newline, or a clean JSON parse failure on
/// the *last* line only — is dropped and reported instead of failing
/// the scan. Mid-file corruption is always an error.
///
/// # Errors
/// [`ObsError::Corrupt`] / [`ObsError::SchemaVersion`] as for
/// [`parse_record`].
pub fn parse_segment(text: &str, source: &str, tolerate_torn_tail: bool) -> Result<SegmentScan> {
    let mut records = Vec::new();
    let mut seal = None;
    let mut torn_tail = None;
    // `lines()` would hide a missing trailing newline; split manually.
    let mut rest = text;
    let mut lineno = 0usize;
    while !rest.is_empty() {
        lineno += 1;
        let (line, complete, next) = match rest.find('\n') {
            Some(i) => (&rest[..i], true, &rest[i + 1..]),
            None => (rest, false, ""),
        };
        let is_last = next.is_empty();
        if seal.is_some() {
            return Err(ObsError::Corrupt {
                source: source.to_string(),
                line: lineno,
                message: "records after the seal footer".to_string(),
            });
        }
        if !complete && is_last && tolerate_torn_tail {
            torn_tail = Some(line.to_string());
            break;
        }
        match parse_record(line, source, lineno) {
            Ok(r) if r.kind == "segment_seal" => {
                let n = r.u64("records").ok_or_else(|| ObsError::Corrupt {
                    source: source.to_string(),
                    line: lineno,
                    message: "seal footer missing `records`".to_string(),
                })?;
                let crc = r.u64("crc32").ok_or_else(|| ObsError::Corrupt {
                    source: source.to_string(),
                    line: lineno,
                    message: "seal footer missing `crc32`".to_string(),
                })? as u32;
                seal = Some((n, crc));
            }
            Ok(r) => records.push(r),
            // A torn final *complete-looking* line (the crash landed
            // mid-flush and the tail bytes happen to include a newline
            // is not distinguishable; only tolerate parse failures on
            // the very last line of an unsealed segment).
            Err(e @ ObsError::Corrupt { .. }) if is_last && tolerate_torn_tail => {
                let _ = e;
                torn_tail = Some(line.to_string());
            }
            Err(e) => return Err(e),
        }
        rest = next;
    }
    Ok(SegmentScan {
        records,
        seal,
        torn_tail,
    })
}

/// Scans a journal directory: every segment in index order, seals
/// verified (record count + CRC-32 over the record bytes), the final
/// segment's torn tail tolerated.
///
/// # Errors
/// [`ObsError::Io`] on filesystem failure, [`ObsError::SealMismatch`]
/// when a sealed segment does not match its footer,
/// [`ObsError::Corrupt`] / [`ObsError::SchemaVersion`] on bad records.
pub fn read_dir(dir: &Path) -> Result<JournalScan> {
    let mut scan = JournalScan::default();
    let segments = list_segments(dir)?;
    let last = segments.len().saturating_sub(1);
    for (pos, (index, path)) in segments.iter().enumerate() {
        let text = std::fs::read_to_string(path)?;
        let source = path.display().to_string();
        // Only the final segment may legitimately be unsealed/torn; an
        // earlier unsealed segment means a lost seal, which the CRC
        // check below reports as a mismatch (no seal to verify), so we
        // surface it as ordinary records with `sealed: false`.
        let seg = parse_segment(&text, &source, pos == last)?;
        let mut sealed = false;
        if let Some((n, crc)) = seg.seal {
            if n != seg.records.len() as u64 {
                return Err(ObsError::SealMismatch {
                    segment: *index,
                    message: format!("footer says {n} records, found {}", seg.records.len()),
                });
            }
            // CRC covers every byte before the footer, which is always
            // the final line of a sealed segment.
            let trimmed = text.strip_suffix('\n').unwrap_or(&text);
            let body_len = trimmed.rfind('\n').map_or(0, |i| i + 1);
            let measured = crc32(&text.as_bytes()[..body_len]);
            if measured != crc {
                return Err(ObsError::SealMismatch {
                    segment: *index,
                    message: format!("footer crc32 {crc}, measured {measured}"),
                });
            }
            sealed = true;
        }
        scan.segments.push(SegmentInfo {
            index: *index,
            records: seg.records.len(),
            sealed,
            torn: seg.torn_tail.is_some(),
        });
        scan.records.extend(seg.records);
        if seg.torn_tail.is_some() {
            scan.torn_tail = seg.torn_tail;
        }
    }
    Ok(scan)
}

/// Parses free-standing JSONL (no segment framing): convenience for
/// in-memory journals and tests.
///
/// # Errors
/// As for [`parse_record`]; the torn tail is tolerated when
/// `tolerate_torn_tail` is set.
pub fn parse_jsonl(text: &str, tolerate_torn_tail: bool) -> Result<(Vec<Record>, Option<String>)> {
    let seg = parse_segment(text, "<memory>", tolerate_torn_tail)?;
    Ok((seg.records, seg.torn_tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotate::{JournalWriter, RotationConfig};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "capgpu-obs-reader-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn line(i: u64) -> String {
        format!(
            "{{\"v\":1,\"period\":{i},\"t_s\":{},\"kind\":\"period\",\"tier\":0,\"watts\":899.5}}",
            4 * i
        )
    }

    #[test]
    fn parses_records_and_fields() {
        let r = parse_record(&line(7), "<t>", 1).unwrap();
        assert_eq!(r.period, 7);
        assert_eq!(r.t_s, 28.0);
        assert_eq!(r.kind, "period");
        assert_eq!(r.u64("tier"), Some(0));
        assert_eq!(r.f64("watts"), Some(899.5));
        assert_eq!(r.str("nope"), None);
    }

    #[test]
    fn unknown_major_version_is_rejected_with_a_clear_error() {
        let err = parse_record(
            "{\"v\":2,\"period\":0,\"t_s\":0,\"kind\":\"period\"}",
            "<t>",
            1,
        )
        .unwrap_err();
        match &err {
            ObsError::SchemaVersion { found, supported } => {
                assert_eq!((*found, *supported), (2, 1));
            }
            other => panic!("wrong error {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("version 2"), "{msg}");
        assert!(msg.contains("version 1"), "{msg}");
        // Missing version field: corruption, not a silent default.
        let err =
            parse_record("{\"period\":0,\"t_s\":0,\"kind\":\"period\"}", "<t>", 1).unwrap_err();
        assert!(err.to_string().contains("schema version"), "{err}");
    }

    #[test]
    fn torn_tail_is_tolerated_only_at_the_end() {
        let mut text = format!("{}\n{}\n", line(0), line(1));
        text.push_str("{\"v\":1,\"period\":2,\"t_s\":8,\"ki");
        let (records, torn) = parse_jsonl(&text, true).unwrap();
        assert_eq!(records.len(), 2);
        assert!(torn.unwrap().contains("\"period\":2"));
        // The same text is a hard error when tolerance is off.
        assert!(parse_jsonl(&text, false).is_err());
        // Mid-file garbage is always a hard error.
        let bad = format!("{}\ngarbage\n{}\n", line(0), line(1));
        assert!(parse_jsonl(&bad, true).is_err());
    }

    #[test]
    fn round_trips_a_rotated_directory_and_verifies_seals() {
        let dir = tmpdir("roundtrip");
        let cfg = RotationConfig {
            max_segment_bytes: 200,
            max_segment_age_s: f64::INFINITY,
            retain_segments: 32,
        };
        let mut w = JournalWriter::create(&dir, cfg).unwrap();
        for i in 0..12 {
            w.append(&line(i), 4.0 * i as f64).unwrap();
        }
        // No final seal: the last segment stays active, as in a crash.
        let scan = read_dir(&dir).unwrap();
        assert_eq!(scan.records.len(), 12);
        assert!(scan.segments.len() > 1);
        for s in &scan.segments[..scan.segments.len() - 1] {
            assert!(s.sealed, "segment {} should be sealed", s.index);
        }
        assert!(!scan.segments.last().unwrap().sealed);
        assert_eq!(scan.torn_tail, None);
        // Periods arrive in order.
        let periods: Vec<u64> = scan.records.iter().map(|r| r.period).collect();
        assert_eq!(periods, (0..12).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipping_a_sealed_byte_is_detected() {
        let dir = tmpdir("crc");
        let cfg = RotationConfig {
            max_segment_bytes: 120,
            max_segment_age_s: f64::INFINITY,
            retain_segments: 32,
        };
        let mut w = JournalWriter::create(&dir, cfg).unwrap();
        for i in 0..8 {
            w.append(&line(i), 4.0 * i as f64).unwrap();
        }
        drop(w);
        // Corrupt one digit inside the first (sealed) segment's body
        // without breaking JSON: 899.5 -> 898.5.
        let path = dir.join(crate::rotate::segment_file_name(0));
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("899.5", "898.5", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        let err = read_dir(&dir).unwrap_err();
        assert!(
            matches!(err, ObsError::SealMismatch { segment: 0, .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_in_a_crashed_directory_is_tolerated() {
        let dir = tmpdir("torn");
        let cfg = RotationConfig::default();
        let mut w = JournalWriter::create(&dir, cfg).unwrap();
        for i in 0..5 {
            w.append(&line(i), 4.0 * i as f64).unwrap();
        }
        drop(w); // crash: no seal
                 // Append a torn half-record to the active segment.
        use std::io::Write as _;
        let path = dir.join(crate::rotate::segment_file_name(0));
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"v\":1,\"period\":5,\"t_s\":20,\"kin")
            .unwrap();
        drop(f);
        let scan = read_dir(&dir).unwrap();
        assert_eq!(scan.records.len(), 5);
        assert!(scan.torn_tail.is_some());
        assert!(scan.segments.last().unwrap().torn);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
