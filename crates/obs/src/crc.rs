//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
//! checksum sealed journal segments carry in their footer. Table-driven
//! so verifying a 10⁵-record journal stays well under the replay gate.

use std::sync::OnceLock;

static TABLE: OnceLock<[u32; 256]> = OnceLock::new();

fn table() -> &'static [u32; 256] {
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE, as used by zlib/gzip/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Streaming form: fold `bytes` into a running state. Start from
/// `0xFFFF_FFFF` and XOR with `0xFFFF_FFFF` to finish (what
/// [`crc32`] does in one call).
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"abcdefghijklmnopqrstuvwxyz0123456789";
        for split in 0..data.len() {
            let s = crc32_update(0xFFFF_FFFF, &data[..split]);
            let s = crc32_update(s, &data[split..]) ^ 0xFFFF_FFFF;
            assert_eq!(s, crc32(data));
        }
    }
}
