//! Online control-loop health analyzer: streaming detectors over the
//! per-period telemetry a running `capgpud` (or an offline post-mortem)
//! already produces.
//!
//! Detectors follow the SRE multi-window burn-rate pattern where it
//! applies: a *fast* window catches acute breaches, a *slow* window
//! catches sustained simmering ones, and the alert tier is the worse of
//! the two so that a short spike degrades before a long slow burn pages.
//! All state is a handful of ring buffers — O(window) memory, O(1)
//! amortized per period — and everything is driven off the record clock,
//! so verdicts are deterministic under the sim clock and identical when
//! recomputed offline from the journal.

/// Alert tier for one detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Healthy.
    Ok,
    /// One window breached, or a soft condition (e.g. meter silent for
    /// a short stretch).
    Warn,
    /// Fast and slow windows both breached, or a hard condition.
    Critical,
}

impl Verdict {
    /// Stable lowercase label (`ok` / `warn` / `critical`).
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "warn",
            Verdict::Critical => "critical",
        }
    }

    /// Numeric gauge encoding (0 / 1 / 2).
    pub fn gauge(self) -> f64 {
        match self {
            Verdict::Ok => 0.0,
            Verdict::Warn => 1.0,
            Verdict::Critical => 2.0,
        }
    }
}

/// Detector identifiers, in report order.
pub const DETECTORS: [&str; 5] = [
    "cap_violation_burn",
    "actuation_oscillation",
    "meter_silence",
    "saturation_dwell",
    "slo_miss_burn",
];

/// Analyzer tuning. Windows are in control periods.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzerConfig {
    /// Fast burn window (periods).
    pub fast_window: usize,
    /// Slow burn window (periods).
    pub slow_window: usize,
    /// Cap-violation burn threshold: mean overage (W) above the cap,
    /// per period, that counts as burning in a window.
    pub cap_burn_w: f64,
    /// Oscillation: fraction of periods in the fast window whose summed
    /// frequency delta flips sign (with hysteresis) before Warn.
    pub flip_rate_warn: f64,
    /// Oscillation flip-rate for Critical.
    pub flip_rate_critical: f64,
    /// Hysteresis floor (MHz): |Δf| below this does not count as a
    /// direction, suppressing dither-driven false flips.
    pub flip_hysteresis_mhz: f64,
    /// Consecutive stale-meter periods before meter-silence Warn;
    /// 2× this is Critical.
    pub silence_warn_periods: usize,
    /// Fraction of the slow window spent with actuation saturated
    /// (targets pinned at a bound) before Warn; Critical at 2× capped
    /// to 1.0.
    pub saturation_warn_frac: f64,
    /// SLO-miss burn threshold: miss fraction per period that counts as
    /// burning in a window.
    pub slo_burn_frac: f64,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            fast_window: 5,
            slow_window: 30,
            cap_burn_w: 1.0,
            flip_rate_warn: 0.35,
            flip_rate_critical: 0.6,
            flip_hysteresis_mhz: 1.0,
            silence_warn_periods: 3,
            saturation_warn_frac: 0.5,
            slo_burn_frac: 0.05,
        }
    }
}

impl AnalyzerConfig {
    /// Validates the tuning.
    ///
    /// # Errors
    /// [`crate::ObsError::BadConfig`] with a description.
    pub fn validate(&self) -> crate::Result<()> {
        if self.fast_window == 0 || self.slow_window < self.fast_window {
            return Err(crate::ObsError::BadConfig(
                "analyzer windows must satisfy 1 <= fast_window <= slow_window".into(),
            ));
        }
        // NaN thresholds must be rejected too, hence the explicit is_nan.
        if self.cap_burn_w.is_nan()
            || self.cap_burn_w < 0.0
            || self.slo_burn_frac.is_nan()
            || self.slo_burn_frac < 0.0
        {
            return Err(crate::ObsError::BadConfig(
                "analyzer burn thresholds must be >= 0".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.flip_rate_warn)
            || !(0.0..=1.0).contains(&self.flip_rate_critical)
            || self.flip_rate_critical < self.flip_rate_warn
        {
            return Err(crate::ObsError::BadConfig(
                "analyzer flip rates must satisfy 0 <= warn <= critical <= 1".into(),
            ));
        }
        Ok(())
    }
}

/// One period's observables, as fed to [`HealthAnalyzer::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PeriodSample {
    /// Measured total power (W).
    pub power_w: f64,
    /// Active power cap (W).
    pub cap_w: f64,
    /// Sum of commanded frequency deltas across devices (MHz); sign
    /// flips feed the oscillation detector.
    pub delta_f_mhz: f64,
    /// Whether the power meter reading was stale this period.
    pub meter_stale: bool,
    /// Whether actuation was saturated (some target pinned at a
    /// frequency bound).
    pub saturated: bool,
    /// Fraction of requests missing their SLO this period (0..=1).
    pub slo_miss_frac: f64,
}

/// An edge-triggered verdict change, for journaling.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEdge {
    /// Which detector fired (one of [`DETECTORS`]).
    pub detector: &'static str,
    /// Verdict before the edge.
    pub from: Verdict,
    /// Verdict after the edge.
    pub to: Verdict,
}

/// Fixed-capacity ring of per-period scalars with O(1) windowed sums.
#[derive(Debug, Clone)]
struct Ring {
    buf: Vec<f64>,
    head: usize,
    len: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: vec![0.0; cap.max(1)],
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, v: f64) {
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.buf.len();
        self.len = (self.len + 1).min(self.buf.len());
    }

    /// Mean of the most recent `n` values (fewer while warming up).
    fn mean_last(&self, n: usize) -> f64 {
        let n = n.min(self.len);
        if n == 0 {
            return 0.0;
        }
        let cap = self.buf.len();
        let mut sum = 0.0;
        for i in 0..n {
            sum += self.buf[(self.head + cap - 1 - i) % cap];
        }
        sum / n as f64
    }

    /// Sum of the most recent `n` values divided by `n` itself —
    /// "fraction of the window", with not-yet-observed periods counting
    /// as zero (unlike [`Ring::mean_last`], which averages only what it
    /// has seen).
    fn frac_of(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let m = n.min(self.len);
        let cap = self.buf.len();
        let mut sum = 0.0;
        for i in 0..m {
            sum += self.buf[(self.head + cap - 1 - i) % cap];
        }
        sum / n as f64
    }

    fn observed(&self) -> usize {
        self.len
    }
}

/// Streaming health analyzer; one instance per control loop.
#[derive(Debug, Clone)]
pub struct HealthAnalyzer {
    cfg: AnalyzerConfig,
    /// Per-period W over the cap (0 when under).
    over_w: Ring,
    /// Per-period flip indicator (1.0 when Δf changed sign).
    flips: Ring,
    /// Per-period saturation indicator.
    sat: Ring,
    /// Per-period SLO miss fraction.
    slo: Ring,
    last_dir: i8,
    stale_run: usize,
    verdicts: [Verdict; DETECTORS.len()],
    periods: u64,
}

impl HealthAnalyzer {
    /// A fresh analyzer.
    ///
    /// # Errors
    /// [`crate::ObsError::BadConfig`] on invalid tuning.
    pub fn new(cfg: AnalyzerConfig) -> crate::Result<Self> {
        cfg.validate()?;
        let w = cfg.slow_window;
        Ok(HealthAnalyzer {
            over_w: Ring::new(w),
            flips: Ring::new(w),
            sat: Ring::new(w),
            slo: Ring::new(w),
            last_dir: 0,
            stale_run: 0,
            verdicts: [Verdict::Ok; DETECTORS.len()],
            cfg,
            periods: 0,
        })
    }

    /// Feeds one period and returns the verdict edges it triggered
    /// (empty when nothing changed tier).
    pub fn observe(&mut self, s: &PeriodSample) -> Vec<HealthEdge> {
        self.periods += 1;
        self.over_w.push((s.power_w - s.cap_w).max(0.0));
        // Oscillation: a flip is a sign change of Δf between periods,
        // where |Δf| under the hysteresis floor carries no direction.
        let dir = if s.delta_f_mhz > self.cfg.flip_hysteresis_mhz {
            1i8
        } else if s.delta_f_mhz < -self.cfg.flip_hysteresis_mhz {
            -1
        } else {
            0
        };
        let flipped = dir != 0 && self.last_dir != 0 && dir != self.last_dir;
        self.flips.push(if flipped { 1.0 } else { 0.0 });
        if dir != 0 {
            self.last_dir = dir;
        }
        self.sat.push(if s.saturated { 1.0 } else { 0.0 });
        self.slo.push(s.slo_miss_frac.clamp(0.0, 1.0));
        self.stale_run = if s.meter_stale { self.stale_run + 1 } else { 0 };

        let next = [
            self.burn_verdict(&self.over_w, self.cfg.cap_burn_w),
            self.oscillation_verdict(),
            self.silence_verdict(),
            self.saturation_verdict(),
            self.burn_verdict(&self.slo, self.cfg.slo_burn_frac),
        ];
        let mut edges = Vec::new();
        for (i, (&from, &to)) in self.verdicts.iter().zip(next.iter()).enumerate() {
            if from != to {
                edges.push(HealthEdge {
                    detector: DETECTORS[i],
                    from,
                    to,
                });
            }
        }
        self.verdicts = next;
        edges
    }

    /// Multi-window burn rate: fast window over threshold alone is
    /// Warn; fast *and* slow both over is Critical (the SRE two-window
    /// AND — sustained burn, not a blip).
    fn burn_verdict(&self, ring: &Ring, threshold: f64) -> Verdict {
        let fast = ring.mean_last(self.cfg.fast_window);
        let slow = ring.mean_last(self.cfg.slow_window);
        if fast > threshold && slow > threshold && ring.observed() >= self.cfg.fast_window {
            Verdict::Critical
        } else if fast > threshold && ring.observed() >= self.cfg.fast_window {
            Verdict::Warn
        } else {
            Verdict::Ok
        }
    }

    fn oscillation_verdict(&self) -> Verdict {
        if self.flips.observed() < self.cfg.fast_window {
            return Verdict::Ok;
        }
        let rate = self.flips.mean_last(self.cfg.fast_window);
        if rate >= self.cfg.flip_rate_critical {
            Verdict::Critical
        } else if rate >= self.cfg.flip_rate_warn {
            Verdict::Warn
        } else {
            Verdict::Ok
        }
    }

    fn silence_verdict(&self) -> Verdict {
        if self.stale_run >= 2 * self.cfg.silence_warn_periods {
            Verdict::Critical
        } else if self.stale_run >= self.cfg.silence_warn_periods {
            Verdict::Warn
        } else {
            Verdict::Ok
        }
    }

    fn saturation_verdict(&self) -> Verdict {
        if self.sat.observed() < self.cfg.fast_window {
            return Verdict::Ok;
        }
        // Dwell is a fraction of the *full* slow window, so a freshly
        // started analyzer does not call five saturated periods
        // "saturated half the time".
        let frac = self.sat.frac_of(self.cfg.slow_window);
        if frac >= (2.0 * self.cfg.saturation_warn_frac).min(1.0) {
            Verdict::Critical
        } else if frac >= self.cfg.saturation_warn_frac {
            Verdict::Warn
        } else {
            Verdict::Ok
        }
    }

    /// Current verdicts, in [`DETECTORS`] order.
    pub fn verdicts(&self) -> [(&'static str, Verdict); DETECTORS.len()] {
        let mut out = [("", Verdict::Ok); DETECTORS.len()];
        for (i, name) in DETECTORS.iter().enumerate() {
            out[i] = (name, self.verdicts[i]);
        }
        out
    }

    /// Worst verdict across all detectors.
    pub fn overall(&self) -> Verdict {
        self.verdicts.iter().copied().max().unwrap_or(Verdict::Ok)
    }

    /// Periods observed so far.
    pub fn periods(&self) -> u64 {
        self.periods
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> HealthAnalyzer {
        HealthAnalyzer::new(AnalyzerConfig::default()).unwrap()
    }

    fn quiet(cap_w: f64) -> PeriodSample {
        PeriodSample {
            power_w: cap_w - 20.0,
            cap_w,
            delta_f_mhz: 0.0,
            meter_stale: false,
            saturated: false,
            slo_miss_frac: 0.0,
        }
    }

    #[test]
    fn quiet_loop_stays_ok() {
        let mut a = analyzer();
        for _ in 0..100 {
            assert!(a.observe(&quiet(900.0)).is_empty());
        }
        assert_eq!(a.overall(), Verdict::Ok);
    }

    #[test]
    fn cap_burn_escalates_fast_then_critical_and_recovers() {
        let mut a = analyzer();
        for _ in 0..40 {
            a.observe(&quiet(900.0));
        }
        let mut hot = quiet(900.0);
        hot.power_w = 915.0;
        let mut saw_warn = false;
        let mut saw_critical = false;
        for _ in 0..40 {
            for e in a.observe(&hot) {
                if e.detector == "cap_violation_burn" {
                    saw_warn |= e.to == Verdict::Warn;
                    saw_critical |= e.to == Verdict::Critical;
                }
            }
        }
        assert!(
            saw_warn && saw_critical,
            "warn={saw_warn} critical={saw_critical}"
        );
        assert_eq!(a.overall(), Verdict::Critical);
        // Sustained recovery clears it (slow window must drain).
        for _ in 0..60 {
            a.observe(&quiet(900.0));
        }
        assert_eq!(a.overall(), Verdict::Ok);
    }

    #[test]
    fn oscillation_counts_sign_flips_with_hysteresis() {
        let mut a = analyzer();
        // Dither under the hysteresis floor: no direction, no flips.
        let mut s = quiet(900.0);
        for i in 0..30 {
            s.delta_f_mhz = if i % 2 == 0 { 0.5 } else { -0.5 };
            a.observe(&s);
        }
        assert_eq!(a.verdicts()[1].1, Verdict::Ok);
        // Full-amplitude alternation: every period flips.
        for i in 0..10 {
            s.delta_f_mhz = if i % 2 == 0 { 30.0 } else { -30.0 };
            a.observe(&s);
        }
        assert_eq!(a.verdicts()[1].1, Verdict::Critical);
    }

    #[test]
    fn meter_silence_tracks_consecutive_stale_periods() {
        let mut a = analyzer();
        let mut s = quiet(900.0);
        s.meter_stale = true;
        for _ in 0..2 {
            a.observe(&s);
        }
        assert_eq!(a.verdicts()[2].1, Verdict::Ok);
        a.observe(&s);
        assert_eq!(a.verdicts()[2].1, Verdict::Warn);
        for _ in 0..3 {
            a.observe(&s);
        }
        assert_eq!(a.verdicts()[2].1, Verdict::Critical);
        // One fresh reading clears the run entirely.
        s.meter_stale = false;
        a.observe(&s);
        assert_eq!(a.verdicts()[2].1, Verdict::Ok);
    }

    #[test]
    fn saturation_dwell_uses_the_slow_window() {
        let mut a = analyzer();
        let mut s = quiet(900.0);
        s.saturated = true;
        for _ in 0..16 {
            a.observe(&s);
        }
        // 16/30 of the slow window saturated: past the 0.5 Warn line.
        assert_eq!(a.verdicts()[3].1, Verdict::Warn);
        for _ in 0..14 {
            a.observe(&s);
        }
        assert_eq!(a.verdicts()[3].1, Verdict::Critical);
    }

    #[test]
    fn slo_burn_fires_on_sustained_miss_rate() {
        let mut a = analyzer();
        let mut s = quiet(900.0);
        s.slo_miss_frac = 0.2;
        let mut critical = false;
        for _ in 0..30 {
            for e in a.observe(&s) {
                critical |= e.detector == "slo_miss_burn" && e.to == Verdict::Critical;
            }
        }
        assert!(critical);
    }

    #[test]
    fn edges_are_edge_triggered() {
        let mut a = analyzer();
        let mut s = quiet(900.0);
        s.meter_stale = true;
        let mut edges = 0;
        for _ in 0..20 {
            edges += a
                .observe(&s)
                .iter()
                .filter(|e| e.detector == "meter_silence")
                .count();
        }
        // Ok->Warn and Warn->Critical: exactly two edges, no repeats.
        assert_eq!(edges, 2);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let cfg = AnalyzerConfig {
            fast_window: 0,
            ..AnalyzerConfig::default()
        };
        assert!(HealthAnalyzer::new(cfg).is_err());
        let cfg = AnalyzerConfig {
            slow_window: 2,
            ..AnalyzerConfig::default()
        };
        assert!(HealthAnalyzer::new(cfg).is_err());
        let cfg = AnalyzerConfig {
            flip_rate_critical: 0.1,
            ..AnalyzerConfig::default()
        };
        assert!(HealthAnalyzer::new(cfg).is_err());
    }
}
