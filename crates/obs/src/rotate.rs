//! Size/age-based journal segment rotation with CRC-sealed footers and
//! a bounded-retention reaper.
//!
//! A journal directory holds segments named `journal.NNNNNN.jsonl`
//! with a strictly monotone, zero-padded index that keeps growing
//! across restarts (the writer scans the directory and continues after
//! the highest index it finds — a restarted daemon never reuses or
//! appends to a possibly-torn crashed segment). A segment rolls when it
//! reaches [`RotationConfig::max_segment_bytes`] or when the *record
//! clock* (the `t_s` field — the sim clock in deterministic runs, wall
//! seconds on live hardware) has advanced
//! [`RotationConfig::max_segment_age_s`] past the segment's first
//! record. Because both triggers are functions of the record stream
//! alone, rotation points are deterministic and golden-safe.
//!
//! On roll the segment is *sealed*: a footer line
//! `{"v":1,"kind":"segment_seal","segment":N,"records":R,"crc32":C}`
//! is appended, where `C` is the CRC-32 of every preceding record byte
//! (newlines included). The reader verifies seals; the one segment
//! without a seal is the active (or crashed) one, whose final record is
//! allowed to be torn.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::crc::crc32_update;
use crate::{ObsError, Result};

/// Segment file prefix and suffix: `journal.NNNNNN.jsonl`.
pub const SEGMENT_PREFIX: &str = "journal.";
/// See [`SEGMENT_PREFIX`].
pub const SEGMENT_SUFFIX: &str = ".jsonl";

/// Rotation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotationConfig {
    /// Roll once a segment holds at least this many record bytes
    /// (checked after each append, so a segment may exceed it by one
    /// record).
    pub max_segment_bytes: u64,
    /// Roll once the record clock has advanced this many seconds past
    /// the segment's first record. `f64::INFINITY` disables the age
    /// trigger.
    pub max_segment_age_s: f64,
    /// How many segments (sealed + active) the reaper retains; older
    /// ones are deleted at each roll. This bounds journal disk usage at
    /// roughly `retain_segments × max_segment_bytes`.
    pub retain_segments: usize,
}

impl Default for RotationConfig {
    /// 64 KiB segments, a 1-hour age cap, 8 segments retained.
    fn default() -> Self {
        RotationConfig {
            max_segment_bytes: 64 * 1024,
            max_segment_age_s: 3600.0,
            retain_segments: 8,
        }
    }
}

impl RotationConfig {
    /// Validates the policy.
    ///
    /// # Errors
    /// [`ObsError::BadConfig`] with a description.
    pub fn validate(&self) -> Result<()> {
        if self.max_segment_bytes == 0 {
            return Err(ObsError::BadConfig(
                "rotation.max_segment_bytes must be >= 1".into(),
            ));
        }
        // NaN ages must be rejected too, hence the explicit is_nan.
        if self.max_segment_age_s.is_nan() || self.max_segment_age_s <= 0.0 {
            return Err(ObsError::BadConfig(
                "rotation.max_segment_age_s must be > 0".into(),
            ));
        }
        if self.retain_segments < 2 {
            return Err(ObsError::BadConfig(
                "rotation.retain_segments must be >= 2 (the active segment plus at least \
                 one sealed one, or recovery has nothing to replay)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Renders the segment file name for `index`.
pub fn segment_file_name(index: u64) -> String {
    format!("{SEGMENT_PREFIX}{index:06}{SEGMENT_SUFFIX}")
}

/// Parses a segment index out of a file name, if it is one.
pub fn parse_segment_index(name: &str) -> Option<u64> {
    let body = name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?;
    if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    body.parse().ok()
}

/// Lists the segment files in `dir`, sorted by index.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_index) {
            out.push((idx, entry.path()));
        }
    }
    out.sort_by_key(|(idx, _)| *idx);
    Ok(out)
}

/// Rotating JSONL journal writer.
///
/// Appends pre-rendered record lines (`Event::to_json` output) to the
/// active segment, sealing and rolling per [`RotationConfig`]. Each
/// append is flushed so a crash loses at most the record being written
/// — the torn-tail case the reader explicitly tolerates.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    cfg: RotationConfig,
    /// Index of the active segment.
    index: u64,
    file: Option<File>,
    seg_bytes: u64,
    seg_records: u64,
    /// Running CRC state over the active segment's record bytes.
    seg_crc: u32,
    seg_first_t_s: Option<f64>,
    /// Total records appended over the writer's lifetime.
    appended: u64,
    /// Segments sealed over the writer's lifetime.
    sealed: u64,
    /// Segments deleted by the reaper over the writer's lifetime.
    reaped: u64,
}

impl JournalWriter {
    /// Opens a writer on `dir` (created if missing). Any existing
    /// segments are left untouched; writing continues in a *new*
    /// segment numbered after the highest existing index, so a crashed
    /// segment's torn tail is never appended to.
    ///
    /// # Errors
    /// [`ObsError::BadConfig`] on an invalid policy, [`ObsError::Io`]
    /// on filesystem failure.
    pub fn create(dir: impl Into<PathBuf>, cfg: RotationConfig) -> Result<Self> {
        cfg.validate()?;
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let existing = list_segments(&dir)?;
        let index = existing.last().map_or(0, |(idx, _)| idx + 1);
        Ok(JournalWriter {
            dir,
            cfg,
            index,
            file: None,
            seg_bytes: 0,
            seg_records: 0,
            seg_crc: 0xFFFF_FFFF,
            seg_first_t_s: None,
            appended: 0,
            sealed: 0,
            reaped: 0,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the segment the next record lands in.
    pub fn segment_index(&self) -> u64 {
        self.index
    }

    /// `(records appended, segments sealed, segments reaped)` since
    /// creation.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.appended, self.sealed, self.reaped)
    }

    /// Appends one record line (no trailing newline) stamped at record
    /// clock `t_s`, rolling the segment afterwards if the policy says
    /// so.
    ///
    /// # Errors
    /// [`ObsError::Io`] on filesystem failure.
    pub fn append(&mut self, line: &str, t_s: f64) -> Result<()> {
        if self.file.is_none() {
            let path = self.dir.join(segment_file_name(self.index));
            let file = OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&path)?;
            self.file = Some(file);
            self.seg_bytes = 0;
            self.seg_records = 0;
            self.seg_crc = 0xFFFF_FFFF;
            self.seg_first_t_s = None;
        }
        let file = self.file.as_mut().expect("opened above");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        self.seg_crc = crc32_update(self.seg_crc, line.as_bytes());
        self.seg_crc = crc32_update(self.seg_crc, b"\n");
        self.seg_bytes += line.len() as u64 + 1;
        self.seg_records += 1;
        self.seg_first_t_s.get_or_insert(t_s);
        self.appended += 1;
        let aged = self
            .seg_first_t_s
            .is_some_and(|t0| t_s - t0 >= self.cfg.max_segment_age_s);
        if self.seg_bytes >= self.cfg.max_segment_bytes || aged {
            self.seal()?;
        }
        Ok(())
    }

    /// Seals the active segment (writes the CRC footer) and advances
    /// the segment index; the next append opens a fresh segment. A
    /// no-op when the active segment holds no records. Call on graceful
    /// shutdown — a crash simply leaves the segment unsealed.
    ///
    /// # Errors
    /// [`ObsError::Io`] on filesystem failure.
    pub fn seal(&mut self) -> Result<()> {
        let Some(mut file) = self.file.take() else {
            return Ok(());
        };
        let crc = self.seg_crc ^ 0xFFFF_FFFF;
        let footer = format!(
            "{{\"v\":{},\"kind\":\"segment_seal\",\"segment\":{},\"records\":{},\"crc32\":{}}}\n",
            capgpu_telemetry::journal::SCHEMA_VERSION,
            self.index,
            self.seg_records,
            crc
        );
        file.write_all(footer.as_bytes())?;
        file.flush()?;
        drop(file);
        self.sealed += 1;
        self.index += 1;
        self.reap()?;
        Ok(())
    }

    /// Deletes the oldest segments beyond the retention bound. The
    /// active (highest-index) segment always survives.
    fn reap(&mut self) -> Result<()> {
        let segments = list_segments(&self.dir)?;
        if segments.len() <= self.cfg.retain_segments {
            return Ok(());
        }
        let drop_n = segments.len() - self.cfg.retain_segments;
        for (_, path) in &segments[..drop_n] {
            std::fs::remove_file(path)?;
            self.reaped += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "capgpu-obs-rotate-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(i: u64) -> String {
        format!(
            "{{\"v\":1,\"period\":{i},\"t_s\":{},\"kind\":\"period\"}}",
            4 * i
        )
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(segment_file_name(7), "journal.000007.jsonl");
        assert_eq!(parse_segment_index("journal.000007.jsonl"), Some(7));
        assert_eq!(
            parse_segment_index("journal.1000000.jsonl"),
            Some(1_000_000)
        );
        assert_eq!(parse_segment_index("journal..jsonl"), None);
        assert_eq!(parse_segment_index("journal.x7.jsonl"), None);
        assert_eq!(parse_segment_index("other.000007.jsonl"), None);
    }

    #[test]
    fn size_trigger_rolls_and_seals() {
        let dir = tmpdir("size");
        let cfg = RotationConfig {
            max_segment_bytes: 120,
            max_segment_age_s: f64::INFINITY,
            retain_segments: 10,
        };
        let mut w = JournalWriter::create(&dir, cfg).unwrap();
        for i in 0..10 {
            w.append(&record(i), 4.0 * i as f64).unwrap();
        }
        w.seal().unwrap();
        let segs = list_segments(&dir).unwrap();
        assert!(
            segs.len() > 2,
            "expected several segments, got {}",
            segs.len()
        );
        // Indices are contiguous from 0.
        for (want, (idx, _)) in segs.iter().enumerate() {
            assert_eq!(*idx, want as u64);
        }
        // Every segment is sealed (we called seal() at the end) and the
        // seal CRC verifies.
        for (_, path) in &segs {
            let text = std::fs::read_to_string(path).unwrap();
            let (body, footer) = text[..text.len() - 1]
                .rsplit_once('\n')
                .map(|(b, f)| (format!("{b}\n"), f.to_string()))
                .unwrap();
            assert!(footer.contains("\"kind\":\"segment_seal\""), "{footer}");
            let crc = crate::crc::crc32(body.as_bytes());
            assert!(footer.contains(&format!("\"crc32\":{crc}")), "{footer}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn age_trigger_rolls_on_the_record_clock() {
        let dir = tmpdir("age");
        let cfg = RotationConfig {
            max_segment_bytes: u64::MAX,
            max_segment_age_s: 10.0,
            retain_segments: 10,
        };
        let mut w = JournalWriter::create(&dir, cfg).unwrap();
        // 4 s cadence: rolls after t_s 0,4,8,12 (age 12 >= 10), etc.
        for i in 0..8 {
            w.append(&record(i), 4.0 * i as f64).unwrap();
        }
        assert!(w.segment_index() >= 2, "age trigger never fired");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reaper_bounds_retention_and_index_stays_monotone_across_restart() {
        let dir = tmpdir("reap");
        let cfg = RotationConfig {
            max_segment_bytes: 60,
            max_segment_age_s: f64::INFINITY,
            retain_segments: 3,
        };
        let mut w = JournalWriter::create(&dir, cfg).unwrap();
        for i in 0..20 {
            w.append(&record(i), i as f64).unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() <= 3, "reaper kept {} segments", segs.len());
        let top = segs.last().unwrap().0;
        let (_, sealed, reaped) = w.stats();
        assert!(sealed > 3 && reaped > 0);
        drop(w);
        // Restart: the writer continues after the highest index, never
        // appending to a possibly-torn segment.
        let w2 = JournalWriter::create(&dir, cfg).unwrap();
        assert_eq!(w2.segment_index(), top + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
