//! Observability consumption layer for the CapGPU stack.
//!
//! `capgpu-telemetry` (DESIGN.md §14) is the *emission* side: a metric
//! registry, control-loop spans, and a JSONL event journal. This crate
//! is the *consumption* side — the pieces that turn those journals into
//! rotation-safe durable state, post-crash recovery, and live health
//! verdicts:
//!
//! - [`rotate`] — size/age-based journal segment rollover with a
//!   monotone segment index, CRC-checked segment seals, and a bounded
//!   retention reaper. Ages are measured on the *record clock* (the sim
//!   clock in deterministic runs), so rotation points — and therefore
//!   every committed golden — are byte-identical across reruns.
//! - [`reader`] — a journal-directory reader that verifies sealed
//!   segments, tolerates a torn final record in the active (crashed)
//!   segment, and rejects unknown journal schema major versions with a
//!   clear error.
//! - [`replay`] — the crash-recovery state machine: folds
//!   `identified` / `model_gain` / `refit` / `tier_change` /
//!   `setpoint_change` / `quarantine` / `period` events back into the
//!   supervisor tier, model scale + offset, quarantine set, and
//!   in-force actuation targets a restarted `capgpud` needs to resume
//!   within one control period.
//! - [`analyzer`] — streaming health detectors over the period record
//!   stream: multi-window cap-violation burn rate (SRE-style fast/slow
//!   alerting on W·s over cap), actuation-oscillation sign-flip rate
//!   with hysteresis, meter-silence dwell, actuator-saturation dwell,
//!   and SLO-miss burn rate. Verdicts are edge-triggered so they can be
//!   journaled and exported as gauges without flooding either.
//! - [`report`] — a deterministic offline post-mortem: ingest a journal
//!   directory, replay it, re-run the detectors, and render a timeline
//!   + burn summary suitable for a committed golden.
//!
//! Everything here is dependency-free and deterministic: two reads of
//! the same journal directory produce byte-identical reports.

#![warn(missing_docs)]

pub mod analyzer;
mod crc;
mod json;
pub mod reader;
pub mod replay;
pub mod report;
pub mod rotate;

pub use crc::crc32;

/// Errors from the observability consumption layer.
#[derive(Debug)]
pub enum ObsError {
    /// Filesystem failure (reading or writing journal segments).
    Io(std::io::Error),
    /// A record failed to parse somewhere other than the torn tail of
    /// the active segment.
    Corrupt {
        /// Which file (or pseudo-source) held the record.
        source: String,
        /// 1-based line number within the source.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A record carries a journal schema major version this reader does
    /// not understand.
    SchemaVersion {
        /// The version found in the record.
        found: u64,
        /// The version this reader supports.
        supported: u64,
    },
    /// A sealed segment failed its integrity check (CRC or record
    /// count mismatch against the seal footer).
    SealMismatch {
        /// Segment index.
        segment: u64,
        /// What disagreed.
        message: String,
    },
    /// Invalid configuration (rotation or analyzer thresholds).
    BadConfig(String),
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Io(e) => write!(f, "journal I/O: {e}"),
            ObsError::Corrupt {
                source,
                line,
                message,
            } => write!(f, "corrupt journal record ({source}:{line}): {message}"),
            ObsError::SchemaVersion { found, supported } => write!(
                f,
                "journal schema version {found} is not supported (this reader understands \
                 version {supported}); refusing to replay a journal it could misinterpret"
            ),
            ObsError::SealMismatch { segment, message } => {
                write!(f, "sealed segment {segment} failed verification: {message}")
            }
            ObsError::BadConfig(m) => write!(f, "bad obs configuration: {m}"),
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ObsError>;
