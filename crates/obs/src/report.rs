//! Offline post-mortem: turn a scanned journal directory into a
//! deterministic human-readable report — tier-transition timeline,
//! detector firings (the online analyzer recomputed offline, which
//! yields the *same* verdicts because everything runs on the record
//! clock), and a power/SLO burn summary.

use std::fmt::Write as _;

use crate::analyzer::{AnalyzerConfig, HealthAnalyzer, PeriodSample, Verdict, DETECTORS};
use crate::reader::{JournalScan, Record};
use crate::replay::ReplayState;
use crate::Result;

/// A rendered post-mortem.
#[derive(Debug, Clone, PartialEq)]
pub struct PostMortem {
    /// The report text (what `capgpu-obs` prints and the golden pins).
    pub text: String,
    /// Final detector verdicts, in [`DETECTORS`] order.
    pub verdicts: [(&'static str, Verdict); DETECTORS.len()],
    /// Worst final verdict.
    pub overall: Verdict,
    /// The replayed control state.
    pub state: ReplayState,
}

fn fmt_w(v: f64) -> String {
    format!("{v:.1}")
}

fn tier_name(t: u64) -> &'static str {
    match t {
        0 => "primary",
        1 => "safe-fallback",
        2 => "park",
        _ => "unknown",
    }
}

/// Reconstructs a [`PeriodSample`] from a `period` record. Missing
/// fields degrade to benign defaults so partial journals still render.
fn period_sample(r: &Record) -> PeriodSample {
    PeriodSample {
        power_w: r.f64("watts").unwrap_or(0.0),
        cap_w: r.f64("setpoint").unwrap_or(f64::INFINITY),
        delta_f_mhz: r.f64("delta_f_mhz").unwrap_or(0.0),
        // `stale` is the consecutive-silent-period count the supervisor
        // acted on; any nonzero count means the meter was silent.
        meter_stale: r.u64("stale").is_some_and(|n| n > 0),
        saturated: r.bool("saturated").unwrap_or(false),
        slo_miss_frac: r.f64("slo_miss").unwrap_or(0.0),
    }
}

/// Renders the post-mortem for a scanned journal.
///
/// # Errors
/// [`crate::ObsError::BadConfig`] on invalid analyzer tuning.
pub fn render(scan: &JournalScan, cfg: &AnalyzerConfig) -> Result<PostMortem> {
    let mut analyzer = HealthAnalyzer::new(cfg.clone())?;
    let state = ReplayState::replay(&scan.records);

    let mut out = String::new();
    let _ = writeln!(out, "capgpu-obs post-mortem");
    let _ = writeln!(out, "======================");
    let _ = writeln!(out);

    // --- journal shape ---
    let sealed = scan.segments.iter().filter(|s| s.sealed).count();
    let torn = scan.segments.iter().filter(|s| s.torn).count();
    let _ = writeln!(out, "journal");
    let _ = writeln!(
        out,
        "  segments={} sealed={} unsealed={} torn_tail={}",
        scan.segments.len(),
        sealed,
        scan.segments.len() - sealed,
        torn
    );
    let mut kinds: Vec<(String, u64)> = state.kind_counts.clone();
    kinds.sort();
    let kinds = kinds
        .iter()
        .map(|(k, n)| format!("{k}={n}"))
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(out, "  records={} ({kinds})", scan.records.len());
    if let (Some(first), Some(last)) = (scan.records.first(), scan.records.last()) {
        let _ = writeln!(
            out,
            "  span: period {}..{} t_s {}..{}",
            first.period, last.period, first.t_s, last.t_s
        );
    }
    let _ = writeln!(out);

    // --- recovered state ---
    let _ = writeln!(out, "recovered state");
    let _ = writeln!(
        out,
        "  tier={} ({})",
        state.tier_or_primary(),
        tier_name(state.tier_or_primary())
    );
    match state.model() {
        Some((gains, offset)) => {
            let gains = gains
                .iter()
                .map(|g| format!("{g:.6}"))
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                out,
                "  model: gains_w_per_mhz=[{gains}] offset_w={} scale={}",
                fmt_w(offset),
                state
                    .scale
                    .map_or_else(|| "1".to_string(), |s| format!("{s:.6}")),
            );
        }
        None => {
            let _ = writeln!(out, "  model: <no identification replayed>");
        }
    }
    let quarantined = if state.quarantined.is_empty() {
        "none".to_string()
    } else {
        state
            .quarantined
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(out, "  quarantined={quarantined}");
    if let Some(cap) = state.cap_w {
        let _ = writeln!(out, "  cap_w={}", fmt_w(cap));
    }
    if !state.last_targets_mhz.is_empty() {
        let _ = writeln!(
            out,
            "  last_targets_mhz=[{}]",
            crate::replay::format_targets(&state.last_targets_mhz)
        );
    }
    let _ = writeln!(out);

    // --- tier timeline ---
    let _ = writeln!(out, "tier timeline");
    let mut any = false;
    for r in scan.records.iter().filter(|r| r.kind == "tier_change") {
        any = true;
        let from = r.u64("from").unwrap_or(0);
        let to = r.u64("to").unwrap_or(0);
        let _ = writeln!(
            out,
            "  period={} t_s={} {} -> {} ({})",
            r.period,
            r.t_s,
            tier_name(from),
            tier_name(to),
            r.str("reason").unwrap_or("?")
        );
    }
    if !any {
        let _ = writeln!(out, "  (no transitions: primary throughout)");
    }
    let _ = writeln!(out);

    // --- detector firings: re-run the analyzer over period records ---
    let _ = writeln!(out, "detector firings");
    let mut n_periods = 0u64;
    let mut over_periods = 0u64;
    let mut max_over = 0.0f64;
    let mut sum_over = 0.0f64;
    let mut sum_slo = 0.0f64;
    let mut fired = false;
    for r in scan.records.iter().filter(|r| r.kind == "period") {
        let s = period_sample(r);
        n_periods += 1;
        let over = (s.power_w - s.cap_w).max(0.0);
        if over > 0.0 {
            over_periods += 1;
            sum_over += over;
            max_over = max_over.max(over);
        }
        sum_slo += s.slo_miss_frac;
        for e in analyzer.observe(&s) {
            fired = true;
            let _ = writeln!(
                out,
                "  period={} t_s={} {} {} -> {}",
                r.period,
                r.t_s,
                e.detector,
                e.from.label(),
                e.to.label()
            );
        }
    }
    if !fired {
        let _ = writeln!(out, "  (none)");
    }
    let verdicts = analyzer.verdicts();
    let finals = verdicts
        .iter()
        .map(|(name, v)| format!("{name}={}", v.label()))
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(out, "  final: {finals}");
    let _ = writeln!(out, "  overall: {}", analyzer.overall().label());
    let _ = writeln!(out);

    // --- burn summary ---
    let _ = writeln!(out, "burn summary");
    let _ = writeln!(
        out,
        "  periods={} over_cap={} ({:.1}%)",
        n_periods,
        over_periods,
        if n_periods > 0 {
            100.0 * over_periods as f64 / n_periods as f64
        } else {
            0.0
        }
    );
    let _ = writeln!(
        out,
        "  overage: max={} W mean_over_violations={} W",
        fmt_w(max_over),
        fmt_w(if over_periods > 0 {
            sum_over / over_periods as f64
        } else {
            0.0
        })
    );
    let _ = writeln!(
        out,
        "  slo_miss: mean={:.4}",
        if n_periods > 0 {
            sum_slo / n_periods as f64
        } else {
            0.0
        }
    );

    Ok(PostMortem {
        text: out,
        verdicts,
        overall: analyzer.overall(),
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_jsonl;

    fn scan_of(text: &str) -> JournalScan {
        let (records, torn_tail) = parse_jsonl(text, true).unwrap();
        JournalScan {
            records,
            segments: Vec::new(),
            torn_tail,
        }
    }

    #[test]
    fn report_is_deterministic_and_covers_sections() {
        let text = concat!(
            "{\"v\":1,\"period\":0,\"t_s\":0,\"kind\":\"model_gain\",\"device\":0,\"w_per_mhz\":0.35}\n",
            "{\"v\":1,\"period\":0,\"t_s\":0,\"kind\":\"identified\",\"offset_w\":210}\n",
            "{\"v\":1,\"period\":1,\"t_s\":4,\"kind\":\"period\",\"watts\":880,\"setpoint\":900,\"targets\":\"1350\"}\n",
            "{\"v\":1,\"period\":2,\"t_s\":8,\"kind\":\"tier_change\",\"from\":0,\"to\":1,\"reason\":\"stale_meter\"}\n",
            "{\"v\":1,\"period\":3,\"t_s\":12,\"kind\":\"period\",\"watts\":930,\"setpoint\":900,\"targets\":\"1300\"}\n",
        );
        let scan = scan_of(text);
        let cfg = AnalyzerConfig::default();
        let a = render(&scan, &cfg).unwrap();
        let b = render(&scan, &cfg).unwrap();
        assert_eq!(a.text, b.text);
        for needle in [
            "capgpu-obs post-mortem",
            "tier timeline",
            "primary -> safe-fallback (stale_meter)",
            "detector firings",
            "burn summary",
            "over_cap=1",
            "last_targets_mhz=[1300]",
        ] {
            assert!(
                a.text.contains(needle),
                "missing {needle:?} in:\n{}",
                a.text
            );
        }
        assert_eq!(a.state.tier, Some(1));
    }

    #[test]
    fn empty_journal_renders_without_panicking() {
        let scan = JournalScan::default();
        let pm = render(&scan, &AnalyzerConfig::default()).unwrap();
        assert!(pm.text.contains("records=0"));
        assert!(pm.text.contains("(no transitions"));
        assert_eq!(pm.overall, Verdict::Ok);
    }
}
