//! Crash-recovery replay: fold journal records back into the control
//! state a dead daemon was running, so a restarted `capgpud` resumes
//! instead of re-identifying from scratch.
//!
//! The journal carries everything needed for *bit-exact* recovery:
//! per-device base gains (`model_gain`), the tracker's scale and offset
//! at each refit push (`refit`), supervisor tier transitions
//! (`tier_change`), device quarantine edges (`quarantine`), setpoint
//! changes (`setpoint_change`), and per-period commanded targets
//! (`period`, as a comma-joined shortest-roundtrip float string).
//! Floats round-trip exactly through the JSONL rendering (see
//! [`crate::json`]), so the recovered model equals the pushed one
//! bit-for-bit.

use crate::reader::Record;

/// Control state re-derived from a journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayState {
    /// Last supervisor tier observed (0 = Primary, 1 = SafeFallback,
    /// 2 = Park), or `None` when no tier event was journaled.
    pub tier: Option<u64>,
    /// Per-device base gains (W/MHz) from identification, device-index
    /// ordered.
    pub base_gains_w_per_mhz: Vec<f64>,
    /// Model idle offset at identification (W).
    pub base_offset_w: Option<f64>,
    /// Latest pushed tracker scale (multiplies the base gains).
    pub scale: Option<f64>,
    /// Latest pushed tracker offset (W); replaces the base offset once
    /// a refit lands.
    pub offset_w: Option<f64>,
    /// Devices currently quarantined (edge-folded from `quarantine`
    /// events).
    pub quarantined: Vec<usize>,
    /// Last commanded per-device frequency targets (MHz).
    pub last_targets_mhz: Vec<f64>,
    /// Last *operator* setpoint change (W), from `setpoint_change`
    /// events; `None` means the config-file setpoint was never changed
    /// at runtime, so the restarted daemon's own config is authoritative.
    pub cap_w: Option<f64>,
    /// Last *effective* (possibly PSU-clamped) setpoint a period acted
    /// on (W) — diagnostics, not restored.
    pub last_effective_setpoint_w: Option<f64>,
    /// Last period index seen.
    pub last_period: Option<u64>,
    /// Record clock of the last record seen.
    pub last_t_s: Option<f64>,
    /// Counts of each kind replayed, for diagnostics: `(kind, n)`.
    pub kind_counts: Vec<(String, u64)>,
}

impl ReplayState {
    /// Folds `records` (journal order) into a recovered state.
    pub fn replay<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let mut s = ReplayState::default();
        for r in records {
            s.apply(r);
        }
        s
    }

    /// Applies one record.
    pub fn apply(&mut self, r: &Record) {
        self.last_period = Some(r.period);
        self.last_t_s = Some(r.t_s);
        match self.kind_counts.iter_mut().find(|(k, _)| *k == r.kind) {
            Some((_, n)) => *n += 1,
            None => self.kind_counts.push((r.kind.clone(), 1)),
        }
        match r.kind.as_str() {
            "model_gain" => {
                if let (Some(device), Some(gain)) = (r.u64("device"), r.f64("w_per_mhz")) {
                    let device = device as usize;
                    if self.base_gains_w_per_mhz.len() <= device {
                        self.base_gains_w_per_mhz.resize(device + 1, 0.0);
                    }
                    self.base_gains_w_per_mhz[device] = gain;
                }
            }
            "identified" => {
                if let Some(off) = r.f64("offset_w") {
                    self.base_offset_w = Some(off);
                }
            }
            "refit" => {
                if let Some(scale) = r.f64("scale") {
                    self.scale = Some(scale);
                }
                if let Some(off) = r.f64("offset_w") {
                    self.offset_w = Some(off);
                }
            }
            "tier_change" => {
                if let Some(to) = r.u64("to") {
                    self.tier = Some(to);
                }
            }
            "quarantine" => {
                if let (Some(device), Some(on)) = (r.u64("device"), r.bool("on")) {
                    let device = device as usize;
                    if on {
                        if !self.quarantined.contains(&device) {
                            self.quarantined.push(device);
                            self.quarantined.sort_unstable();
                        }
                    } else {
                        self.quarantined.retain(|&d| d != device);
                    }
                }
            }
            "setpoint_change" => {
                if let Some(cap) = r.f64("to_w") {
                    self.cap_w = Some(cap);
                }
            }
            "period" => {
                if let Some(targets) = r.str("targets") {
                    if let Some(parsed) = parse_targets(targets) {
                        self.last_targets_mhz = parsed;
                    }
                }
                if let Some(eff) = r.f64("setpoint") {
                    self.last_effective_setpoint_w = Some(eff);
                }
            }
            _ => {}
        }
    }

    /// The recovered power model as `(per-device gains, offset)`:
    /// base gains scaled by the latest refit scale, with the latest
    /// refit offset (falling back to the identification offset). `None`
    /// until identification was replayed.
    pub fn model(&self) -> Option<(Vec<f64>, f64)> {
        if self.base_gains_w_per_mhz.is_empty() {
            return None;
        }
        let offset = self.offset_w.or(self.base_offset_w)?;
        let scale = self.scale.unwrap_or(1.0);
        let gains = self
            .base_gains_w_per_mhz
            .iter()
            .map(|g| g * scale)
            .collect();
        Some((gains, offset))
    }

    /// Supervisor tier to resume in, defaulting to Primary (0) when the
    /// journal never recorded a transition.
    pub fn tier_or_primary(&self) -> u64 {
        self.tier.unwrap_or(0)
    }
}

/// Parses a comma-joined float list (the `targets` period field).
/// Returns `None` on any unparseable element, leaving prior state
/// untouched — a half-applied target vector is worse than a stale one.
pub fn parse_targets(s: &str) -> Option<Vec<f64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|t| t.parse::<f64>().ok()).collect()
}

/// Renders targets in the journal's comma-joined format (shortest
/// round-trip per element, matching `Event::to_json` float rendering).
pub fn format_targets(targets: &[f64]) -> String {
    let mut out = String::new();
    for (i, t) in targets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if t.fract() == 0.0 && t.abs() < 1e15 {
            out.push_str(&format!("{}", *t as i64));
        } else {
            out.push_str(&format!("{t}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_jsonl;

    fn replay_text(text: &str) -> ReplayState {
        let (records, _) = parse_jsonl(text, true).unwrap();
        ReplayState::replay(&records)
    }

    #[test]
    fn folds_model_tier_and_quarantine() {
        let s = replay_text(concat!(
            "{\"v\":1,\"period\":0,\"t_s\":0,\"kind\":\"model_gain\",\"device\":0,\"w_per_mhz\":0.35}\n",
            "{\"v\":1,\"period\":0,\"t_s\":0,\"kind\":\"model_gain\",\"device\":1,\"w_per_mhz\":0.4}\n",
            "{\"v\":1,\"period\":0,\"t_s\":0,\"kind\":\"identified\",\"offset_w\":210}\n",
            "{\"v\":1,\"period\":3,\"t_s\":12,\"kind\":\"refit\",\"scale\":1.0625,\"offset_w\":214.5}\n",
            "{\"v\":1,\"period\":4,\"t_s\":16,\"kind\":\"tier_change\",\"from\":0,\"to\":1,\"reason\":\"stale_meter\"}\n",
            "{\"v\":1,\"period\":5,\"t_s\":20,\"kind\":\"quarantine\",\"device\":1,\"on\":true}\n",
            "{\"v\":1,\"period\":6,\"t_s\":24,\"kind\":\"tier_change\",\"from\":1,\"to\":0,\"reason\":\"recovered\"}\n",
            "{\"v\":1,\"period\":7,\"t_s\":28,\"kind\":\"setpoint_change\",\"from_w\":900,\"to_w\":850}\n",
            "{\"v\":1,\"period\":8,\"t_s\":32,\"kind\":\"period\",\"targets\":\"1350,1425.5\"}\n",
        ));
        assert_eq!(s.tier_or_primary(), 0);
        assert_eq!(s.quarantined, vec![1]);
        assert_eq!(s.cap_w, Some(850.0));
        assert_eq!(s.last_targets_mhz, vec![1350.0, 1425.5]);
        assert_eq!(s.last_period, Some(8));
        let (gains, offset) = s.model().unwrap();
        assert_eq!(offset, 214.5);
        assert_eq!(gains, vec![0.35 * 1.0625, 0.4 * 1.0625]);
    }

    #[test]
    fn quarantine_edges_fold() {
        let s = replay_text(concat!(
            "{\"v\":1,\"period\":1,\"t_s\":4,\"kind\":\"quarantine\",\"device\":2,\"on\":true}\n",
            "{\"v\":1,\"period\":2,\"t_s\":8,\"kind\":\"quarantine\",\"device\":0,\"on\":true}\n",
            "{\"v\":1,\"period\":3,\"t_s\":12,\"kind\":\"quarantine\",\"device\":2,\"on\":false}\n",
        ));
        assert_eq!(s.quarantined, vec![0]);
    }

    #[test]
    fn model_is_none_before_identification() {
        let s = replay_text("{\"v\":1,\"period\":0,\"t_s\":0,\"kind\":\"period\"}\n");
        assert_eq!(s.model(), None);
        assert_eq!(s.tier_or_primary(), 0);
    }

    #[test]
    fn targets_round_trip_exactly() {
        let targets = [1350.0, 1_425.517_230_981_2, 990.25];
        let text = format_targets(&targets);
        assert_eq!(parse_targets(&text).unwrap(), targets.to_vec());
        assert_eq!(parse_targets(""), Some(Vec::new()));
        assert_eq!(parse_targets("1,x"), None);
        assert_eq!(format_targets(&[]), "");
    }
}
