//! Property tests for the journal reader and crash-recovery replay:
//! truncating a journal at *any* byte offset — the torn-write model of
//! a crash mid-flush — must still parse every complete record cleanly
//! and replay a state identical to folding those records directly.

use capgpu_obs::reader::parse_jsonl;
use capgpu_obs::replay::{format_targets, parse_targets, ReplayState};
use proptest::prelude::*;

/// Renders a deterministic journal with `n` records drawn from the
/// daemon's event vocabulary, parameterized by small integers so the
/// proptest shrinker has something meaningful to shrink.
fn journal_text(n: usize, salt: u64) -> String {
    let mut out = String::new();
    for i in 0..n as u64 {
        let t_s = 4 * i;
        let line = match (i + salt) % 7 {
            0 => format!(
                "{{\"v\":1,\"period\":{i},\"t_s\":{t_s},\"kind\":\"model_gain\",\"device\":{},\"w_per_mhz\":0.{}5}}",
                (i + salt) % 4,
                (i % 9) + 1
            ),
            1 => format!(
                "{{\"v\":1,\"period\":{i},\"t_s\":{t_s},\"kind\":\"identified\",\"offset_w\":{}}}",
                200 + (salt % 50)
            ),
            2 => format!(
                "{{\"v\":1,\"period\":{i},\"t_s\":{t_s},\"kind\":\"refit\",\"scale\":1.0{},\"offset_w\":21{}.5}}",
                i % 10,
                i % 10
            ),
            3 => format!(
                "{{\"v\":1,\"period\":{i},\"t_s\":{t_s},\"kind\":\"tier_change\",\"from\":{},\"to\":{},\"reason\":\"r{}\"}}",
                i % 3,
                (i + 1) % 3,
                i % 5
            ),
            4 => format!(
                "{{\"v\":1,\"period\":{i},\"t_s\":{t_s},\"kind\":\"quarantine\",\"device\":{},\"on\":{}}}",
                (i + salt) % 4,
                i % 2 == 0
            ),
            5 => format!(
                "{{\"v\":1,\"period\":{i},\"t_s\":{t_s},\"kind\":\"setpoint_change\",\"from_w\":900,\"to_w\":{}}}",
                800 + (i % 7) * 25
            ),
            _ => format!(
                "{{\"v\":1,\"period\":{i},\"t_s\":{t_s},\"kind\":\"period\",\"watts\":8{}0.25,\"setpoint\":900,\"targets\":\"13{}0,1{}25.5\"}}",
                i % 10,
                i % 9,
                4 + (i as usize % 5)
            ),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the journal at any byte offset still yields a clean
    /// parse of every record that was completely written, plus at most
    /// one torn tail — never an error, never a phantom record.
    #[test]
    fn truncation_at_any_offset_parses_all_complete_records(
        n in 1usize..30,
        salt in 0u64..1000,
        frac in 0.0f64..1.0,
    ) {
        let full = journal_text(n, salt);
        let cut = ((full.len() as f64) * frac) as usize;
        // Truncation is byte-level; keep the cut on a UTF-8 boundary
        // (journal bytes are ASCII here, but don't rely on it).
        let mut cut = cut.min(full.len());
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let truncated = &full[..cut];

        let (all, none_torn) = parse_jsonl(&full, true).unwrap();
        prop_assert_eq!(all.len(), n);
        prop_assert!(none_torn.is_none());

        let (records, torn) = parse_jsonl(truncated, true).unwrap();
        // Complete records are exactly the whole lines before the cut.
        let complete = truncated.bytes().filter(|&b| b == b'\n').count();
        prop_assert_eq!(records.len(), complete);
        prop_assert_eq!(&all[..complete], &records[..]);
        // A torn tail exists iff the cut landed mid-line.
        let mid_line = cut > 0 && !truncated.ends_with('\n');
        prop_assert_eq!(torn.is_some(), mid_line);

        // Replay over the truncated journal equals replay over the
        // prefix of fully written records — the crash loses at most the
        // record being flushed, never corrupts earlier state.
        let via_truncated = ReplayState::replay(&records);
        let via_prefix = ReplayState::replay(&all[..complete]);
        prop_assert_eq!(via_truncated, via_prefix);
    }

    /// Target vectors survive the comma-joined string encoding exactly,
    /// bit for bit — what lets recovery resume the dead daemon's last
    /// commanded frequencies.
    #[test]
    fn targets_round_trip_bit_exactly(
        targets in prop::collection::vec(0.0f64..3000.0, 0..9),
    ) {
        let text = format_targets(&targets);
        let back = parse_targets(&text).unwrap();
        prop_assert_eq!(back.len(), targets.len());
        for (a, b) in back.iter().zip(targets.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
