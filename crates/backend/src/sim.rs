//! [`SimBackend`] — the simulated testbed behind the [`PowerBackend`]
//! trait.
//!
//! Wraps one [`capgpu_sim::Server`] and routes the trait's sense and
//! actuate calls straight to it, with zero behavioral difference from
//! driving the server directly: the conformance suite drives a raw
//! server and a `SimBackend` built from the same seed through the same
//! command sequence and asserts bit-identical meter samples and clock
//! states. The experiment runner holds its plant through this type, so
//! every committed golden doubles as a regression pin on the trait
//! seam.
//!
//! The one sim-specific extension is [`SimBackend::stage_utilizations`]:
//! the simulator needs each device's utilization for the second about
//! to elapse (real hardware measures its own), so the plant driver
//! stages them before calling [`PowerBackend::advance`].

use capgpu_sim::Server;

use crate::{BackendDevice, BackendError, BackendResult, Capabilities, PowerBackend};

/// The simulated-testbed backend.
///
/// `Clone` snapshots the full plant state (the wrapped server plus the
/// staged utilizations), preserving the runner's clone-replay contract.
#[derive(Debug, Clone)]
pub struct SimBackend {
    server: Server,
    devices: Vec<BackendDevice>,
    /// Per-device utilizations staged for the next elapsed second; the
    /// simulator's stand-in for the load real hardware would measure.
    utils: Vec<f64>,
}

impl SimBackend {
    /// Wraps an assembled server.
    pub fn new(server: Server) -> Self {
        let devices = server
            .devices()
            .iter()
            .enumerate()
            .map(|(index, spec)| BackendDevice {
                index,
                kind: spec.kind,
                name: spec.name.clone(),
                f_min_mhz: spec.freq_table.min(),
                f_max_mhz: spec.freq_table.max(),
                levels_mhz: spec.freq_table.levels().to_vec(),
                power_limit_w: None,
            })
            .collect();
        let utils = vec![0.0; server.num_devices()];
        SimBackend {
            server,
            devices,
            utils,
        }
    }

    /// The wrapped server — plant-side access (workload coupling, fault
    /// injection, thermal state) that is *not* part of the sense/actuate
    /// seam.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Mutable plant-side access (fault injection hooks, scheduled
    /// gain drift, memory-throttle engagement).
    pub fn server_mut(&mut self) -> &mut Server {
        &mut self.server
    }

    /// Stages per-device utilizations for the next elapsed second.
    ///
    /// # Errors
    /// [`BackendError::WrongArity`] on length mismatch.
    pub fn stage_utilizations(&mut self, utils: &[f64]) -> BackendResult<()> {
        if utils.len() != self.utils.len() {
            return Err(BackendError::WrongArity {
                expected: self.utils.len(),
                got: utils.len(),
            });
        }
        self.utils.copy_from_slice(utils);
        Ok(())
    }

    /// The most recently staged utilizations.
    pub fn staged_utilizations(&self) -> &[f64] {
        &self.utils
    }
}

impl PowerBackend for SimBackend {
    fn name(&self) -> &str {
        "sim"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            set_frequency: true,
            set_power_limit: false,
            server_power: true,
            per_device_power: true,
            throughput: false,
            wall_clock: false,
        }
    }

    fn devices(&self) -> &[BackendDevice] {
        &self.devices
    }

    fn set_frequencies(&mut self, targets_mhz: &[f64]) -> BackendResult<()> {
        // Arity first, so a bad call never partially actuates; then
        // per-device sets, which (unlike `Server::set_all_frequencies`)
        // skip collecting the applied values — the control loop reads
        // them back through `effective_frequencies_into`, and this path
        // runs every simulated second.
        if targets_mhz.len() != self.devices.len() {
            return Err(BackendError::WrongArity {
                expected: self.devices.len(),
                got: targets_mhz.len(),
            });
        }
        for (i, &t) in targets_mhz.iter().enumerate() {
            self.server.set_target_frequency(i, t)?;
        }
        Ok(())
    }

    fn effective_frequencies_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        self.server.effective_frequencies_into(out);
        Ok(())
    }

    fn advance(&mut self, dt_s: f64) -> BackendResult<Option<f64>> {
        // The simulator's plant ticks in whole seconds; the control
        // stack only ever asks for one at a time.
        if dt_s != 1.0 {
            return Err(BackendError::Unsupported(
                "sim advance requires dt_s == 1.0",
            ));
        }
        Ok(self.server.tick_second(&self.utils)?)
    }

    fn average_power(&self, last_n: usize) -> Option<f64> {
        self.server.meter().average_last(last_n).ok()
    }

    fn seconds_since_sample(&self) -> Option<u64> {
        self.server.meter().seconds_since_last_sample()
    }

    fn per_device_power_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        // Readings reflect the most recently elapsed second: the staged
        // utilizations are exactly the load the last tick dissipated.
        Ok(self.server.per_device_power_into(&self.utils, out)?)
    }

    fn is_ejected(&self, device: usize) -> bool {
        self.server.is_ejected(device)
    }

    fn psu_limit(&self) -> Option<f64> {
        self.server.psu_limit()
    }

    fn meter_noise_std(&self) -> f64 {
        self.server.meter().noise_std()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capgpu_sim::{presets, ServerBuilder};

    fn backend(seed: u64) -> SimBackend {
        SimBackend::new(
            ServerBuilder::new(seed)
                .add_device(presets::xeon_gold_5215())
                .add_device(presets::tesla_v100())
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn enumeration_mirrors_server() {
        let b = backend(1);
        assert_eq!(b.num_devices(), 2);
        assert_eq!(b.devices()[1].f_min_mhz, 435.0);
        assert_eq!(b.devices()[1].f_max_mhz, 1350.0);
        assert!(!b.devices()[1].levels_mhz.is_empty());
        assert_eq!(b.name(), "sim");
        assert!(b.capabilities().server_power);
        assert!(!b.capabilities().wall_clock);
        assert_eq!(b.wall_clock_unix_ms(), None);
    }

    #[test]
    fn stage_then_advance_matches_direct_tick() {
        let mut b = backend(9);
        let mut direct = backend(9).server.clone();
        b.stage_utilizations(&[0.9, 0.7]).unwrap();
        for _ in 0..8 {
            let via_trait = b.advance(1.0).unwrap();
            let via_server = direct.tick_second(&[0.9, 0.7]).unwrap();
            assert_eq!(via_trait, via_server);
        }
        assert_eq!(b.average_power(4), direct.meter().average_last(4).ok());
    }

    #[test]
    fn arity_checked_before_actuation() {
        let mut b = backend(1);
        b.set_frequencies(&[2000.0, 900.0]).unwrap();
        assert!(matches!(
            b.set_frequencies(&[1.0]),
            Err(BackendError::WrongArity {
                expected: 2,
                got: 1
            })
        ));
        let mut eff = Vec::new();
        b.effective_frequencies_into(&mut eff).unwrap();
        assert_eq!(eff, vec![2000.0, 900.0]);
        assert!(b.stage_utilizations(&[1.0]).is_err());
        assert!(matches!(b.advance(0.5), Err(BackendError::Unsupported(_))));
    }
}
