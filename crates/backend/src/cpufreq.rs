//! [`CpufreqBackend`] — CPU packages through the Linux `cpufreq` sysfs
//! interface, with power sensed from RAPL energy counters.
//!
//! Actuation follows the paper's CPU capping mechanism: lowering a
//! package's ceiling by writing `scaling_max_freq` (kHz) per cpufreq
//! policy, exactly what `cpupower frequency-set --max` does. Sensing
//! derives watts from the monotonic `energy_uj` counters under
//! `powercap/intel-rapl`, differencing successive reads and handling
//! counter wrap via `max_energy_range_uj`.
//!
//! The whole backend is rooted at a configurable path (default `/sys`),
//! so the same code runs against real sysfs and against a fixture tree
//! in tests — no root privileges or Intel hardware needed to exercise
//! the parsing, quantization, and wrap logic.

use std::fs;
use std::path::{Path, PathBuf};

use capgpu_sim::DeviceKind;

use crate::{BackendDevice, BackendError, BackendResult, Capabilities, PowerBackend};

/// One cpufreq policy directory.
#[derive(Debug, Clone)]
struct Policy {
    dir: PathBuf,
    levels_khz: Vec<u64>,
}

/// One RAPL package domain.
#[derive(Debug, Clone)]
struct RaplDomain {
    energy_path: PathBuf,
    max_range_uj: u64,
    last_uj: Option<u64>,
}

/// CPU packages behind the [`PowerBackend`] surface.
#[derive(Debug, Clone)]
pub struct CpufreqBackend {
    root: PathBuf,
    devices: Vec<BackendDevice>,
    policies: Vec<Policy>,
    rapl: Vec<RaplDomain>,
    /// Sleep inside `advance` (live mode). Fixture tests disable it.
    sleep: bool,
    history: Vec<f64>,
    last_per_domain_w: Vec<f64>,
    elapsed_s: u64,
    last_sample_at_s: Option<u64>,
}

impl CpufreqBackend {
    /// Enumerates cpufreq policies and RAPL domains under `root`
    /// (pass `"/sys"` for the live system).
    ///
    /// # Errors
    /// [`BackendError::Unavailable`] when no cpufreq policies exist
    /// under the root; [`BackendError::Io`] for unreadable attribute
    /// files.
    pub fn probe(root: impl Into<PathBuf>) -> BackendResult<Self> {
        let root = root.into();
        let policies = enumerate_policies(&root)?;
        if policies.is_empty() {
            return Err(BackendError::Unavailable(format!(
                "no cpufreq policies under {}",
                root.display()
            )));
        }
        let rapl = enumerate_rapl(&root)?;
        let mut devices = Vec::with_capacity(policies.len());
        for (index, p) in policies.iter().enumerate() {
            let min_khz: u64 = read_attr(&p.dir.join("cpuinfo_min_freq"))?;
            let max_khz: u64 = read_attr(&p.dir.join("cpuinfo_max_freq"))?;
            devices.push(BackendDevice {
                index,
                kind: DeviceKind::Cpu,
                name: p
                    .dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| format!("policy{index}")),
                f_min_mhz: min_khz as f64 / 1000.0,
                f_max_mhz: max_khz as f64 / 1000.0,
                levels_mhz: p.levels_khz.iter().map(|&k| k as f64 / 1000.0).collect(),
                power_limit_w: None,
            });
        }
        let n_rapl = rapl.len();
        Ok(CpufreqBackend {
            root,
            devices,
            policies,
            rapl,
            sleep: true,
            history: Vec::new(),
            last_per_domain_w: vec![0.0; n_rapl],
            elapsed_s: 0,
            last_sample_at_s: None,
        })
    }

    /// Disables the wall-clock sleep inside [`PowerBackend::advance`] —
    /// for fixture tests, where the "plant" is a directory tree.
    pub fn disable_sleep(&mut self) {
        self.sleep = false;
    }

    /// The sysfs root this backend reads.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

fn enumerate_policies(root: &Path) -> BackendResult<Vec<Policy>> {
    let base = root.join("devices/system/cpu/cpufreq");
    let mut numbered: Vec<(u64, PathBuf)> = Vec::new();
    let entries = match fs::read_dir(&base) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(num) = name.strip_prefix("policy").and_then(|s| s.parse().ok()) {
            numbered.push((num, entry.path()));
        }
    }
    numbered.sort_by_key(|(num, _)| *num);
    let mut out = Vec::with_capacity(numbered.len());
    for (_, dir) in numbered {
        // Optional attribute: absent with the intel_pstate driver.
        let levels_khz = fs::read_to_string(dir.join("scaling_available_frequencies"))
            .map(|s| {
                let mut v: Vec<u64> = s
                    .split_whitespace()
                    .filter_map(|t| t.parse().ok())
                    .collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default();
        out.push(Policy { dir, levels_khz });
    }
    Ok(out)
}

fn enumerate_rapl(root: &Path) -> BackendResult<Vec<RaplDomain>> {
    let base = root.join("class/powercap/intel-rapl");
    let mut numbered: Vec<(u64, PathBuf)> = Vec::new();
    let entries = match fs::read_dir(&base) {
        Ok(e) => e,
        Err(_) => return Ok(Vec::new()),
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        // Top-level package domains only (`intel-rapl:0`), not
        // subdomains (`intel-rapl:0:0` = core/dram).
        if let Some(rest) = name.strip_prefix("intel-rapl:") {
            if let Ok(num) = rest.parse::<u64>() {
                numbered.push((num, entry.path()));
            }
        }
    }
    numbered.sort_by_key(|(num, _)| *num);
    let mut out = Vec::with_capacity(numbered.len());
    for (_, dir) in numbered {
        let max_range_uj = read_attr(&dir.join("max_energy_range_uj")).unwrap_or(u64::MAX);
        out.push(RaplDomain {
            energy_path: dir.join("energy_uj"),
            max_range_uj,
            last_uj: None,
        });
    }
    Ok(out)
}

fn read_attr<T: std::str::FromStr>(path: &Path) -> BackendResult<T> {
    let raw = fs::read_to_string(path)
        .map_err(|e| BackendError::Io(format!("read {}: {e}", path.display())))?;
    raw.trim()
        .parse()
        .map_err(|_| BackendError::Io(format!("parse {}: `{}`", path.display(), raw.trim())))
}

fn write_attr(path: &Path, value: u64) -> BackendResult<()> {
    fs::write(path, format!("{value}\n"))
        .map_err(|e| BackendError::Io(format!("write {}: {e}", path.display())))
}

impl PowerBackend for CpufreqBackend {
    fn name(&self) -> &str {
        "cpufreq"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            set_frequency: true,
            set_power_limit: false,
            server_power: !self.rapl.is_empty(),
            // Per-device attribution needs one package domain per
            // policy; a mismatch (e.g. SMT split across policies) falls
            // back to server-level sensing only.
            per_device_power: self.rapl.len() == self.policies.len(),
            throughput: false,
            wall_clock: true,
        }
    }

    fn devices(&self) -> &[BackendDevice] {
        &self.devices
    }

    fn set_frequencies(&mut self, targets_mhz: &[f64]) -> BackendResult<()> {
        if targets_mhz.len() != self.policies.len() {
            return Err(BackendError::WrongArity {
                expected: self.policies.len(),
                got: targets_mhz.len(),
            });
        }
        for (i, &t) in targets_mhz.iter().enumerate() {
            let khz = (t * 1000.0).round() as u64;
            // Snap to the driver's published grid when it has one;
            // otherwise the kernel clamps to [cpuinfo_min, cpuinfo_max].
            let snapped = self.policies[i]
                .levels_khz
                .iter()
                .copied()
                .min_by_key(|&l| l.abs_diff(khz))
                .unwrap_or(khz);
            write_attr(&self.policies[i].dir.join("scaling_max_freq"), snapped)?;
        }
        Ok(())
    }

    fn effective_frequencies_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        out.clear();
        for p in &self.policies {
            let khz: u64 = read_attr(&p.dir.join("scaling_cur_freq"))?;
            out.push(khz as f64 / 1000.0);
        }
        Ok(())
    }

    fn advance(&mut self, dt_s: f64) -> BackendResult<Option<f64>> {
        if !(dt_s > 0.0 && dt_s.is_finite()) {
            return Err(BackendError::Unsupported("advance requires dt_s > 0"));
        }
        if self.sleep {
            std::thread::sleep(std::time::Duration::from_secs_f64(dt_s));
        }
        self.elapsed_s += dt_s.round().max(1.0) as u64;
        if self.rapl.is_empty() {
            return Ok(None);
        }
        let mut total_w = 0.0;
        let mut fresh = true;
        for (i, dom) in self.rapl.iter_mut().enumerate() {
            let now_uj: u64 = read_attr(&dom.energy_path)?;
            match dom.last_uj.replace(now_uj) {
                Some(prev) => {
                    // Monotonic counter with wrap at max_energy_range_uj.
                    let delta_uj = if now_uj >= prev {
                        now_uj - prev
                    } else {
                        now_uj + (dom.max_range_uj - prev)
                    };
                    let watts = delta_uj as f64 / 1e6 / dt_s;
                    self.last_per_domain_w[i] = watts;
                    total_w += watts;
                }
                // First read only establishes the baseline.
                None => fresh = false,
            }
        }
        if !fresh {
            return Ok(None);
        }
        self.history.push(total_w);
        if self.history.len() > 1024 {
            self.history.remove(0);
        }
        self.last_sample_at_s = Some(self.elapsed_s);
        Ok(Some(total_w))
    }

    fn average_power(&self, last_n: usize) -> Option<f64> {
        if last_n == 0 || self.history.is_empty() {
            return None;
        }
        let n = last_n.min(self.history.len());
        Some(self.history.iter().rev().take(n).sum::<f64>() / n as f64)
    }

    fn seconds_since_sample(&self) -> Option<u64> {
        self.last_sample_at_s.map(|at| self.elapsed_s - at)
    }

    fn per_device_power_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        if self.rapl.len() != self.policies.len() {
            return Err(BackendError::Unsupported(
                "per-device power (RAPL/policy mismatch)",
            ));
        }
        out.clear();
        out.extend_from_slice(&self.last_per_domain_w);
        Ok(())
    }

    fn wall_clock_unix_ms(&self) -> Option<u64> {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .ok()
            .map(|d| d.as_millis() as u64)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static FIXTURE_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Builds a two-package fixture tree and returns its root.
    fn fixture() -> PathBuf {
        let seq = FIXTURE_SEQ.fetch_add(1, Ordering::SeqCst);
        let root = std::env::temp_dir().join(format!(
            "capgpu-cpufreq-fixture-{}-{seq}",
            std::process::id()
        ));
        for (i, cur) in [(0u64, 2_400_000u64), (1, 2_200_000)] {
            let p = root.join(format!("devices/system/cpu/cpufreq/policy{i}"));
            fs::create_dir_all(&p).unwrap();
            fs::write(p.join("cpuinfo_min_freq"), "1000000\n").unwrap();
            fs::write(p.join("cpuinfo_max_freq"), "2400000\n").unwrap();
            fs::write(p.join("scaling_max_freq"), "2400000\n").unwrap();
            fs::write(p.join("scaling_cur_freq"), format!("{cur}\n")).unwrap();
            fs::write(
                p.join("scaling_available_frequencies"),
                "1000000 1200000 1400000 1600000 1800000 2000000 2200000 2400000\n",
            )
            .unwrap();
            let r = root.join(format!("class/powercap/intel-rapl/intel-rapl:{i}"));
            fs::create_dir_all(&r).unwrap();
            fs::write(r.join("energy_uj"), "1000000000\n").unwrap();
            fs::write(r.join("max_energy_range_uj"), "262143328850\n").unwrap();
        }
        root
    }

    fn set_energy(root: &Path, domain: usize, uj: u64) {
        fs::write(
            root.join(format!(
                "class/powercap/intel-rapl/intel-rapl:{domain}/energy_uj"
            )),
            format!("{uj}\n"),
        )
        .unwrap();
    }

    #[test]
    fn enumerates_policies_and_quantizes_writes() {
        let root = fixture();
        let mut b = CpufreqBackend::probe(&root).unwrap();
        b.disable_sleep();
        assert_eq!(b.num_devices(), 2);
        assert_eq!(b.devices()[0].kind, DeviceKind::Cpu);
        assert_eq!(b.devices()[0].f_max_mhz, 2400.0);
        assert_eq!(b.devices()[0].levels_mhz.len(), 8);
        assert!(b.capabilities().per_device_power);
        // 1,530 MHz snaps to the 1,600,000 kHz grid point.
        b.set_frequencies(&[1530.0, 1000.0]).unwrap();
        let written =
            fs::read_to_string(root.join("devices/system/cpu/cpufreq/policy0/scaling_max_freq"))
                .unwrap();
        assert_eq!(written.trim(), "1600000");
        let mut eff = Vec::new();
        b.effective_frequencies_into(&mut eff).unwrap();
        assert_eq!(eff, vec![2400.0, 2200.0]);
        assert!(matches!(
            b.set_frequencies(&[1.0]),
            Err(BackendError::WrongArity {
                expected: 2,
                got: 1
            })
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rapl_differencing_and_wrap() {
        let root = fixture();
        let mut b = CpufreqBackend::probe(&root).unwrap();
        b.disable_sleep();
        // First advance establishes baselines: no sample.
        assert_eq!(b.advance(1.0).unwrap(), None);
        // +45 J and +30 J over one second = 75 W total.
        set_energy(&root, 0, 1_045_000_000);
        set_energy(&root, 1, 1_030_000_000);
        assert_eq!(b.advance(1.0).unwrap(), Some(75.0));
        let mut per = Vec::new();
        b.per_device_power_into(&mut per).unwrap();
        assert_eq!(per, vec![45.0, 30.0]);
        assert_eq!(b.seconds_since_sample(), Some(0));
        // Counter wrap: domain 0 rolls past max_energy_range_uj.
        set_energy(&root, 0, 5_000_000);
        set_energy(&root, 1, 1_050_000_000);
        let wrapped = b.advance(1.0).unwrap().unwrap();
        let expected0 = (5_000_000u64 + (262_143_328_850 - 1_045_000_000)) as f64 / 1e6;
        assert!((wrapped - (expected0 + 20.0)).abs() < 1e-9);
        assert_eq!(b.average_power(2).unwrap(), (75.0 + wrapped) / 2.0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_root_is_unavailable() {
        let err = CpufreqBackend::probe("/nonexistent-capgpu-root").unwrap_err();
        assert!(matches!(err, BackendError::Unavailable(_)));
    }
}
