//! [`MockBackend`] — a deterministic, scriptable [`PowerBackend`] for
//! tests.
//!
//! Three scripting surfaces:
//!
//! - **Readings**: by default power follows an exact linear law
//!   `platform + Σ (idle_i + gain_i · f_i)` — the model identification
//!   fits perfectly, which makes closed-loop daemon tests sharp. Tests
//!   can also queue explicit samples with
//!   [`MockBackend::push_power_reading`] (including `None` dropouts).
//! - **Errors / latency**: [`MockBackend::inject_error`] queues a
//!   one-shot failure for a specific operation;
//!   [`MockBackend::set_latency_ns`] attributes a synthetic per-call
//!   latency, accumulated in [`MockBackend::injected_latency_ns`] so
//!   tests can assert on it without wall-clock sleeps.
//! - **Faults**: [`MockBackend::apply_fault`] /
//!   [`MockBackend::clear_fault`] replay the [`capgpu_faults::FaultKind`]
//!   taxonomy — meter dropout/stuck/bias/delay, stuck or rejected
//!   clocks, coarse quantization, device ejection, PSU derate — with
//!   the same observable semantics the simulated testbed gives them,
//!   but with no simulator behind it.

use std::collections::VecDeque;

use capgpu_faults::FaultKind;
use capgpu_sim::DeviceKind;

use crate::{BackendDevice, BackendError, BackendResult, Capabilities, PowerBackend};

/// One mocked device: identity, clock range, and a linear power law.
#[derive(Debug, Clone)]
pub struct MockDevice {
    /// CPU package or GPU board.
    pub kind: DeviceKind,
    /// Human-readable name.
    pub name: String,
    /// Lowest settable clock (MHz).
    pub f_min_mhz: f64,
    /// Highest settable clock (MHz).
    pub f_max_mhz: f64,
    /// Clock grid step (MHz); commands quantize to multiples.
    pub step_mhz: f64,
    /// Idle draw (W).
    pub idle_watts: f64,
    /// Linear power slope (W/MHz).
    pub gain_w_per_mhz: f64,
}

impl MockDevice {
    /// A V100-flavoured GPU: 435–1350 MHz on a 15 MHz grid.
    pub fn gpu(name: &str) -> Self {
        MockDevice {
            kind: DeviceKind::Gpu,
            name: name.to_string(),
            f_min_mhz: 435.0,
            f_max_mhz: 1350.0,
            step_mhz: 15.0,
            idle_watts: 40.0,
            gain_w_per_mhz: 0.16,
        }
    }

    /// A Xeon-flavoured CPU package: 1000–2400 MHz on a 100 MHz grid.
    pub fn cpu(name: &str) -> Self {
        MockDevice {
            kind: DeviceKind::Cpu,
            name: name.to_string(),
            f_min_mhz: 1000.0,
            f_max_mhz: 2400.0,
            step_mhz: 100.0,
            idle_watts: 35.0,
            gain_w_per_mhz: 0.05,
        }
    }
}

/// Operations a scripted error or latency can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MockOp {
    /// [`PowerBackend::set_frequencies`]
    SetFrequencies,
    /// [`PowerBackend::effective_frequencies_into`]
    EffectiveFrequencies,
    /// [`PowerBackend::advance`]
    Advance,
    /// [`PowerBackend::per_device_power_into`]
    PerDevicePower,
    /// [`PowerBackend::set_power_limit`]
    SetPowerLimit,
    /// [`PowerBackend::throughput_into`]
    Throughput,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MeterMode {
    Healthy,
    Dropout,
    Stuck,
    Bias { watts: f64, drift_w_per_s: f64 },
}

/// The scriptable mock backend. Fully deterministic: every reading is
/// a pure function of the script and the command history.
#[derive(Debug, Clone)]
pub struct MockBackend {
    devices: Vec<BackendDevice>,
    spec: Vec<MockDevice>,
    applied_mhz: Vec<f64>,
    clock_stuck: Vec<bool>,
    coarse_step: Vec<Option<f64>>,
    ejected: Vec<bool>,
    power_limits_w: Vec<Option<f64>>,
    platform_watts: f64,
    scripted_power: VecDeque<Option<f64>>,
    errors: VecDeque<(MockOp, String)>,
    latency_ns: Vec<(MockOp, u64)>,
    injected_latency_ns: u64,
    meter: MeterMode,
    meter_fault_age_s: u64,
    meter_delay: VecDeque<f64>,
    meter_delay_s: usize,
    history: VecDeque<f64>,
    last_good_sample: Option<f64>,
    elapsed_s: u64,
    last_sample_at_s: Option<u64>,
    throughput: Vec<f64>,
    psu_limit: Option<f64>,
    wall_base_unix_ms: Option<u64>,
}

impl MockBackend {
    /// Builds a mock backend over the given device set.
    ///
    /// # Errors
    /// [`BackendError::Unavailable`] for an empty device set or an
    /// invalid clock range.
    pub fn new(devices: Vec<MockDevice>, platform_watts: f64) -> BackendResult<Self> {
        if devices.is_empty() {
            return Err(BackendError::Unavailable(
                "mock backend needs >= 1 device".into(),
            ));
        }
        for d in &devices {
            if !(d.f_min_mhz > 0.0 && d.f_max_mhz > d.f_min_mhz && d.step_mhz > 0.0) {
                return Err(BackendError::Unavailable(format!(
                    "mock device `{}` has an invalid clock range",
                    d.name
                )));
            }
        }
        let enumerated = devices
            .iter()
            .enumerate()
            .map(|(index, d)| BackendDevice {
                index,
                kind: d.kind,
                name: d.name.clone(),
                f_min_mhz: d.f_min_mhz,
                f_max_mhz: d.f_max_mhz,
                levels_mhz: levels(d),
                power_limit_w: Some((d.idle_watts, d.idle_watts + d.gain_w_per_mhz * d.f_max_mhz)),
            })
            .collect();
        let n = devices.len();
        let applied = devices.iter().map(|d| d.f_min_mhz).collect();
        Ok(MockBackend {
            devices: enumerated,
            applied_mhz: applied,
            clock_stuck: vec![false; n],
            coarse_step: vec![None; n],
            ejected: vec![false; n],
            power_limits_w: vec![None; n],
            spec: devices,
            platform_watts,
            scripted_power: VecDeque::new(),
            errors: VecDeque::new(),
            latency_ns: Vec::new(),
            injected_latency_ns: 0,
            meter: MeterMode::Healthy,
            meter_fault_age_s: 0,
            meter_delay: VecDeque::new(),
            meter_delay_s: 0,
            history: VecDeque::new(),
            last_good_sample: None,
            elapsed_s: 0,
            last_sample_at_s: None,
            throughput: vec![0.0; n],
            psu_limit: None,
            wall_base_unix_ms: None,
        })
    }

    /// A paper-shaped testbed: one CPU package and `gpus` GPUs.
    ///
    /// # Errors
    /// Propagates [`MockBackend::new`] validation.
    pub fn testbed(gpus: usize) -> BackendResult<Self> {
        let mut devices = vec![MockDevice::cpu("mock-xeon")];
        for i in 0..gpus {
            devices.push(MockDevice::gpu(&format!("mock-v100-{i}")));
        }
        MockBackend::new(devices, 300.0)
    }

    /// Queues an explicit server-power sample (`None` = dropout) that
    /// overrides the linear law for one elapsed second, FIFO.
    pub fn push_power_reading(&mut self, watts: Option<f64>) {
        self.scripted_power.push_back(watts);
    }

    /// Queues a one-shot scripted error for the next call of `op`.
    pub fn inject_error(&mut self, op: MockOp, message: &str) {
        self.errors.push_back((op, message.to_string()));
    }

    /// Attributes a synthetic latency (ns) to every future call of
    /// `op`, accumulated in [`MockBackend::injected_latency_ns`].
    pub fn set_latency_ns(&mut self, op: MockOp, ns: u64) {
        self.latency_ns.retain(|(o, _)| *o != op);
        if ns > 0 {
            self.latency_ns.push((op, ns));
        }
    }

    /// Total synthetic latency attributed so far (ns).
    pub fn injected_latency_ns(&self) -> u64 {
        self.injected_latency_ns
    }

    /// Scripts per-device throughput readings (enables the
    /// [`Capabilities::throughput`] surface).
    ///
    /// # Errors
    /// [`BackendError::WrongArity`] on length mismatch.
    pub fn set_throughput(&mut self, per_device: &[f64]) -> BackendResult<()> {
        if per_device.len() != self.spec.len() {
            return Err(BackendError::WrongArity {
                expected: self.spec.len(),
                got: per_device.len(),
            });
        }
        self.throughput.copy_from_slice(per_device);
        Ok(())
    }

    /// Makes the backend report wall-clock-stamped readings starting at
    /// the given Unix epoch (advanced by [`PowerBackend::advance`]).
    pub fn set_wall_clock_base(&mut self, unix_ms: u64) {
        self.wall_base_unix_ms = Some(unix_ms);
    }

    /// Applies a fault from the `capgpu-faults` taxonomy. Device-scoped
    /// kinds validate their index; meter kinds share one slot
    /// (last-applied wins), mirroring the simulator's semantics.
    ///
    /// # Errors
    /// [`BackendError::NoSuchDevice`] / [`BackendError::Device`] for
    /// invalid targets or parameters.
    pub fn apply_fault(&mut self, fault: &FaultKind) -> BackendResult<()> {
        if let Some(d) = fault.device() {
            if d >= self.spec.len() {
                return Err(BackendError::NoSuchDevice(d));
            }
        }
        match *fault {
            FaultKind::MeterDropout => self.meter = MeterMode::Dropout,
            FaultKind::MeterStuck => self.meter = MeterMode::Stuck,
            FaultKind::MeterBias {
                watts,
                drift_w_per_s,
            } => {
                self.meter = MeterMode::Bias {
                    watts,
                    drift_w_per_s,
                };
                self.meter_fault_age_s = 0;
            }
            FaultKind::MeterDelay { seconds } => {
                self.meter_delay_s = seconds;
            }
            FaultKind::ClockStuck { device } | FaultKind::CommandRejected { device } => {
                self.clock_stuck[device] = true;
            }
            FaultKind::CoarseQuantize { device, step_mhz } => {
                if step_mhz <= 0.0 || !step_mhz.is_finite() {
                    return Err(BackendError::Device(
                        "coarse-quantize step must be finite and > 0".into(),
                    ));
                }
                self.coarse_step[device] = Some(step_mhz);
            }
            FaultKind::Ejected { device } => {
                self.ejected[device] = true;
            }
            FaultKind::PsuDerate { limit_watts } => {
                if limit_watts <= 0.0 || !limit_watts.is_finite() {
                    return Err(BackendError::Device(
                        "psu limit must be finite and > 0".into(),
                    ));
                }
                self.psu_limit = Some(limit_watts);
            }
        }
        Ok(())
    }

    /// Clears a previously applied fault (the inverse of
    /// [`MockBackend::apply_fault`]). Clearing an ejection re-admits
    /// the device at its floor clock.
    ///
    /// # Errors
    /// [`BackendError::NoSuchDevice`] for invalid targets.
    pub fn clear_fault(&mut self, fault: &FaultKind) -> BackendResult<()> {
        if let Some(d) = fault.device() {
            if d >= self.spec.len() {
                return Err(BackendError::NoSuchDevice(d));
            }
        }
        match *fault {
            FaultKind::MeterDropout | FaultKind::MeterStuck | FaultKind::MeterBias { .. } => {
                self.meter = MeterMode::Healthy;
                self.meter_fault_age_s = 0;
            }
            FaultKind::MeterDelay { .. } => {
                self.meter_delay_s = 0;
            }
            FaultKind::ClockStuck { device } | FaultKind::CommandRejected { device } => {
                self.clock_stuck[device] = false;
            }
            FaultKind::CoarseQuantize { device, .. } => {
                self.coarse_step[device] = None;
            }
            FaultKind::Ejected { device } => {
                self.ejected[device] = false;
                self.applied_mhz[device] = self.spec[device].f_min_mhz;
            }
            FaultKind::PsuDerate { .. } => self.psu_limit = None,
        }
        Ok(())
    }

    /// Ground-truth power of the linear law at the current clocks.
    pub fn true_power(&self) -> f64 {
        let device_power: f64 = self
            .spec
            .iter()
            .zip(self.applied_mhz.iter())
            .zip(self.ejected.iter())
            .map(|((d, &f), &ej)| {
                if ej {
                    0.0
                } else {
                    d.idle_watts + d.gain_w_per_mhz * f
                }
            })
            .sum();
        self.platform_watts + device_power
    }

    fn charge(&mut self, op: MockOp) -> BackendResult<()> {
        if let Some(&(_, ns)) = self.latency_ns.iter().find(|(o, _)| *o == op) {
            self.injected_latency_ns += ns;
        }
        if let Some(pos) = self.errors.iter().position(|(o, _)| *o == op) {
            let (_, msg) = self.errors.remove(pos).expect("position just found");
            return Err(BackendError::Scripted(msg));
        }
        Ok(())
    }
}

fn levels(d: &MockDevice) -> Vec<f64> {
    let mut out = Vec::new();
    let mut f = d.f_min_mhz;
    while f <= d.f_max_mhz + 1e-9 {
        out.push(f);
        f += d.step_mhz;
    }
    out
}

fn quantize(d: &MockDevice, step_override: Option<f64>, target: f64) -> f64 {
    let step = step_override.unwrap_or(d.step_mhz);
    let snapped = (target / step).round() * step;
    snapped.clamp(d.f_min_mhz, d.f_max_mhz)
}

impl PowerBackend for MockBackend {
    fn name(&self) -> &str {
        "mock"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            set_frequency: true,
            set_power_limit: true,
            server_power: true,
            per_device_power: true,
            throughput: true,
            wall_clock: self.wall_base_unix_ms.is_some(),
        }
    }

    fn devices(&self) -> &[BackendDevice] {
        &self.devices
    }

    fn set_frequencies(&mut self, targets_mhz: &[f64]) -> BackendResult<()> {
        if targets_mhz.len() != self.spec.len() {
            return Err(BackendError::WrongArity {
                expected: self.spec.len(),
                got: targets_mhz.len(),
            });
        }
        self.charge(MockOp::SetFrequencies)?;
        for (i, &t) in targets_mhz.iter().enumerate() {
            if self.clock_stuck[i] || self.ejected[i] {
                continue;
            }
            self.applied_mhz[i] = quantize(&self.spec[i], self.coarse_step[i], t);
        }
        Ok(())
    }

    fn effective_frequencies_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        self.charge(MockOp::EffectiveFrequencies)?;
        out.clear();
        out.extend_from_slice(&self.applied_mhz);
        Ok(())
    }

    fn set_power_limit(&mut self, device: usize, watts: f64) -> BackendResult<()> {
        if device >= self.spec.len() {
            return Err(BackendError::NoSuchDevice(device));
        }
        self.charge(MockOp::SetPowerLimit)?;
        let (lo, hi) = self.devices[device]
            .power_limit_w
            .expect("mock devices always advertise a limit range");
        if !(lo..=hi).contains(&watts) {
            return Err(BackendError::Device(format!(
                "power limit {watts} W outside [{lo}, {hi}]"
            )));
        }
        self.power_limits_w[device] = Some(watts);
        Ok(())
    }

    fn advance(&mut self, dt_s: f64) -> BackendResult<Option<f64>> {
        if dt_s != 1.0 {
            return Err(BackendError::Unsupported(
                "mock advance requires dt_s == 1.0",
            ));
        }
        self.charge(MockOp::Advance)?;
        self.elapsed_s += 1;
        if matches!(self.meter, MeterMode::Bias { .. }) {
            self.meter_fault_age_s += 1;
        }
        let raw = match self.scripted_power.pop_front() {
            Some(s) => s,
            None => Some(self.true_power()),
        };
        let sample = match (self.meter, raw) {
            (_, None) | (MeterMode::Dropout, _) => None,
            (MeterMode::Healthy, Some(p)) => Some(p),
            (MeterMode::Stuck, Some(_)) => self.last_good_sample,
            (
                MeterMode::Bias {
                    watts,
                    drift_w_per_s,
                },
                Some(p),
            ) => Some(p + watts + drift_w_per_s * self.meter_fault_age_s as f64),
        };
        // A reporting delay holds samples back `meter_delay_s` seconds.
        let emitted = match sample {
            Some(p) if self.meter_delay_s > 0 => {
                self.meter_delay.push_back(p);
                if self.meter_delay.len() > self.meter_delay_s {
                    self.meter_delay.pop_front()
                } else {
                    None
                }
            }
            other => other,
        };
        if let Some(p) = emitted {
            self.last_good_sample = Some(p);
            self.last_sample_at_s = Some(self.elapsed_s);
            self.history.push_back(p);
            if self.history.len() > 1024 {
                self.history.pop_front();
            }
        }
        Ok(emitted)
    }

    fn average_power(&self, last_n: usize) -> Option<f64> {
        if last_n == 0 || self.history.is_empty() {
            return None;
        }
        let n = last_n.min(self.history.len());
        let sum: f64 = self.history.iter().rev().take(n).sum();
        Some(sum / n as f64)
    }

    fn seconds_since_sample(&self) -> Option<u64> {
        self.last_sample_at_s.map(|at| self.elapsed_s - at)
    }

    fn per_device_power_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        self.charge(MockOp::PerDevicePower)?;
        out.clear();
        out.extend(
            self.spec
                .iter()
                .zip(self.applied_mhz.iter())
                .zip(self.ejected.iter())
                .map(|((d, &f), &ej)| {
                    if ej {
                        0.0
                    } else {
                        d.idle_watts + d.gain_w_per_mhz * f
                    }
                }),
        );
        Ok(())
    }

    fn throughput_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        self.charge(MockOp::Throughput)?;
        out.clear();
        out.extend_from_slice(&self.throughput);
        Ok(())
    }

    fn is_ejected(&self, device: usize) -> bool {
        self.ejected.get(device).copied().unwrap_or(false)
    }

    fn psu_limit(&self) -> Option<f64> {
        self.psu_limit
    }

    fn wall_clock_unix_ms(&self) -> Option<u64> {
        self.wall_base_unix_ms
            .map(|base| base + self.elapsed_s * 1000)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_law_and_scripted_readings() {
        let mut b = MockBackend::testbed(2).unwrap();
        let p0 = b.advance(1.0).unwrap().unwrap();
        assert_eq!(p0, b.true_power());
        b.set_frequencies(&[2400.0, 1350.0, 1350.0]).unwrap();
        let p1 = b.advance(1.0).unwrap().unwrap();
        assert!(p1 > p0 + 100.0);
        b.push_power_reading(Some(123.0));
        b.push_power_reading(None);
        assert_eq!(b.advance(1.0).unwrap(), Some(123.0));
        assert_eq!(b.advance(1.0).unwrap(), None);
        assert_eq!(b.seconds_since_sample(), Some(1));
    }

    #[test]
    fn injected_errors_are_one_shot_and_latency_accumulates() {
        let mut b = MockBackend::testbed(1).unwrap();
        b.inject_error(MockOp::Advance, "bus reset");
        assert!(matches!(
            b.advance(1.0),
            Err(BackendError::Scripted(m)) if m == "bus reset"
        ));
        assert!(b.advance(1.0).unwrap().is_some());
        b.set_latency_ns(MockOp::SetFrequencies, 250);
        b.set_frequencies(&[1000.0, 900.0]).unwrap();
        b.set_frequencies(&[1000.0, 900.0]).unwrap();
        assert_eq!(b.injected_latency_ns(), 500);
    }

    #[test]
    fn fault_taxonomy_replays() {
        let mut b = MockBackend::testbed(1).unwrap();
        // Stuck clock: commands accepted, applied unchanged.
        b.apply_fault(&FaultKind::ClockStuck { device: 1 }).unwrap();
        b.set_frequencies(&[2000.0, 900.0]).unwrap();
        let mut eff = Vec::new();
        b.effective_frequencies_into(&mut eff).unwrap();
        assert_eq!(eff, vec![2000.0, 435.0]);
        b.clear_fault(&FaultKind::ClockStuck { device: 1 }).unwrap();
        // Ejection: zero power, readmission at the floor.
        b.apply_fault(&FaultKind::Ejected { device: 1 }).unwrap();
        assert!(b.is_ejected(1));
        let mut per = Vec::new();
        b.per_device_power_into(&mut per).unwrap();
        assert_eq!(per[1], 0.0);
        b.clear_fault(&FaultKind::Ejected { device: 1 }).unwrap();
        assert!(!b.is_ejected(1));
        // Meter dropout then PSU derate.
        b.apply_fault(&FaultKind::MeterDropout).unwrap();
        assert_eq!(b.advance(1.0).unwrap(), None);
        b.clear_fault(&FaultKind::MeterDropout).unwrap();
        b.apply_fault(&FaultKind::PsuDerate { limit_watts: 700.0 })
            .unwrap();
        assert_eq!(b.psu_limit(), Some(700.0));
        // Bad targets are rejected.
        assert!(b.apply_fault(&FaultKind::Ejected { device: 9 }).is_err());
    }

    #[test]
    fn meter_bias_and_delay() {
        let mut b = MockBackend::testbed(1).unwrap();
        let truth = b.true_power();
        b.apply_fault(&FaultKind::MeterBias {
            watts: 50.0,
            drift_w_per_s: 1.0,
        })
        .unwrap();
        assert_eq!(b.advance(1.0).unwrap(), Some(truth + 51.0));
        assert_eq!(b.advance(1.0).unwrap(), Some(truth + 52.0));
        b.clear_fault(&FaultKind::MeterBias {
            watts: 0.0,
            drift_w_per_s: 0.0,
        })
        .unwrap();
        let mut d = MockBackend::testbed(1).unwrap();
        d.apply_fault(&FaultKind::MeterDelay { seconds: 2 })
            .unwrap();
        assert_eq!(d.advance(1.0).unwrap(), None);
        assert_eq!(d.advance(1.0).unwrap(), None);
        assert!(d.advance(1.0).unwrap().is_some());
    }

    #[test]
    fn wall_clock_is_opt_in() {
        let mut b = MockBackend::testbed(1).unwrap();
        assert_eq!(b.wall_clock_unix_ms(), None);
        b.set_wall_clock_base(1_700_000_000_000);
        b.advance(1.0).unwrap();
        assert_eq!(b.wall_clock_unix_ms(), Some(1_700_000_001_000));
        assert!(b.capabilities().wall_clock);
    }

    #[test]
    fn power_limit_range_enforced() {
        let mut b = MockBackend::testbed(1).unwrap();
        let (lo, hi) = b.devices()[1].power_limit_w.unwrap();
        b.set_power_limit(1, (lo + hi) / 2.0).unwrap();
        assert!(b.set_power_limit(1, hi + 100.0).is_err());
        assert!(matches!(
            b.set_power_limit(7, 100.0),
            Err(BackendError::NoSuchDevice(7))
        ));
    }
}
