//! # capgpu-backend — the sense/actuate seam of the CapGPU stack
//!
//! The paper's controller is only a *system* once the
//! identification/MPC/supervisor/telemetry stack can run against real
//! hardware. This crate defines that seam: [`PowerBackend`], the trait
//! through which the control loop senses (server power, per-device
//! power, applied clocks, throughput) and actuates (target frequencies,
//! power limits) — with the simulated testbed as the reference
//! implementation and real-hardware backends behind the same surface.
//!
//! Implementations:
//!
//! - [`SimBackend`] — wraps [`capgpu_sim::Server`]; the experiment
//!   runner's plant. Deterministic: byte-identical to driving the
//!   server directly (pinned by the conformance suite).
//! - [`MockBackend`] — a scriptable backend for tests: queued power
//!   readings, injectable per-operation errors and latencies, and
//!   replay of the [`capgpu_faults::FaultKind`] taxonomy (meter
//!   dropout, stuck clocks, ejection, PSU derate) without a simulator.
//! - [`NvmlBackend`] — NVIDIA GPUs through NVML
//!   (`nvmlDeviceSetPowerManagementLimit`, power/clock reads). The ffi
//!   layer is an in-tree shim: without the `nvml` cargo feature it
//!   compiles everywhere and reports `Unavailable` at probe time.
//! - [`CpufreqBackend`] — CPU packages through the Linux `cpufreq`
//!   sysfs interface plus RAPL energy counters, rooted at a
//!   configurable path so it is testable against a fixture tree.
//!
//! The trait is deliberately *sample-oriented*: `advance(dt)` lets one
//! second of plant time pass (the simulator ticks; live backends sleep
//! and poll) and returns the meter sample it produced, if any. The
//! control loop on top is identical for both — which is exactly the
//! property the `capgpud` daemon relies on.

#![warn(missing_docs)]

pub mod cpufreq;
pub mod mock;
pub mod nvml;
pub mod sim;

pub use cpufreq::CpufreqBackend;
pub use mock::{MockBackend, MockDevice, MockOp};
pub use nvml::NvmlBackend;
pub use sim::SimBackend;

use capgpu_sim::DeviceKind;

/// Errors surfaced by a backend.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The simulated testbed rejected an operation.
    Sim(capgpu_sim::SimError),
    /// Wrong number of per-device values for this backend's device set.
    WrongArity {
        /// Devices the backend exposes.
        expected: usize,
        /// Values the caller supplied.
        got: usize,
    },
    /// Device index outside the enumerated set.
    NoSuchDevice(usize),
    /// The operation is not supported by this backend (see
    /// [`Capabilities`]).
    Unsupported(&'static str),
    /// The backend cannot be constructed in this environment (driver or
    /// sysfs surface missing).
    Unavailable(String),
    /// The device or driver rejected the command.
    Device(String),
    /// I/O failure talking to the sysfs / driver surface.
    Io(String),
    /// A scripted [`MockBackend`] error, injected by a test.
    Scripted(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Sim(e) => write!(f, "sim backend: {e}"),
            BackendError::WrongArity { expected, got } => {
                write!(f, "expected {expected} per-device values, got {got}")
            }
            BackendError::NoSuchDevice(i) => write!(f, "no such device: {i}"),
            BackendError::Unsupported(op) => write!(f, "operation not supported: {op}"),
            BackendError::Unavailable(m) => write!(f, "backend unavailable: {m}"),
            BackendError::Device(m) => write!(f, "device error: {m}"),
            BackendError::Io(m) => write!(f, "backend io error: {m}"),
            BackendError::Scripted(m) => write!(f, "scripted fault: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<capgpu_sim::SimError> for BackendError {
    fn from(e: capgpu_sim::SimError) -> Self {
        BackendError::Sim(e)
    }
}

/// Result alias for backend operations.
pub type BackendResult<T> = std::result::Result<T, BackendError>;

/// One enumerated device behind a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendDevice {
    /// Stable index within the backend (actuation order).
    pub index: usize,
    /// CPU package or GPU board.
    pub kind: DeviceKind,
    /// Human-readable name (`"Tesla V100"`, `"cpu0"`, ...).
    pub name: String,
    /// Lowest settable frequency (MHz).
    pub f_min_mhz: f64,
    /// Highest settable frequency (MHz).
    pub f_max_mhz: f64,
    /// Supported discrete frequency levels, ascending (MHz). May be
    /// empty when the backend only knows the `[min, max]` range.
    pub levels_mhz: Vec<f64>,
    /// Settable board power-limit range `(min, max)` in watts, when the
    /// device supports power-limit actuation (NVML does; the simulated
    /// testbed actuates frequency only).
    pub power_limit_w: Option<(f64, f64)>,
}

/// What a backend can do. The control stack degrades gracefully: a
/// missing per-device meter falls back to the server meter, missing
/// throughput telemetry falls back to uniform weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities {
    /// Can set per-device target frequencies.
    pub set_frequency: bool,
    /// Can set per-device board power limits.
    pub set_power_limit: bool,
    /// Reports a server-level power meter.
    pub server_power: bool,
    /// Reports per-device power readings.
    pub per_device_power: bool,
    /// Reports per-device workload throughput.
    pub throughput: bool,
    /// Readings are wall-clock stamped (a live backend). Deterministic
    /// backends return `false` so their journals stay byte-identical.
    pub wall_clock: bool,
}

/// The sense/actuate surface of one server.
///
/// Contract notes, pinned by the conformance suite in
/// `tests/conformance.rs`:
///
/// - **Enumeration is stable**: [`PowerBackend::devices`] returns the
///   same set, in the same order, for the lifetime of the backend.
/// - **Actuate-then-read round-trips**: after a successful
///   [`PowerBackend::set_frequencies`], `effective_frequencies_into`
///   reflects the commanded values quantized to the device's supported
///   levels (and clamped by throttling the backend reports honestly).
/// - **Arity is checked first**: a wrong-length slice errors without
///   partially actuating.
/// - **`advance` owns time**: the simulator ticks its plant, live
///   backends sleep/poll. It returns the fresh server-level power
///   sample the elapsed second produced, or `None` (meter dropout /
///   no meter) — sense code must treat `None` as staleness, which is
///   exactly what the supervisor's watchdog keys on.
pub trait PowerBackend {
    /// Short backend name (`"sim"`, `"mock"`, `"nvml"`, `"cpufreq"`).
    fn name(&self) -> &str;

    /// What this backend can do.
    fn capabilities(&self) -> Capabilities;

    /// The enumerated devices, in actuation order. Stable for the
    /// backend's lifetime.
    fn devices(&self) -> &[BackendDevice];

    /// Number of devices (`devices().len()`).
    fn num_devices(&self) -> usize {
        self.devices().len()
    }

    /// Commands per-device target frequencies (MHz). The backend
    /// quantizes to each device's supported levels; faults or driver
    /// rejections leave the previous clock in force without failing the
    /// whole call (mirroring `nvidia-smi -ac` semantics where the tool
    /// "succeeds" but the clock does not move).
    ///
    /// # Errors
    /// [`BackendError::WrongArity`] (checked before any actuation) or a
    /// device/driver error.
    fn set_frequencies(&mut self, targets_mhz: &[f64]) -> BackendResult<()>;

    /// Writes the clocks the devices are *actually* running (commanded,
    /// quantized, clamped by any throttle) into `out` (resized to the
    /// device count).
    ///
    /// # Errors
    /// Device/driver read failures.
    fn effective_frequencies_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()>;

    /// Sets one device's board power limit (W), the
    /// `nvmlDeviceSetPowerManagementLimit` analogue.
    ///
    /// # Errors
    /// [`BackendError::Unsupported`] when [`Capabilities::set_power_limit`]
    /// is false; otherwise device/driver errors.
    fn set_power_limit(&mut self, device: usize, watts: f64) -> BackendResult<()> {
        let _ = (device, watts);
        Err(BackendError::Unsupported("set_power_limit"))
    }

    /// Lets `dt_s` seconds of plant time pass and returns the fresh
    /// server-level power sample it produced (`None` = meter silent).
    /// The simulator advances its plant; live backends sleep and poll.
    ///
    /// # Errors
    /// Plant/driver failures.
    fn advance(&mut self, dt_s: f64) -> BackendResult<Option<f64>>;

    /// Average of the last `n` server-level meter samples (W), or
    /// `None` when the meter has produced none / is unsupported.
    fn average_power(&self, last_n: usize) -> Option<f64>;

    /// Seconds since the server meter last produced any sample
    /// (`None` = never). The supervisor's staleness watchdog input.
    fn seconds_since_sample(&self) -> Option<u64>;

    /// Writes per-device power readings (W) into `out` (resized to the
    /// device count) — what RAPL / `nvidia-smi` report per package or
    /// board, as of the most recent elapsed second.
    ///
    /// # Errors
    /// [`BackendError::Unsupported`] when [`Capabilities::per_device_power`]
    /// is false; otherwise device/driver errors.
    fn per_device_power_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()>;

    /// Writes per-device workload throughput (requests- or tokens-/s)
    /// into `out`.
    ///
    /// # Errors
    /// [`BackendError::Unsupported`] when [`Capabilities::throughput`]
    /// is false.
    fn throughput_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        let _ = out;
        Err(BackendError::Unsupported("throughput"))
    }

    /// Whether a device has fallen off the bus (out-of-range reads
    /// `false` — this is a hot-path probe, not a validator).
    fn is_ejected(&self, device: usize) -> bool {
        let _ = device;
        false
    }

    /// BMC-advertised PSU power limit (W), if the platform reports one.
    fn psu_limit(&self) -> Option<f64> {
        None
    }

    /// Standard deviation of server meter noise (W), if known — sizing
    /// input for safety margins and deadbands.
    fn meter_noise_std(&self) -> f64 {
        0.0
    }

    /// Wall-clock of the most recent reading (Unix milliseconds) for
    /// live backends; `None` for deterministic ones, which keeps
    /// sim-mode journals byte-identical.
    fn wall_clock_unix_ms(&self) -> Option<u64> {
        None
    }

    /// Concrete-type escape hatch: plant-side hooks that are *not* part
    /// of the sense/actuate seam (fault injection, scripted readings)
    /// live on the concrete backend, and callers holding a boxed
    /// `dyn PowerBackend` downcast through here to reach them.
    /// Implementations return `self`.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_descriptive() {
        let e = BackendError::WrongArity {
            expected: 4,
            got: 1,
        };
        assert!(e.to_string().contains("4"));
        assert!(BackendError::Unsupported("set_power_limit")
            .to_string()
            .contains("set_power_limit"));
        let sim: BackendError = capgpu_sim::SimError::NoSuchDevice(7).into();
        assert!(sim.to_string().contains("7"));
    }
}
