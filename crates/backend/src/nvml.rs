//! [`NvmlBackend`] — NVIDIA GPUs through the NVIDIA Management Library.
//!
//! The paper's testbed actuates GPU clocks with `nvidia-smi -ac` and
//! reads board power through NVML; this backend is the programmatic
//! equivalent: `nvmlDeviceSetApplicationsClocks` /
//! `nvmlDeviceSetPowerManagementLimit` for actuation,
//! `nvmlDeviceGetPowerUsage` and `nvmlDeviceGetClockInfo` for sensing.
//!
//! The ffi layer is an in-tree shim so the workspace never grows a
//! crates.io dependency and always compiles offline:
//!
//! - with `--features nvml`, the [`ffi`] module declares the handful of
//!   `libnvidia-ml` entry points we use and links against the driver
//!   stack;
//! - without it (the default, and what CI builds), [`NvmlBackend::probe`]
//!   returns [`BackendError::Unavailable`] and no foreign symbols are
//!   referenced at all.
//!
//! Everything above the ffi boundary — device bookkeeping, MHz/mW unit
//! conversion, error mapping — is shared and unit-tested offline.

#[cfg(feature = "nvml")]
use capgpu_sim::DeviceKind;

use crate::{BackendDevice, BackendError, BackendResult, Capabilities, PowerBackend};

/// Raw bindings to the subset of NVML this backend uses. Only compiled
/// (and only linked) when the `nvml` cargo feature is enabled.
#[cfg(feature = "nvml")]
#[allow(non_camel_case_types, missing_docs)]
pub mod ffi {
    use std::os::raw::{c_char, c_int, c_uint};

    pub type nvmlReturn_t = c_int;
    pub type nvmlDevice_t = *mut std::ffi::c_void;
    pub const NVML_SUCCESS: nvmlReturn_t = 0;
    pub const NVML_CLOCK_SM: c_uint = 1;
    pub const NVML_CLOCK_MEM: c_uint = 2;
    pub const NVML_DEVICE_NAME_BUFFER_SIZE: usize = 96;

    #[link(name = "nvidia-ml")]
    extern "C" {
        pub fn nvmlInit_v2() -> nvmlReturn_t;
        pub fn nvmlShutdown() -> nvmlReturn_t;
        pub fn nvmlErrorString(result: nvmlReturn_t) -> *const c_char;
        pub fn nvmlDeviceGetCount_v2(count: *mut c_uint) -> nvmlReturn_t;
        pub fn nvmlDeviceGetHandleByIndex_v2(
            index: c_uint,
            device: *mut nvmlDevice_t,
        ) -> nvmlReturn_t;
        pub fn nvmlDeviceGetName(
            device: nvmlDevice_t,
            name: *mut c_char,
            length: c_uint,
        ) -> nvmlReturn_t;
        pub fn nvmlDeviceGetPowerUsage(device: nvmlDevice_t, mw: *mut c_uint) -> nvmlReturn_t;
        pub fn nvmlDeviceGetClockInfo(
            device: nvmlDevice_t,
            clock_type: c_uint,
            mhz: *mut c_uint,
        ) -> nvmlReturn_t;
        pub fn nvmlDeviceGetMaxClockInfo(
            device: nvmlDevice_t,
            clock_type: c_uint,
            mhz: *mut c_uint,
        ) -> nvmlReturn_t;
        pub fn nvmlDeviceSetApplicationsClocks(
            device: nvmlDevice_t,
            mem_mhz: c_uint,
            sm_mhz: c_uint,
        ) -> nvmlReturn_t;
        pub fn nvmlDeviceGetPowerManagementLimitConstraints(
            device: nvmlDevice_t,
            min_mw: *mut c_uint,
            max_mw: *mut c_uint,
        ) -> nvmlReturn_t;
        pub fn nvmlDeviceSetPowerManagementLimit(
            device: nvmlDevice_t,
            mw: *mut c_uint,
        ) -> nvmlReturn_t;
    }
}

/// NVIDIA GPUs behind the [`PowerBackend`] surface.
///
/// Construct with [`NvmlBackend::probe`]; construction fails cleanly
/// (rather than at link or call time) when the driver stack is absent.
#[derive(Debug)]
pub struct NvmlBackend {
    devices: Vec<BackendDevice>,
    #[cfg(feature = "nvml")]
    handles: Vec<ffi::nvmlDevice_t>,
    /// Server-level samples accumulated by `advance` (sum of boards).
    history: Vec<f64>,
    elapsed_s: u64,
    last_sample_at_s: Option<u64>,
}

impl NvmlBackend {
    /// Initializes NVML and enumerates GPUs.
    ///
    /// # Errors
    /// [`BackendError::Unavailable`] when built without the `nvml`
    /// feature, or when `nvmlInit_v2` fails (no driver, no device);
    /// [`BackendError::Device`] for per-device enumeration failures.
    pub fn probe() -> BackendResult<Self> {
        #[cfg(feature = "nvml")]
        {
            Self::probe_live()
        }
        #[cfg(not(feature = "nvml"))]
        {
            Err(BackendError::Unavailable(
                "built without the `nvml` feature; rebuild with `--features nvml` \
                 on a host with the NVIDIA driver stack"
                    .into(),
            ))
        }
    }

    #[cfg(feature = "nvml")]
    fn probe_live() -> BackendResult<Self> {
        unsafe {
            let rc = ffi::nvmlInit_v2();
            if rc != ffi::NVML_SUCCESS {
                return Err(BackendError::Unavailable(format!(
                    "nvmlInit_v2 failed: {}",
                    nvml_error(rc)
                )));
            }
            let mut count: std::os::raw::c_uint = 0;
            check(ffi::nvmlDeviceGetCount_v2(&mut count), "device count")?;
            let mut devices = Vec::with_capacity(count as usize);
            let mut handles = Vec::with_capacity(count as usize);
            for index in 0..count {
                let mut handle: ffi::nvmlDevice_t = std::ptr::null_mut();
                check(
                    ffi::nvmlDeviceGetHandleByIndex_v2(index, &mut handle),
                    "device handle",
                )?;
                let mut name_buf = [0i8; ffi::NVML_DEVICE_NAME_BUFFER_SIZE];
                check(
                    ffi::nvmlDeviceGetName(
                        handle,
                        name_buf.as_mut_ptr(),
                        ffi::NVML_DEVICE_NAME_BUFFER_SIZE as _,
                    ),
                    "device name",
                )?;
                let name = std::ffi::CStr::from_ptr(name_buf.as_ptr())
                    .to_string_lossy()
                    .into_owned();
                let mut max_sm: std::os::raw::c_uint = 0;
                check(
                    ffi::nvmlDeviceGetMaxClockInfo(handle, ffi::NVML_CLOCK_SM, &mut max_sm),
                    "max SM clock",
                )?;
                let (mut lo_mw, mut hi_mw) = (0, 0);
                let limit = if ffi::nvmlDeviceGetPowerManagementLimitConstraints(
                    handle, &mut lo_mw, &mut hi_mw,
                ) == ffi::NVML_SUCCESS
                {
                    Some((f64::from(lo_mw) / 1000.0, f64::from(hi_mw) / 1000.0))
                } else {
                    None
                };
                devices.push(BackendDevice {
                    index: index as usize,
                    kind: DeviceKind::Gpu,
                    name,
                    // NVML has no "min application clock" query; the
                    // P8 idle clock is the practical floor.
                    f_min_mhz: 135.0,
                    f_max_mhz: f64::from(max_sm),
                    levels_mhz: Vec::new(),
                    power_limit_w: limit,
                });
                handles.push(handle);
            }
            Ok(NvmlBackend {
                devices,
                handles,
                history: Vec::new(),
                elapsed_s: 0,
                last_sample_at_s: None,
            })
        }
    }

    /// Sums the boards' instantaneous power draw (W).
    #[cfg(feature = "nvml")]
    fn read_total_power(&self) -> BackendResult<f64> {
        let mut total = 0.0;
        for &h in &self.handles {
            let mut mw: std::os::raw::c_uint = 0;
            unsafe { check(ffi::nvmlDeviceGetPowerUsage(h, &mut mw), "power usage")? };
            total += f64::from(mw) / 1000.0;
        }
        Ok(total)
    }
}

#[cfg(feature = "nvml")]
fn nvml_error(rc: ffi::nvmlReturn_t) -> String {
    unsafe {
        std::ffi::CStr::from_ptr(ffi::nvmlErrorString(rc))
            .to_string_lossy()
            .into_owned()
    }
}

#[cfg(feature = "nvml")]
fn check(rc: ffi::nvmlReturn_t, what: &str) -> BackendResult<()> {
    if rc == ffi::NVML_SUCCESS {
        Ok(())
    } else {
        Err(BackendError::Device(format!("{what}: {}", nvml_error(rc))))
    }
}

#[cfg(feature = "nvml")]
impl Drop for NvmlBackend {
    fn drop(&mut self) {
        unsafe {
            let _ = ffi::nvmlShutdown();
        }
    }
}

impl PowerBackend for NvmlBackend {
    fn name(&self) -> &str {
        "nvml"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            set_frequency: true,
            set_power_limit: true,
            server_power: true,
            per_device_power: true,
            throughput: false,
            wall_clock: true,
        }
    }

    fn devices(&self) -> &[BackendDevice] {
        &self.devices
    }

    fn set_frequencies(&mut self, targets_mhz: &[f64]) -> BackendResult<()> {
        if targets_mhz.len() != self.devices.len() {
            return Err(BackendError::WrongArity {
                expected: self.devices.len(),
                got: targets_mhz.len(),
            });
        }
        #[cfg(feature = "nvml")]
        {
            for (i, &t) in targets_mhz.iter().enumerate() {
                let h = self.handles[i];
                let mut mem: std::os::raw::c_uint = 0;
                unsafe {
                    check(
                        ffi::nvmlDeviceGetMaxClockInfo(h, ffi::NVML_CLOCK_MEM, &mut mem),
                        "max mem clock",
                    )?;
                    check(
                        ffi::nvmlDeviceSetApplicationsClocks(h, mem, t.round() as _),
                        "set applications clocks",
                    )?;
                }
            }
            Ok(())
        }
        #[cfg(not(feature = "nvml"))]
        {
            Err(BackendError::Unavailable("nvml feature disabled".into()))
        }
    }

    fn effective_frequencies_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        out.clear();
        #[cfg(feature = "nvml")]
        {
            for &h in &self.handles {
                let mut mhz: std::os::raw::c_uint = 0;
                unsafe {
                    check(
                        ffi::nvmlDeviceGetClockInfo(h, ffi::NVML_CLOCK_SM, &mut mhz),
                        "SM clock",
                    )?;
                }
                out.push(f64::from(mhz));
            }
            Ok(())
        }
        #[cfg(not(feature = "nvml"))]
        {
            Err(BackendError::Unavailable("nvml feature disabled".into()))
        }
    }

    fn set_power_limit(&mut self, device: usize, watts: f64) -> BackendResult<()> {
        if device >= self.devices.len() {
            return Err(BackendError::NoSuchDevice(device));
        }
        #[cfg(feature = "nvml")]
        {
            let mut mw = (watts * 1000.0).round() as std::os::raw::c_uint;
            unsafe {
                check(
                    ffi::nvmlDeviceSetPowerManagementLimit(self.handles[device], &mut mw),
                    "set power limit",
                )
            }
        }
        #[cfg(not(feature = "nvml"))]
        {
            let _ = watts;
            Err(BackendError::Unavailable("nvml feature disabled".into()))
        }
    }

    fn advance(&mut self, dt_s: f64) -> BackendResult<Option<f64>> {
        if !(dt_s > 0.0 && dt_s.is_finite()) {
            return Err(BackendError::Unsupported("advance requires dt_s > 0"));
        }
        // Live plant: let wall time pass, then poll the boards.
        std::thread::sleep(std::time::Duration::from_secs_f64(dt_s));
        self.elapsed_s += dt_s.round() as u64;
        #[cfg(feature = "nvml")]
        {
            let p = self.read_total_power()?;
            self.history.push(p);
            if self.history.len() > 1024 {
                self.history.remove(0);
            }
            self.last_sample_at_s = Some(self.elapsed_s);
            Ok(Some(p))
        }
        #[cfg(not(feature = "nvml"))]
        {
            Err(BackendError::Unavailable("nvml feature disabled".into()))
        }
    }

    fn average_power(&self, last_n: usize) -> Option<f64> {
        if last_n == 0 || self.history.is_empty() {
            return None;
        }
        let n = last_n.min(self.history.len());
        Some(self.history.iter().rev().take(n).sum::<f64>() / n as f64)
    }

    fn seconds_since_sample(&self) -> Option<u64> {
        self.last_sample_at_s.map(|at| self.elapsed_s - at)
    }

    fn per_device_power_into(&mut self, out: &mut Vec<f64>) -> BackendResult<()> {
        out.clear();
        #[cfg(feature = "nvml")]
        {
            for &h in &self.handles {
                let mut mw: std::os::raw::c_uint = 0;
                unsafe { check(ffi::nvmlDeviceGetPowerUsage(h, &mut mw), "power usage")? };
                out.push(f64::from(mw) / 1000.0);
            }
            Ok(())
        }
        #[cfg(not(feature = "nvml"))]
        {
            Err(BackendError::Unavailable("nvml feature disabled".into()))
        }
    }

    fn wall_clock_unix_ms(&self) -> Option<u64> {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .ok()
            .map(|d| d.as_millis() as u64)
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(all(test, not(feature = "nvml")))]
mod tests {
    use super::*;

    #[test]
    fn probe_reports_unavailable_offline() {
        match NvmlBackend::probe() {
            Err(BackendError::Unavailable(msg)) => {
                assert!(
                    msg.contains("nvml"),
                    "message should name the feature: {msg}"
                );
            }
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }
}
