//! Backend conformance suite: every [`PowerBackend`] implementation
//! must satisfy the trait's documented contract. The same checks run
//! against [`SimBackend`] and [`MockBackend`]; the suite then pins the
//! refactor-safety property the whole PR rests on — a `SimBackend` is
//! *bit-identical* to driving the raw simulator `Server`.

use capgpu_backend::{BackendError, MockBackend, PowerBackend, SimBackend};
use capgpu_faults::FaultKind;
use capgpu_sim::{presets, Server, ServerBuilder};

fn sim_server(seed: u64) -> Server {
    ServerBuilder::new(seed)
        .add_device(presets::xeon_gold_5215())
        .add_device(presets::tesla_v100())
        .add_device(presets::tesla_v100())
        .build()
        .unwrap()
}

fn sim_backend(seed: u64) -> SimBackend {
    let mut b = SimBackend::new(sim_server(seed));
    b.stage_utilizations(&[0.8, 0.9, 0.6]).unwrap();
    b
}

fn mock_backend() -> MockBackend {
    MockBackend::testbed(2).unwrap()
}

/// Contract checks shared by every backend.
fn conformance(backend: &mut dyn PowerBackend) {
    // -- Enumeration is stable and self-consistent. --------------------
    let before: Vec<(usize, String, f64, f64)> = backend
        .devices()
        .iter()
        .map(|d| (d.index, d.name.clone(), d.f_min_mhz, d.f_max_mhz))
        .collect();
    assert!(!before.is_empty(), "{}: no devices", backend.name());
    assert_eq!(backend.num_devices(), before.len());
    for (i, d) in backend.devices().iter().enumerate() {
        assert_eq!(d.index, i, "{}: index gap", backend.name());
        assert!(d.f_min_mhz > 0.0 && d.f_max_mhz > d.f_min_mhz);
        for w in d.levels_mhz.windows(2) {
            assert!(w[0] < w[1], "{}: levels not ascending", backend.name());
        }
    }
    let caps = backend.capabilities();
    assert!(caps.set_frequency && caps.server_power);

    // -- Actuate-then-read round-trips through quantization. -----------
    let n = backend.num_devices();
    let mids: Vec<f64> = backend
        .devices()
        .iter()
        .map(|d| (d.f_min_mhz + d.f_max_mhz) / 2.0 + 1.0)
        .collect();
    backend.set_frequencies(&mids).unwrap();
    let mut eff = Vec::new();
    backend.effective_frequencies_into(&mut eff).unwrap();
    assert_eq!(eff.len(), n);
    for (d, &f) in backend.devices().iter().zip(eff.iter()) {
        assert!(
            d.levels_mhz.iter().any(|&l| (l - f).abs() < 1e-9),
            "{}: effective {f} MHz not on `{}`'s level grid",
            backend.name(),
            d.name
        );
    }

    // -- Arity is checked before any actuation. ------------------------
    let too_short = vec![mids[0] - 100.0];
    match backend.set_frequencies(&too_short) {
        Err(BackendError::WrongArity { expected, got }) => {
            assert_eq!((expected, got), (n, 1));
        }
        other => panic!("{}: expected WrongArity, got {other:?}", backend.name()),
    }
    let mut after = Vec::new();
    backend.effective_frequencies_into(&mut after).unwrap();
    assert_eq!(
        eff,
        after,
        "{}: failed call partially actuated",
        backend.name()
    );

    // -- advance produces samples; staleness resets on each. -----------
    let mut samples = 0;
    for _ in 0..4 {
        if backend.advance(1.0).unwrap().is_some() {
            samples += 1;
            assert_eq!(backend.seconds_since_sample(), Some(0));
        }
    }
    assert!(
        samples > 0,
        "{}: meter never produced a sample",
        backend.name()
    );
    assert!(backend.average_power(4).unwrap() > 0.0);

    // -- Per-device power attribution covers the device set. -----------
    if backend.capabilities().per_device_power {
        let mut per = Vec::new();
        backend.per_device_power_into(&mut per).unwrap();
        assert_eq!(per.len(), n);
        assert!(per.iter().all(|&w| w >= 0.0));
    }

    // -- Enumeration unchanged after actuation and time. ---------------
    let now: Vec<(usize, String, f64, f64)> = backend
        .devices()
        .iter()
        .map(|d| (d.index, d.name.clone(), d.f_min_mhz, d.f_max_mhz))
        .collect();
    assert_eq!(before, now, "{}: enumeration drifted", backend.name());
}

#[test]
fn sim_backend_conforms() {
    conformance(&mut sim_backend(42));
}

#[test]
fn mock_backend_conforms() {
    conformance(&mut mock_backend());
}

/// Meter dropout makes `advance` return `None` while staleness climbs —
/// the signal the supervisor's watchdog escalates on. Same observable
/// behavior from both backends, via their respective fault surfaces.
#[test]
fn staleness_climbs_through_dropout_on_both_backends() {
    // Sim: inject the meter fault into the wrapped server.
    let mut sim = sim_backend(7);
    assert!(sim.advance(1.0).unwrap().is_some());
    FaultKind::MeterDropout.apply(sim.server_mut()).unwrap();
    for expect_age in 1..=3u64 {
        assert_eq!(sim.advance(1.0).unwrap(), None);
        assert_eq!(sim.seconds_since_sample(), Some(expect_age));
    }
    FaultKind::MeterDropout.clear(sim.server_mut()).unwrap();
    assert!(sim.advance(1.0).unwrap().is_some());
    assert_eq!(sim.seconds_since_sample(), Some(0));

    // Mock: same taxonomy, no simulator.
    let mut mock = mock_backend();
    assert!(mock.advance(1.0).unwrap().is_some());
    mock.apply_fault(&FaultKind::MeterDropout).unwrap();
    for expect_age in 1..=3u64 {
        assert_eq!(mock.advance(1.0).unwrap(), None);
        assert_eq!(mock.seconds_since_sample(), Some(expect_age));
    }
    mock.clear_fault(&FaultKind::MeterDropout).unwrap();
    assert!(mock.advance(1.0).unwrap().is_some());
    assert_eq!(mock.seconds_since_sample(), Some(0));
}

/// Device ejection: zero attributed power, `is_ejected` raised, and
/// clock commands held — on both backends.
#[test]
fn ejection_semantics_match_on_both_backends() {
    let mut sim = sim_backend(11);
    FaultKind::Ejected { device: 2 }
        .apply(sim.server_mut())
        .unwrap();
    assert!(sim.is_ejected(2) && !sim.is_ejected(1));
    let mut per = Vec::new();
    sim.per_device_power_into(&mut per).unwrap();
    assert_eq!(per[2], 0.0);
    assert!(per[1] > 0.0);

    let mut mock = mock_backend();
    mock.apply_fault(&FaultKind::Ejected { device: 2 }).unwrap();
    assert!(mock.is_ejected(2) && !mock.is_ejected(1));
    mock.per_device_power_into(&mut per).unwrap();
    assert_eq!(per[2], 0.0);
    assert!(per[1] > 0.0);
}

/// A PSU derate surfaces through `psu_limit` on both backends.
#[test]
fn psu_derate_surfaces_on_both_backends() {
    let mut sim = sim_backend(3);
    assert_eq!(sim.psu_limit(), None);
    FaultKind::PsuDerate { limit_watts: 650.0 }
        .apply(sim.server_mut())
        .unwrap();
    assert_eq!(sim.psu_limit(), Some(650.0));

    let mut mock = mock_backend();
    assert_eq!(mock.psu_limit(), None);
    mock.apply_fault(&FaultKind::PsuDerate { limit_watts: 650.0 })
        .unwrap();
    assert_eq!(mock.psu_limit(), Some(650.0));
}

/// The refactor-safety pin: a `SimBackend` and a raw `Server` built
/// from the same seed, driven through the same command/tick sequence,
/// produce bit-identical meter samples, averages, and applied clocks.
#[test]
fn sim_backend_replays_raw_server_bit_identically() {
    let mut via_trait = SimBackend::new(sim_server(20250808));
    let mut raw = sim_server(20250808);

    let commands: [(u64, [f64; 3]); 4] = [
        (0, [2400.0, 1350.0, 1350.0]),
        (10, [1800.0, 1005.0, 1110.0]),
        (20, [1200.0, 735.0, 840.0]),
        (30, [2000.0, 1200.0, 900.0]),
    ];
    let utils = [0.85, 0.95, 0.75];
    via_trait.stage_utilizations(&utils).unwrap();

    let mut eff_trait = Vec::new();
    let mut eff_raw = Vec::new();
    for t in 0..40u64 {
        if let Some(&(_, targets)) = commands.iter().find(|&&(at, _)| at == t) {
            via_trait.set_frequencies(&targets).unwrap();
            raw.set_all_frequencies(&targets).unwrap();
        }
        let s_trait = via_trait.advance(1.0).unwrap();
        let s_raw = raw.tick_second(&utils).unwrap();
        assert_eq!(s_trait, s_raw, "sample diverged at t={t}");
        via_trait
            .effective_frequencies_into(&mut eff_trait)
            .unwrap();
        raw.effective_frequencies_into(&mut eff_raw);
        assert_eq!(eff_trait, eff_raw, "clocks diverged at t={t}");
    }
    assert_eq!(
        via_trait.average_power(30),
        raw.meter().average_last(30).ok()
    );
    let mut per_trait = Vec::new();
    let mut per_raw = Vec::new();
    via_trait.per_device_power_into(&mut per_trait).unwrap();
    raw.per_device_power_into(&utils, &mut per_raw).unwrap();
    assert_eq!(per_trait, per_raw);
}

/// `Clone` snapshots the full plant: a cloned `SimBackend` replays the
/// original's future exactly (the sweep engine's clone-replay contract).
#[test]
fn sim_backend_clone_replays_identically() {
    let mut a = sim_backend(99);
    for _ in 0..5 {
        a.advance(1.0).unwrap();
    }
    let mut b = a.clone();
    for _ in 0..10 {
        assert_eq!(a.advance(1.0).unwrap(), b.advance(1.0).unwrap());
    }
}
