//! Property tests for the continuous-batching LLM engine: request and
//! token conservation at every window boundary, KV occupancy bounded by
//! the budget, and bit-identical replay per seed.

use capgpu_llm::{LlmEngine, LlmServiceModel, LlmTaskSpec, TokenRange};
use capgpu_serve::ArrivalProcess;
use proptest::prelude::*;

/// Per-window replay signature: (arrivals, completions, prefill tokens,
/// decode tokens, TTFT samples, inter-token samples).
type WindowSig = (usize, usize, usize, usize, Vec<f64>, Vec<f64>);

fn model(kv_budget: usize, max_batch: usize, chunk: Option<usize>) -> LlmServiceModel {
    LlmServiceModel {
        f_max_mhz: 1380.0,
        prefill_tok_s: 8000.0,
        gamma_prefill: 0.95,
        decode_base_s: 0.02,
        decode_kv_coeff_s: 1.5e-7,
        gamma_decode: 0.2,
        step_overhead_s: 5e-4,
        max_batch,
        kv_budget_tokens: kv_budget,
        chunk_tokens: chunk,
        gpu_util_prefill: 0.95,
        gpu_util_decode: 0.55,
    }
}

fn spec(rate: f64, prompt_hi: usize, output_hi: usize) -> LlmTaskSpec {
    LlmTaskSpec {
        arrival: ArrivalProcess::Poisson { rate_rps: rate },
        prompt: TokenRange {
            lo: (prompt_hi / 4).max(1),
            hi: prompt_hi,
        },
        output: TokenRange {
            lo: (output_hi / 4).max(1),
            hi: output_hi,
        },
        ttft_slo_s: 2.0,
        itl_slo_s: 0.2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_and_kv_bounds_hold_at_every_window(
        rate in 0.5..6.0f64,
        prompt_hi in 50usize..1500,
        output_hi in 4usize..300,
        max_batch in 1usize..24,
        chunk_raw in 0usize..1024,
        slack in 1usize..2000,
        seed in 0u64..1000,
        f_lo in 500.0..900.0f64,
        f_hi in 900.0..1380.0f64,
    ) {
        // The budget always admits the largest possible request (the
        // deadlock-freedom validation bound) plus a random slack, so
        // cache pressure ranges from constant thrash to none. Draws
        // below 64 turn chunked prefill off.
        let chunk = if chunk_raw < 64 { None } else { Some(chunk_raw) };
        let kv_budget = prompt_hi + output_hi + slack;
        let mut engine = LlmEngine::new(
            model(kv_budget, max_batch, chunk),
            spec(rate, prompt_hi, output_hi),
            128,
            seed,
        ).unwrap();
        for k in 0..40 {
            let f = if k % 2 == 0 { f_hi } else { f_lo };
            let s = engine.advance(1.0, f);
            // Request conservation: arrivals == completions + dropped +
            // queued + resident, at every window boundary.
            prop_assert!(engine.conserved(), "window {k}");
            // Token conservation: emitted tokens are never created or
            // destroyed by preemption/recompute.
            prop_assert!(engine.tokens_conserved(), "window {k}");
            // KV occupancy equals the resident-context sum and never
            // exceeds the budget.
            prop_assert!(engine.kv_accounted(), "window {k}");
            prop_assert!((0.0..=1.0).contains(&s.busy_fraction));
            prop_assert!(s.kv_used_tokens_end <= kv_budget);
            prop_assert_eq!(s.kv_budget_tokens, kv_budget);
            prop_assert_eq!(s.request_latencies.len(), s.completions);
            prop_assert!(s.prefill_busy_s + s.decode_busy_s <= s.window_s + 1e-9);
            for t in s.ttft_s.iter().chain(&s.inter_token_s) {
                prop_assert!(*t > 0.0 && t.is_finite());
            }
        }
        prop_assert!(engine.timestamps_monotone());
        prop_assert!(engine.events_total() > 0);
    }

    #[test]
    fn prompt_and_generated_tokens_account_exactly(
        rate in 0.5..4.0f64,
        seed in 0u64..1000,
        chunk_raw in 0usize..512,
    ) {
        let chunk = if chunk_raw < 64 { None } else { Some(chunk_raw) };
        // With a roomy cache there are no preemptions, so lifetime
        // prefill work equals the prompt lengths of requests that
        // reached the GPU — checked via the per-window counters.
        let mut engine = LlmEngine::new(
            model(200_000, 16, chunk),
            spec(rate, 600, 120),
            256,
            seed,
        ).unwrap();
        let mut prefill = 0u64;
        let mut decode = 0u64;
        for _ in 0..40 {
            let s = engine.advance(1.0, 1200.0);
            prefill += s.prefill_tokens as u64;
            decode += s.decode_tokens as u64;
        }
        prop_assert_eq!(engine.preemptions_total(), 0);
        prop_assert_eq!(prefill, engine.prefill_tokens_total());
        prop_assert_eq!(decode, engine.decode_tokens_total());
        prop_assert!(engine.tokens_conserved());
    }

    #[test]
    fn same_seed_replays_bit_identical(
        rate in 0.5..4.0f64,
        kv_budget in 2000usize..20_000,
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut engine = LlmEngine::new(
                model(kv_budget, 16, Some(256)),
                spec(rate, 800, 200),
                128,
                seed,
            ).unwrap();
            let mut sig: Vec<WindowSig> = Vec::new();
            for k in 0..25 {
                let f = if k % 3 == 0 { 700.0 } else { 1300.0 };
                let s = engine.advance(1.0, f);
                sig.push((
                    s.arrivals,
                    s.completions,
                    s.prefill_tokens,
                    s.decode_tokens,
                    s.ttft_s,
                    s.inter_token_s,
                ));
            }
            (sig, engine.events_total(), engine.kv_used_tokens())
        };
        let a = run();
        let b = run();
        // Bit-identical: exact f64 equality on every token latency.
        prop_assert_eq!(a, b);
    }
}
