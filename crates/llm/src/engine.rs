//! The per-GPU continuous-batching LLM engine.
//!
//! One engine models one GPU running iteration-level (continuous)
//! batching: instead of dispatching fixed request batches, the scheduler
//! runs *steps*. Each step interleaves at most one prompt-chunk of
//! prefill with one decode token for every context-complete request in
//! the running set; requests join the running set between steps as KV
//! headroom allows and leave the moment their last token is emitted —
//! decodes never wait for a batch to re-form (vLLM/Orca-style in-flight
//! batching). Without chunked prefill a pending prompt runs to
//! completion first and every resident decode stalls behind it, the
//! classic TTFT-vs-ITL trade the chunk option exists to soften.
//!
//! ## KV-cache accounting
//!
//! Admission reserves a request's full resident context (prompt plus
//! any tokens already generated before a preemption) up front, the
//! conservative watermark that prevents mid-stream exhaustion; each
//! decoded token grows the reservation by one. When a decode step would
//! exceed the budget, the *youngest* resident request is preempted for
//! recompute: its emitted tokens stand, its context is dropped from the
//! cache, and it re-queues at the front to re-prefill — so cache
//! pressure costs prefill work and token-latency stall, never
//! correctness. Validation guarantees the largest possible request fits
//! the budget alone, which makes admission deadlock-free.
//!
//! ## Events and determinism
//!
//! The heap orders only two event kinds — request arrival and step
//! completion — by `(time, sequence)`; prompt/output lengths come from
//! a second seeded stream drawn in arrival order. Same seed, same token
//! trace, bit-identical across runs and thread counts.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use capgpu_serve::{ArrivalGen, ServeWindowStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{LlmServiceModel, LlmTaskSpec};
use crate::Result;

/// One request's lifecycle state.
#[derive(Debug, Clone)]
struct Request {
    arrived_at: f64,
    /// Prompt length (tokens).
    prompt: usize,
    /// Output budget (tokens); the request completes at `generated ==
    /// output`.
    output: usize,
    /// Context tokens materialized in the KV cache so far; decode is
    /// eligible once the whole resident context (`prompt + generated`)
    /// is materialized. Reset to 0 by preemption (recompute).
    ctx_done: usize,
    /// Tokens emitted so far. Survives preemption — emitted tokens have
    /// already been streamed to the client.
    generated: usize,
    /// Whether the TTFT sample was recorded (first token emitted).
    ttft_recorded: bool,
    /// Emission time of the most recent token (ITL gaps).
    last_token_at: f64,
}

impl Request {
    /// Resident-context size: the KV tokens this request holds (or
    /// reserves) while running.
    fn context(&self) -> usize {
        self.prompt + self.generated
    }

    /// Prompt tokens still to materialize before decode can proceed.
    fn prefill_remaining(&self) -> usize {
        self.context() - self.ctx_done
    }
}

/// Event kinds ordered by the engine's heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A request arrives.
    Arrival,
    /// The in-flight scheduler step completes.
    StepDone,
}

/// A heap event: `(time, sequence)` gives a strict total order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    at: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .partial_cmp(&self.at)
            .expect("event times are finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The scheduler step currently executing on the GPU.
#[derive(Debug, Clone)]
struct Step {
    started_at: f64,
    done_at: f64,
    /// Index into `running` of the request receiving prefill this step
    /// (`None` when the step is pure decode).
    prefill_req: Option<usize>,
    /// Prompt tokens materialized by this step.
    prefill_tokens: usize,
    /// Indices into `running` of the requests emitting one token each.
    decoders: Vec<usize>,
    /// Fraction of the step's wall time attributed to prefill (busy-time
    /// split for the phase-mix signal).
    prefill_frac: f64,
}

/// The deterministic continuous-batching engine for one GPU.
#[derive(Debug, Clone)]
pub struct LlmEngine {
    model: LlmServiceModel,
    spec: LlmTaskSpec,
    queue_capacity: usize,
    arrivals: ArrivalGen,
    /// Prompt/output length stream, drawn once per arrival.
    len_rng: StdRng,
    now: f64,
    heap: BinaryHeap<Event>,
    seq: u64,
    /// Waiting requests, FIFO; preempted requests re-queue at the front.
    queue: VecDeque<Request>,
    /// The continuous batch resident on the GPU, in admission order.
    running: Vec<Request>,
    step: Option<Step>,
    /// KV tokens reserved by the running set (`Σ context()`).
    kv_used: usize,
    /// Recycled decoder-index buffer (no per-step allocation).
    spare: Vec<usize>,
    // Lifetime conservation counters.
    arrivals_total: u64,
    completions_total: u64,
    dropped_total: u64,
    preemptions_total: u64,
    steps_total: u64,
    events_total: u64,
    /// Prompt tokens materialized, including recompute after preemption.
    prefill_tokens_total: u64,
    /// Decode tokens emitted.
    decode_tokens_total: u64,
    /// Decode tokens carried out by requests that have completed.
    emitted_completed_total: u64,
    /// Stays true while every popped event time is >= its predecessor's.
    monotone: bool,
    last_event_at: f64,
}

impl LlmEngine {
    /// Creates an engine and schedules the first arrival. Length draws
    /// use a stream derived from `seed`, so one seed fixes the whole
    /// request trace.
    ///
    /// # Errors
    /// [`crate::LlmError::BadConfig`] on an invalid model, task spec or
    /// queue capacity.
    pub fn new(
        model: LlmServiceModel,
        spec: LlmTaskSpec,
        queue_capacity: usize,
        seed: u64,
    ) -> Result<Self> {
        model.validate()?;
        spec.validate(&model)?;
        if queue_capacity == 0 {
            return Err(crate::LlmError::BadConfig("queue_capacity must be >= 1"));
        }
        let mut arrivals = ArrivalGen::new(spec.arrival.clone(), seed)?;
        let first = arrivals.next_after(0.0);
        let mut engine = LlmEngine {
            model,
            spec,
            queue_capacity,
            arrivals,
            len_rng: StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95),
            now: 0.0,
            heap: BinaryHeap::new(),
            seq: 0,
            queue: VecDeque::new(),
            running: Vec::new(),
            step: None,
            kv_used: 0,
            spare: Vec::new(),
            arrivals_total: 0,
            completions_total: 0,
            dropped_total: 0,
            preemptions_total: 0,
            steps_total: 0,
            events_total: 0,
            prefill_tokens_total: 0,
            decode_tokens_total: 0,
            emitted_completed_total: 0,
            monotone: true,
            last_event_at: 0.0,
        };
        engine.push(first, EventKind::Arrival);
        Ok(engine)
    }

    /// Simulation clock (s).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Queued (not yet admitted) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests resident in the continuous batch.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// KV tokens currently reserved.
    pub fn kv_used_tokens(&self) -> usize {
        self.kv_used
    }

    /// Lifetime arrivals.
    pub fn arrivals_total(&self) -> u64 {
        self.arrivals_total
    }

    /// Lifetime completions.
    pub fn completions_total(&self) -> u64 {
        self.completions_total
    }

    /// Lifetime load-shed (queue-full) drops.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Lifetime cache-pressure preemptions.
    pub fn preemptions_total(&self) -> u64 {
        self.preemptions_total
    }

    /// Lifetime scheduler steps executed.
    pub fn steps_total(&self) -> u64 {
        self.steps_total
    }

    /// Lifetime heap events processed.
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// Lifetime prompt tokens materialized (recompute included).
    pub fn prefill_tokens_total(&self) -> u64 {
        self.prefill_tokens_total
    }

    /// Lifetime decode tokens emitted.
    pub fn decode_tokens_total(&self) -> u64 {
        self.decode_tokens_total
    }

    /// Whether every event processed so far carried a timestamp no
    /// earlier than its predecessor's.
    pub fn timestamps_monotone(&self) -> bool {
        self.monotone
    }

    /// Request conservation: every arrival is completed, dropped,
    /// queued or resident.
    pub fn conserved(&self) -> bool {
        self.arrivals_total
            == self.completions_total
                + self.dropped_total
                + self.queue.len() as u64
                + self.running.len() as u64
    }

    /// Token conservation: every decode token ever emitted is held by a
    /// completed, resident or re-queued request — preemption must not
    /// create or destroy emitted tokens.
    pub fn tokens_conserved(&self) -> bool {
        let live: u64 = self
            .running
            .iter()
            .chain(self.queue.iter())
            .map(|r| r.generated as u64)
            .sum();
        self.decode_tokens_total == self.emitted_completed_total + live
    }

    /// KV accounting invariant: the reservation counter equals the sum
    /// of resident contexts and never exceeds the budget.
    pub fn kv_accounted(&self) -> bool {
        let sum: usize = self.running.iter().map(Request::context).sum();
        self.kv_used == sum && self.kv_used <= self.model.kv_budget_tokens
    }

    /// Scales the arrival intensity (scheduled burst/ebb); takes effect
    /// from the next drawn arrival.
    ///
    /// # Errors
    /// [`crate::LlmError::BadConfig`] on a non-positive scale.
    pub fn set_intensity_scale(&mut self, scale: f64) -> Result<()> {
        self.arrivals.set_intensity_scale(scale)?;
        Ok(())
    }

    fn push(&mut self, at: f64, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Event {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Admits queued requests, relieves KV pressure, assembles and
    /// launches the next scheduler step. No-op when there is no work.
    fn schedule_step(&mut self, t: f64, f_eff_mhz: f64, stats: &mut ServeWindowStats) {
        debug_assert!(self.step.is_none());
        // Admission: FIFO, blocked head-of-line — a request joins when
        // the batch has a slot and its full context fits the cache.
        while self.running.len() < self.model.max_batch {
            let Some(front) = self.queue.front() else {
                break;
            };
            if self.kv_used + front.context() > self.model.kv_budget_tokens {
                break;
            }
            let req = self.queue.pop_front().expect("front checked");
            self.kv_used += req.context();
            self.running.push(req);
        }
        if self.running.is_empty() {
            return;
        }
        let chunked = self.model.chunk_tokens.is_some();
        // Cache-pressure relief: every decode-eligible request grows its
        // context by one this step; preempt the youngest resident until
        // the growth fits (validation guarantees a lone request always
        // does). In unchunked mode a pending prefill stalls all decodes,
        // so there is no growth to make room for.
        loop {
            let prefill_pending = self.running.iter().any(|r| r.prefill_remaining() > 0);
            let n_decode = if !chunked && prefill_pending {
                0
            } else {
                self.running
                    .iter()
                    .filter(|r| r.prefill_remaining() == 0)
                    .count()
            };
            if self.kv_used + n_decode <= self.model.kv_budget_tokens || self.running.len() <= 1 {
                break;
            }
            let mut victim = self.running.pop().expect("non-empty");
            self.kv_used -= victim.context();
            victim.ctx_done = 0;
            self.queue.push_front(victim);
            self.preemptions_total += 1;
            stats.preemptions += 1;
        }
        // Assemble the step: one prompt chunk (the oldest incomplete
        // context) plus a decode token for every context-complete
        // request — or, unchunked, the whole prompt with decode stalled.
        let mut decoders = std::mem::take(&mut self.spare);
        decoders.clear();
        let mut prefill_req = None;
        let mut prefill_tokens = 0;
        for (i, r) in self.running.iter().enumerate() {
            if prefill_req.is_none() && r.prefill_remaining() > 0 {
                prefill_req = Some(i);
                prefill_tokens = match self.model.chunk_tokens {
                    Some(chunk) => chunk.min(r.prefill_remaining()),
                    None => r.prefill_remaining(),
                };
            }
        }
        if chunked || prefill_req.is_none() {
            for (i, r) in self.running.iter().enumerate() {
                if r.prefill_remaining() == 0 {
                    decoders.push(i);
                }
            }
        }
        if prefill_tokens == 0 && decoders.is_empty() {
            self.spare = decoders;
            return;
        }
        let kv_read: usize = decoders.iter().map(|&i| self.running[i].context()).sum();
        let prefill_s = if prefill_tokens > 0 {
            self.model.prefill_s(prefill_tokens, f_eff_mhz)
        } else {
            0.0
        };
        let decode_s = if decoders.is_empty() {
            0.0
        } else {
            self.model.decode_step_s(kv_read, f_eff_mhz)
        };
        let total = self.model.step_overhead_s + prefill_s + decode_s;
        let prefill_frac = prefill_s / (prefill_s + decode_s);
        self.steps_total += 1;
        self.step = Some(Step {
            started_at: t,
            done_at: t + total,
            prefill_req,
            prefill_tokens,
            decoders,
            prefill_frac,
        });
        self.push(t + total, EventKind::StepDone);
    }

    /// Applies a completed step: materialized prefill, emitted tokens,
    /// completions, and the per-phase busy split.
    fn finish_step(&mut self, window_start: f64, stats: &mut ServeWindowStats) {
        let step = self.step.take().expect("step-done event implies a step");
        let done = step.done_at;
        let dur = done - step.started_at.max(window_start);
        stats.prefill_busy_s += step.prefill_frac * dur;
        stats.decode_busy_s += (1.0 - step.prefill_frac) * dur;
        if let Some(i) = step.prefill_req {
            let r = &mut self.running[i];
            debug_assert!(step.prefill_tokens <= r.prefill_remaining());
            r.ctx_done += step.prefill_tokens;
            self.prefill_tokens_total += step.prefill_tokens as u64;
            stats.prefill_tokens += step.prefill_tokens;
        }
        for &i in &step.decoders {
            let r = &mut self.running[i];
            debug_assert_eq!(r.prefill_remaining(), 0);
            // The decode step writes the new token's KV entry as a side
            // effect of the attention pass: context and materialized
            // context grow together, so the request stays decode-ready.
            r.generated += 1;
            r.ctx_done += 1;
            self.kv_used += 1;
            self.decode_tokens_total += 1;
            stats.decode_tokens += 1;
            if r.ttft_recorded {
                stats.inter_token_s.push(done - r.last_token_at);
            } else {
                stats.ttft_s.push(done - r.arrived_at);
                r.ttft_recorded = true;
            }
            r.last_token_at = done;
        }
        stats.batches += 1;
        stats
            .batch_sizes
            .push(step.decoders.len() + usize::from(step.prefill_req.is_some()));
        self.spare = step.decoders;
        let mut freed = 0;
        let completions = &mut self.completions_total;
        let emitted = &mut self.emitted_completed_total;
        self.running.retain(|r| {
            if r.generated == r.output {
                freed += r.context();
                stats.completions += 1;
                stats.request_latencies.push(done - r.arrived_at);
                *completions += 1;
                *emitted += r.generated as u64;
                false
            } else {
                true
            }
        });
        self.kv_used -= freed;
    }

    /// Advances the engine by `window_s` seconds with the effective core
    /// frequency `f_eff_mhz` in force, writing the window's statistics
    /// into `stats` (cleared first; its buffers are recycled). Steps
    /// launched during the window use the window's frequency; a step
    /// already in flight keeps the duration it was launched with.
    pub fn advance_into(&mut self, window_s: f64, f_eff_mhz: f64, stats: &mut ServeWindowStats) {
        debug_assert!(window_s > 0.0 && f_eff_mhz > 0.0);
        let start = self.now;
        let end = start + window_s;
        stats.clear_for_window(window_s);

        while let Some(&Event { at, .. }) = self.heap.peek() {
            if at > end {
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            self.events_total += 1;
            stats.events += 1;
            self.monotone &= ev.at >= self.last_event_at;
            self.last_event_at = ev.at;
            self.now = ev.at.max(self.now);
            match ev.kind {
                EventKind::Arrival => {
                    self.arrivals_total += 1;
                    stats.arrivals += 1;
                    let next = self.arrivals.next_after(ev.at);
                    self.push(next, EventKind::Arrival);
                    // Lengths are drawn for every arrival, admitted or
                    // shed, so the trace is a pure function of the seed.
                    let prompt = self.spec.prompt.sample(&mut self.len_rng);
                    let output = self.spec.output.sample(&mut self.len_rng);
                    if self.queue.len() >= self.queue_capacity {
                        self.dropped_total += 1;
                        stats.dropped += 1;
                    } else {
                        self.queue.push_back(Request {
                            arrived_at: ev.at,
                            prompt,
                            output,
                            ctx_done: 0,
                            generated: 0,
                            ttft_recorded: false,
                            last_token_at: ev.at,
                        });
                        if self.step.is_none() {
                            self.schedule_step(ev.at, f_eff_mhz, stats);
                        }
                    }
                }
                EventKind::StepDone => {
                    self.finish_step(start, stats);
                    self.schedule_step(ev.at, f_eff_mhz, stats);
                }
            }
        }

        // Partial busy time of a step still in flight at window end.
        if let Some(s) = &self.step {
            let dur = end.min(s.done_at) - s.started_at.max(start);
            stats.prefill_busy_s += s.prefill_frac * dur;
            stats.decode_busy_s += (1.0 - s.prefill_frac) * dur;
        }
        self.now = end;
        stats.busy_fraction = ((stats.prefill_busy_s + stats.decode_busy_s) / window_s).min(1.0);
        stats.queue_len_end = self.queue.len();
        stats.kv_used_tokens_end = self.kv_used;
        stats.kv_budget_tokens = self.model.kv_budget_tokens;
    }

    /// Allocating convenience wrapper over
    /// [`LlmEngine::advance_into`].
    pub fn advance(&mut self, window_s: f64, f_eff_mhz: f64) -> ServeWindowStats {
        let mut stats = ServeWindowStats::default();
        self.advance_into(window_s, f_eff_mhz, &mut stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TokenRange;
    use capgpu_serve::ArrivalProcess;

    fn model() -> LlmServiceModel {
        LlmServiceModel {
            f_max_mhz: 1380.0,
            prefill_tok_s: 8000.0,
            gamma_prefill: 0.95,
            decode_base_s: 0.02,
            decode_kv_coeff_s: 1.5e-7,
            gamma_decode: 0.2,
            step_overhead_s: 5e-4,
            max_batch: 32,
            kv_budget_tokens: 60_000,
            chunk_tokens: Some(512),
            gpu_util_prefill: 0.95,
            gpu_util_decode: 0.55,
        }
    }

    fn spec(rate: f64) -> LlmTaskSpec {
        LlmTaskSpec {
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            prompt: TokenRange { lo: 200, hi: 600 },
            output: TokenRange { lo: 40, hi: 120 },
            ttft_slo_s: 0.6,
            itl_slo_s: 0.08,
        }
    }

    fn engine(rate: f64, seed: u64) -> LlmEngine {
        LlmEngine::new(model(), spec(rate), 256, seed).unwrap()
    }

    #[test]
    fn underload_completes_requests_and_conserves() {
        let mut e = engine(1.5, 7);
        let mut arrivals = 0;
        let mut completions = 0;
        for _ in 0..240 {
            let s = e.advance(1.0, 1380.0);
            arrivals += s.arrivals;
            completions += s.completions;
            assert!(e.conserved(), "request conservation broke");
            assert!(e.tokens_conserved(), "token conservation broke");
            assert!(e.kv_accounted(), "kv accounting broke");
        }
        assert!(arrivals > 250, "arrivals {arrivals}");
        assert!(
            arrivals - completions < 20,
            "{arrivals} vs {completions} completed"
        );
        assert_eq!(e.dropped_total(), 0);
        assert!(e.timestamps_monotone());
    }

    #[test]
    fn ttft_and_itl_samples_flow() {
        let mut e = engine(1.5, 11);
        let mut ttft = 0;
        let mut itl = 0;
        let mut decoded = 0u64;
        for _ in 0..120 {
            let s = e.advance(1.0, 1380.0);
            ttft += s.ttft_s.len();
            itl += s.inter_token_s.len();
            decoded += s.decode_tokens as u64;
            for &t in &s.ttft_s {
                assert!(t > 0.0);
            }
            for &g in &s.inter_token_s {
                assert!(g > 0.0);
            }
        }
        // Every decode token is exactly one TTFT or one ITL sample.
        assert_eq!(ttft as u64 + itl as u64, decoded);
        assert_eq!(decoded, e.decode_tokens_total());
        assert!(ttft > 50 && itl > 1000);
    }

    #[test]
    fn continuous_batching_keeps_decode_flowing_under_chunking() {
        // At a rate where prefills keep arriving, chunked mode still
        // emits decode tokens in nearly every step window.
        let mut e = engine(3.0, 13);
        for _ in 0..30 {
            e.advance(1.0, 1380.0);
        }
        let s = e.advance(10.0, 1380.0);
        assert!(s.prefill_tokens > 0 && s.decode_tokens > 0);
        assert!(s.prefill_busy_s > 0.0 && s.decode_busy_s > 0.0);
        assert!(s.busy_fraction > 0.5);
    }

    #[test]
    fn kv_pressure_preempts_and_recovers() {
        // Tiny cache: two mid-size requests cannot both finish resident.
        let mut m = model();
        m.kv_budget_tokens = 900;
        m.max_batch = 8;
        let sp = LlmTaskSpec {
            arrival: ArrivalProcess::Poisson { rate_rps: 4.0 },
            prompt: TokenRange { lo: 300, hi: 400 },
            output: TokenRange { lo: 200, hi: 400 },
            ttft_slo_s: 2.0,
            itl_slo_s: 0.2,
        };
        let mut e = LlmEngine::new(m, sp, 64, 17).unwrap();
        let mut preemptions = 0;
        for _ in 0..300 {
            let s = e.advance(1.0, 1380.0);
            preemptions += s.preemptions;
            assert!(e.kv_accounted(), "kv exceeded budget or drifted");
            assert!(e.tokens_conserved(), "preemption lost emitted tokens");
            assert!(e.conserved());
        }
        assert!(preemptions > 0, "tiny cache never preempted");
        // The cache bounds the batch to ~2 residents, so throughput is
        // KV-bound — but the oldest resident must keep finishing.
        assert!(e.completions_total() > 30, "pressure stalled the engine");
    }

    #[test]
    fn unchunked_prefill_stalls_decode_harder() {
        // The same workload with and without chunked prefill: unchunked
        // runs whole prompts ahead of decode, so the worst inter-token
        // gap grows past the chunked engine's.
        let worst_itl = |chunk: Option<usize>| {
            let mut m = model();
            m.chunk_tokens = chunk;
            let mut e = LlmEngine::new(m, spec(2.5), 256, 19).unwrap();
            let mut worst = 0.0_f64;
            for _ in 0..180 {
                let s = e.advance(1.0, 1380.0);
                worst = s.inter_token_s.iter().cloned().fold(worst, f64::max);
            }
            worst
        };
        let chunked = worst_itl(Some(256));
        let unchunked = worst_itl(None);
        assert!(
            unchunked > 1.3 * chunked,
            "unchunked worst ITL {unchunked} vs chunked {chunked}"
        );
    }

    #[test]
    fn prefill_slows_with_frequency_decode_barely_does() {
        // Prefill-heavy workload: long prompts, one-token outputs.
        let share_and_tps = |prompt: TokenRange, output: TokenRange, f: f64| {
            let m = model();
            let sp = LlmTaskSpec {
                arrival: ArrivalProcess::Poisson { rate_rps: 1.0 },
                prompt,
                output,
                ttft_slo_s: 5.0,
                itl_slo_s: 1.0,
            };
            let mut e = LlmEngine::new(m, sp, 256, 23).unwrap();
            let mut pre = 0.0;
            let mut dec = 0.0;
            let mut toks = 0usize;
            for _ in 0..200 {
                let s = e.advance(1.0, f);
                pre += s.prefill_busy_s;
                dec += s.decode_busy_s;
                toks += s.prefill_tokens + s.decode_tokens;
            }
            (pre / (pre + dec), toks as f64 / 200.0)
        };
        let long_prompt = TokenRange { lo: 2000, hi: 3000 };
        let short_out = TokenRange { lo: 2, hi: 4 };
        let (share_fast, _) = share_and_tps(long_prompt, short_out, 1380.0);
        assert!(share_fast > 0.8, "prefill share {share_fast}");
        // Decode-heavy workload keeps a low prefill share.
        let short_prompt = TokenRange { lo: 30, hi: 60 };
        let long_out = TokenRange { lo: 250, hi: 400 };
        let (share_dec, tps_dec_fast) = share_and_tps(short_prompt, long_out, 1380.0);
        assert!(share_dec < 0.2, "prefill share {share_dec}");
        // Halving frequency barely dents decode-side token throughput.
        let (_, tps_dec_slow) = share_and_tps(short_prompt, long_out, 690.0);
        assert!(
            tps_dec_slow > 0.8 * tps_dec_fast,
            "decode throughput fell {tps_dec_fast} -> {tps_dec_slow}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut e = engine(2.0, seed);
            let mut sig = Vec::new();
            for k in 0..90 {
                let f = if k % 2 == 0 { 1380.0 } else { 900.0 };
                let s = e.advance(1.0, f);
                sig.push((
                    s.arrivals,
                    s.completions,
                    s.prefill_tokens,
                    s.decode_tokens,
                    s.ttft_s.clone(),
                    s.inter_token_s.clone(),
                ));
            }
            (sig, e.events_total(), e.kv_used_tokens())
        };
        assert_eq!(run(23), run(23));
        assert_ne!(run(23).0, run(24).0);
    }

    #[test]
    fn overload_saturates_and_sheds() {
        let mut e = LlmEngine::new(model(), spec(200.0), 64, 29).unwrap();
        let mut last = ServeWindowStats::default();
        for _ in 0..60 {
            e.advance_into(1.0, 1380.0, &mut last);
        }
        assert!(last.busy_fraction > 0.95, "{}", last.busy_fraction);
        assert!(e.dropped_total() > 0, "queue never filled");
        assert!(e.conserved());
    }

    #[test]
    fn burst_scale_shifts_load() {
        let mut e = engine(1.0, 31);
        let mut before = 0;
        for _ in 0..60 {
            before += e.advance(1.0, 1380.0).arrivals;
        }
        e.set_intensity_scale(4.0).unwrap();
        let mut after = 0;
        for _ in 0..60 {
            after += e.advance(1.0, 1380.0).arrivals;
        }
        assert!(
            after as f64 > 2.5 * before as f64,
            "before {before} after {after}"
        );
    }
}
