//! Configuration for the phase-aware LLM serving layer: the two-phase
//! service model, prompt/output length distributions and per-device
//! workload specs, all validated against degenerate inputs with
//! explicit, field-naming error messages.

use capgpu_serve::ArrivalProcess;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{LlmError, Result};

/// An inclusive token-count range; lengths are drawn uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenRange {
    /// Minimum length (tokens), at least 1.
    pub lo: usize,
    /// Maximum length (tokens), at least `lo`.
    pub hi: usize,
}

impl TokenRange {
    /// A fixed length (`lo == hi`).
    pub fn fixed(n: usize) -> Self {
        TokenRange { lo: n, hi: n }
    }

    /// Validates the range: zero-length prompts or outputs are rejected
    /// because a request must do at least one token of work per phase.
    ///
    /// # Errors
    /// [`LlmError::BadConfig`] naming the violated bound.
    pub fn validate(&self) -> Result<()> {
        if self.lo == 0 {
            return Err(LlmError::BadConfig(
                "token range lower bound must be >= 1 (zero-length prompts/outputs are degenerate)",
            ));
        }
        if self.lo > self.hi {
            return Err(LlmError::BadConfig(
                "token range lower bound must not exceed its upper bound",
            ));
        }
        Ok(())
    }

    /// Draws a length uniformly from `[lo, hi]`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi + 1)
        }
    }
}

/// The two-phase service-time model for one GPU.
///
/// Prefill is compute-bound: time scales linearly with prompt tokens
/// and follows the γ frequency law with a large exponent. Decode is
/// memory-bandwidth-bound: each step pays a fixed base plus a KV-read
/// term proportional to the context tokens scanned, with a *small*
/// exponent — lowering the core clock on a decode-heavy device saves
/// little time budget and therefore little power, the asymmetry the
/// phase-aware controller exploits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlmServiceModel {
    /// Maximum core frequency (MHz); the frequency laws normalize here.
    pub f_max_mhz: f64,
    /// Prefill throughput at `f_max_mhz` (prompt tokens per second).
    pub prefill_tok_s: f64,
    /// Frequency-scaling exponent of the prefill phase (compute-bound,
    /// near 1).
    pub gamma_prefill: f64,
    /// Fixed decode-step time at `f_max_mhz` (seconds): kernel launch
    /// plus weight-streaming cost, independent of context length.
    pub decode_base_s: f64,
    /// Additional decode-step time per KV token read (seconds/token):
    /// the attention pass scans every resident context token.
    pub decode_kv_coeff_s: f64,
    /// Frequency-scaling exponent of the decode phase (memory-bound,
    /// near 0).
    pub gamma_decode: f64,
    /// Fixed per-step scheduler overhead (seconds), frequency-blind.
    pub step_overhead_s: f64,
    /// Maximum requests resident in the continuous batch.
    pub max_batch: usize,
    /// KV-cache capacity in tokens.
    pub kv_budget_tokens: usize,
    /// Chunked prefill: interleave at most this many prompt tokens with
    /// each decode step instead of running prompt passes to completion
    /// (`None` = unchunked, decode stalls behind whole prefills).
    pub chunk_tokens: Option<usize>,
    /// GPU utilization while the device is prefill-busy (power model
    /// coupling; compute-bound prefill drives the core hard).
    pub gpu_util_prefill: f64,
    /// GPU utilization while the device is decode-busy — lower, because
    /// the core idles behind memory in the decode regime.
    pub gpu_util_decode: f64,
}

impl LlmServiceModel {
    /// Validates the model, naming the first offending field.
    ///
    /// # Errors
    /// [`LlmError::BadConfig`].
    pub fn validate(&self) -> Result<()> {
        let pos = |x: f64| x > 0.0 && x.is_finite();
        let nonneg = |x: f64| x >= 0.0 && x.is_finite();
        if !pos(self.f_max_mhz) {
            return Err(LlmError::BadConfig("f_max must be positive and finite"));
        }
        if !pos(self.prefill_tok_s) {
            return Err(LlmError::BadConfig(
                "prefill_tok_s must be positive and finite",
            ));
        }
        if !pos(self.gamma_prefill) {
            return Err(LlmError::BadConfig(
                "gamma_prefill must be positive and finite",
            ));
        }
        if !pos(self.decode_base_s) {
            return Err(LlmError::BadConfig(
                "decode_base_s must be positive and finite",
            ));
        }
        if !nonneg(self.decode_kv_coeff_s) {
            return Err(LlmError::BadConfig(
                "decode_kv_coeff_s must be >= 0 and finite",
            ));
        }
        if !nonneg(self.gamma_decode) {
            return Err(LlmError::BadConfig("gamma_decode must be >= 0 and finite"));
        }
        if !nonneg(self.step_overhead_s) {
            return Err(LlmError::BadConfig(
                "step_overhead_s must be >= 0 and finite",
            ));
        }
        if self.max_batch == 0 {
            return Err(LlmError::BadConfig("max_batch must be >= 1"));
        }
        if self.kv_budget_tokens == 0 {
            return Err(LlmError::BadConfig(
                "kv_budget_tokens must be >= 1 (a zero KV budget admits nothing)",
            ));
        }
        if self.chunk_tokens == Some(0) {
            return Err(LlmError::BadConfig(
                "chunk_tokens must be >= 1 when chunked prefill is enabled",
            ));
        }
        let util = |x: f64| x > 0.0 && x <= 1.0;
        if !util(self.gpu_util_prefill) {
            return Err(LlmError::BadConfig("gpu_util_prefill must be in (0, 1]"));
        }
        if !util(self.gpu_util_decode) {
            return Err(LlmError::BadConfig("gpu_util_decode must be in (0, 1]"));
        }
        Ok(())
    }

    /// Prefill time for `tokens` prompt tokens at effective frequency
    /// `f_eff_mhz`.
    pub fn prefill_s(&self, tokens: usize, f_eff_mhz: f64) -> f64 {
        debug_assert!(f_eff_mhz > 0.0);
        let freq = (self.f_max_mhz / f_eff_mhz).powf(self.gamma_prefill);
        tokens as f64 / self.prefill_tok_s * freq
    }

    /// One decode step emitting a token for each participant, scanning
    /// `kv_read_tokens` of resident context in total.
    pub fn decode_step_s(&self, kv_read_tokens: usize, f_eff_mhz: f64) -> f64 {
        debug_assert!(f_eff_mhz > 0.0);
        let freq = (self.f_max_mhz / f_eff_mhz).powf(self.gamma_decode);
        (self.decode_base_s + kv_read_tokens as f64 * self.decode_kv_coeff_s) * freq
    }
}

/// One device's LLM workload: the arrival process plus the prompt and
/// output length distributions and per-token SLOs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmTaskSpec {
    /// Request arrival process.
    pub arrival: ArrivalProcess,
    /// Prompt-length distribution (tokens).
    pub prompt: TokenRange,
    /// Output-length distribution (tokens).
    pub output: TokenRange,
    /// Time-to-first-token SLO (seconds).
    pub ttft_slo_s: f64,
    /// Inter-token latency SLO (seconds).
    pub itl_slo_s: f64,
}

impl LlmTaskSpec {
    /// Validates the spec against a service model's KV budget.
    ///
    /// # Errors
    /// [`LlmError::BadConfig`].
    pub fn validate(&self, model: &LlmServiceModel) -> Result<()> {
        self.arrival.validate()?;
        self.prompt.validate()?;
        self.output.validate()?;
        // Deadlock freedom: the largest possible request must fit the
        // cache alone, otherwise admission can stall forever.
        if self.prompt.hi + self.output.hi > model.kv_budget_tokens {
            return Err(LlmError::BadConfig(
                "largest prompt + output must fit the KV budget (admission would deadlock)",
            ));
        }
        let pos = |x: f64| x > 0.0 && x.is_finite();
        if !pos(self.ttft_slo_s) {
            return Err(LlmError::BadConfig(
                "ttft_slo_s must be positive and finite",
            ));
        }
        if !pos(self.itl_slo_s) {
            return Err(LlmError::BadConfig("itl_slo_s must be positive and finite"));
        }
        Ok(())
    }
}

/// Server-level LLM serving configuration: one task per GPU device,
/// sharing a service model (homogeneous devices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmConfig {
    /// The shared two-phase service model.
    pub model: LlmServiceModel,
    /// One workload spec per GPU device, in device order.
    pub tasks: Vec<LlmTaskSpec>,
    /// Bounded request-queue capacity per device.
    pub queue_capacity: usize,
}

impl LlmConfig {
    /// Validates the model, every task and the queue bound.
    ///
    /// # Errors
    /// [`LlmError::BadConfig`].
    pub fn validate(&self) -> Result<()> {
        self.model.validate()?;
        if self.tasks.is_empty() {
            return Err(LlmError::BadConfig("llm config needs at least one task"));
        }
        for task in &self.tasks {
            task.validate(&self.model)?;
        }
        if self.queue_capacity == 0 {
            return Err(LlmError::BadConfig("queue_capacity must be >= 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model() -> LlmServiceModel {
        LlmServiceModel {
            f_max_mhz: 1380.0,
            prefill_tok_s: 8000.0,
            gamma_prefill: 0.95,
            decode_base_s: 0.02,
            decode_kv_coeff_s: 1.5e-7,
            gamma_decode: 0.2,
            step_overhead_s: 5e-4,
            max_batch: 32,
            kv_budget_tokens: 60_000,
            chunk_tokens: Some(512),
            gpu_util_prefill: 0.95,
            gpu_util_decode: 0.55,
        }
    }

    fn task() -> LlmTaskSpec {
        LlmTaskSpec {
            arrival: ArrivalProcess::Poisson { rate_rps: 2.0 },
            prompt: TokenRange { lo: 200, hi: 600 },
            output: TokenRange { lo: 80, hi: 200 },
            ttft_slo_s: 0.6,
            itl_slo_s: 0.08,
        }
    }

    #[test]
    fn model_validation_names_fields() {
        let msg = |m: LlmServiceModel| match m.validate() {
            Err(LlmError::BadConfig(s)) => s,
            Ok(()) => panic!("expected error"),
        };
        let mut m = model();
        m.prefill_tok_s = 0.0;
        assert!(msg(m).contains("prefill_tok_s"));
        let mut m = model();
        m.decode_base_s = -1.0;
        assert!(msg(m).contains("decode_base_s"));
        let mut m = model();
        m.gamma_decode = f64::NAN;
        assert!(msg(m).contains("gamma_decode"));
        let mut m = model();
        m.kv_budget_tokens = 0;
        assert!(msg(m).contains("kv_budget_tokens"));
        let mut m = model();
        m.chunk_tokens = Some(0);
        assert!(msg(m).contains("chunk_tokens"));
        let mut m = model();
        m.gpu_util_decode = 1.5;
        assert!(msg(m).contains("gpu_util_decode"));
        assert!(model().validate().is_ok());
    }

    #[test]
    fn token_range_rejects_degenerate_inputs() {
        assert!(TokenRange { lo: 0, hi: 5 }.validate().is_err());
        assert!(TokenRange { lo: 6, hi: 5 }.validate().is_err());
        assert!(TokenRange::fixed(1).validate().is_ok());
    }

    #[test]
    fn task_validation_enforces_kv_deadlock_freedom() {
        let m = model();
        let mut t = task();
        assert!(t.validate(&m).is_ok());
        t.prompt = TokenRange::fixed(59_990);
        t.output = TokenRange::fixed(11);
        match t.validate(&m) {
            Err(LlmError::BadConfig(s)) => assert!(s.contains("deadlock")),
            Ok(()) => panic!("oversized request must be rejected"),
        }
        let mut t = task();
        t.ttft_slo_s = 0.0;
        assert!(t.validate(&m).is_err());
        let mut t = task();
        t.itl_slo_s = f64::NAN;
        assert!(t.validate(&m).is_err());
    }

    #[test]
    fn config_validation() {
        let cfg = LlmConfig {
            model: model(),
            tasks: vec![task()],
            queue_capacity: 256,
        };
        assert!(cfg.validate().is_ok());
        let mut bad = cfg.clone();
        bad.tasks.clear();
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.queue_capacity = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn sampling_respects_bounds_and_frequency_laws_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        let r = TokenRange { lo: 10, hi: 20 };
        for _ in 0..200 {
            let n = r.sample(&mut rng);
            assert!((10..=20).contains(&n));
        }
        let m = model();
        // Prefill halves its speed roughly with frequency (γ ≈ 1)...
        let fast = m.prefill_s(1000, 1380.0);
        let slow = m.prefill_s(1000, 690.0);
        assert!(slow / fast > 1.8);
        // ...while decode barely notices the same cut (γ ≈ 0.2).
        let dfast = m.decode_step_s(10_000, 1380.0);
        let dslow = m.decode_step_s(10_000, 690.0);
        assert!(dslow / dfast < 1.2);
    }
}
