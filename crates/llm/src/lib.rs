//! Phase-aware LLM serving for CapGPU: two-phase requests, continuous
//! batching, and KV-cache pressure under a power cap.
//!
//! The one-shot serving layer (`capgpu-serve`) models a request as a
//! single unit of GPU work, which fits CNN-style inference but not LLM
//! inference, where each request is two very different regimes:
//!
//! * **Prefill** — the prompt is processed in one compute-bound pass
//!   whose cost scales with prompt length and responds strongly to core
//!   frequency (large γ).
//! * **Decode** — tokens are generated one at a time, each step reading
//!   the whole KV cache; the work is memory-bandwidth-bound and barely
//!   responds to core frequency (small γ), so capping a decode-heavy
//!   device buys almost no power back while inflating inter-token
//!   latency ("The Illusion of Power Capping in LLM Decode", PAPERS.md).
//!
//! This crate supplies the token level:
//!
//! * [`config`] — the two-phase service model ([`LlmServiceModel`]),
//!   prompt/output length distributions ([`TokenRange`]) and per-device
//!   workload specs ([`LlmTaskSpec`], [`LlmConfig`]) with hardened
//!   validation (zero-length prompts, zero KV budgets and other
//!   degenerate inputs are named explicitly).
//! * [`engine`] — [`LlmEngine`], a deterministic continuous batcher
//!   (iteration-level scheduling, vLLM-style): decodes proceed
//!   token-by-token while new prefills join the running set, with an
//!   optional chunked-prefill mode that interleaves a bounded prompt
//!   chunk with every decode step; KV-cache occupancy is accounted
//!   exactly, admission reserves a request's full context and cache
//!   pressure preempts the youngest request for recompute.
//!
//! Window statistics reuse [`capgpu_serve::ServeWindowStats`], extended
//! with per-phase busy time, token counters, KV occupancy and TTFT /
//! inter-token latency samples — the phase-mix signal the capping loop
//! consumes.
//!
//! ## Determinism
//!
//! Arrival times and prompt/output lengths come from seeded `StdRng`
//! streams owned by the engine; heap ties are broken by a monotone
//! sequence number. The same seed produces bit-identical token streams
//! across runs and thread counts, the invariant `capgpu::sweep` relies
//! on.

#![warn(missing_docs)]

pub mod config;
pub mod engine;

pub use config::{LlmConfig, LlmServiceModel, LlmTaskSpec, TokenRange};
pub use engine::LlmEngine;

/// Errors from the LLM serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LlmError {
    /// Invalid configuration.
    BadConfig(&'static str),
}

impl std::fmt::Display for LlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmError::BadConfig(m) => write!(f, "bad llm config: {m}"),
        }
    }
}

impl std::error::Error for LlmError {}

impl From<capgpu_serve::ServeError> for LlmError {
    fn from(e: capgpu_serve::ServeError) -> Self {
        match e {
            capgpu_serve::ServeError::BadConfig(m) => LlmError::BadConfig(m),
        }
    }
}

/// Result alias for the LLM serving layer.
pub type Result<T> = std::result::Result<T, LlmError>;
