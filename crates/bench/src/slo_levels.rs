//! SLO level calibration for the Fig. 8/9 experiments.
//!
//! §6.4: "we calculate the 30%, 50%, and 80% tail latencies for three
//! workloads and **their corresponding GPU frequencies using Equation
//! (8)**." — i.e. the levels are taken from the latency-vs-frequency law,
//! not from a single operating point: the "q% tail" SLO of a task is the
//! latency Eq. 8 predicts at the frequency sitting q% of the way down the
//! GPU's frequency range. An 80%-tail SLO therefore requires running in
//! the top 20% of the frequency range (tight); a 30%-tail SLO is met by
//! the bottom 70% (loose).

use capgpu::prelude::*;
use capgpu_control::latency::LatencyModel;

/// Calibrated tail-latency levels for each GPU task.
#[derive(Debug, Clone)]
pub struct SloLevels {
    /// 30% tail (loose) per task.
    pub tail30: Vec<f64>,
    /// 50% tail (median) per task.
    pub tail50: Vec<f64>,
    /// 80% tail (tight) per task.
    pub tail80: Vec<f64>,
}

/// Latency at the frequency `q/100` of the way from `f_min` to `f_max`,
/// per Eq. 8 with the controller's fitted γ.
fn level_at(model: &LatencyModel, f_min: f64, f_max: f64, q: f64) -> f64 {
    let f = f_min + (q / 100.0) * (f_max - f_min);
    model.latency(f)
}

/// Computes the §6.4 SLO levels for a scenario's GPU tasks.
///
/// # Panics
/// Panics if the scenario is invalid (latency-model construction fails).
pub fn compute(scenario: &Scenario) -> SloLevels {
    let gpu_devices: Vec<usize> = scenario
        .devices
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kind == capgpu_sim::DeviceKind::Gpu)
        .map(|(i, _)| i)
        .collect();
    let mut tail30 = Vec::new();
    let mut tail50 = Vec::new();
    let mut tail80 = Vec::new();
    for (task, model) in scenario.gpu_models.iter().enumerate() {
        let dev = gpu_devices[task];
        let f_min = scenario.devices[dev].freq_table.min();
        let f_max = scenario.devices[dev].freq_table.max();
        let lat =
            LatencyModel::new(model.e_min_s, scenario.gamma_fitted, f_max).expect("latency model");
        tail30.push(level_at(&lat, f_min, f_max, 30.0));
        tail50.push(level_at(&lat, f_min, f_max, 50.0));
        tail80.push(level_at(&lat, f_min, f_max, 80.0));
    }
    SloLevels {
        tail30,
        tail50,
        tail80,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_feasible() {
        let scenario = Scenario::paper_testbed(3);
        let levels = compute(&scenario);
        for t in 0..levels.tail50.len() {
            // Tighter tails are smaller latencies: 80% tail < 50% < 30%.
            assert!(levels.tail80[t] < levels.tail50[t], "task {t}: {levels:?}");
            assert!(levels.tail50[t] < levels.tail30[t], "task {t}: {levels:?}");
            // Every level stays above e_min: feasible below f_max even
            // with the runner's safety margin.
            assert!(
                levels.tail80[t] > scenario.gpu_models[t].e_min_s * 1.08,
                "task {t}: tail80 {} too close to e_min {}",
                levels.tail80[t],
                scenario.gpu_models[t].e_min_s
            );
        }
    }

    #[test]
    fn tail80_maps_to_top_of_frequency_range() {
        let scenario = Scenario::paper_testbed(3);
        let levels = compute(&scenario);
        // Required frequency for the tight SLO ≈ 80% up the range.
        let lat = capgpu_control::latency::LatencyModel::new(
            scenario.gpu_models[0].e_min_s,
            scenario.gamma_fitted,
            1350.0,
        )
        .unwrap();
        let floor = lat.frequency_floor(levels.tail80[0]).unwrap();
        let expected = 435.0 + 0.8 * (1350.0 - 435.0);
        assert!(
            (floor - expected).abs() < 1.0,
            "floor {floor} vs {expected}"
        );
    }
}
