//! **Figure 8** — Inference latency vs per-GPU SLOs under the baselines
//! (Safe Fixed-step and GPU-Only) with the §6.4 SLO schedule: all tasks
//! start at their 50%-tail SLO; at period 14, tasks t₂/t₃ tighten to the
//! 80%-tail level while t₁ relaxes to the 30%-tail level. Power cap:
//! 1000 W.
//!
//! Expected shape: neither baseline can allocate per-GPU frequencies, so
//! at least one task misses its (tightened) SLO.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig8`

use capgpu::config::ScheduledChange;
use capgpu::prelude::*;
use capgpu_bench::{fmt, slo_levels};

const SETPOINT: f64 = 1100.0;
const CHANGE_AT: usize = 14;
const PERIODS: usize = 60;

fn scenario(levels: &slo_levels::SloLevels) -> Scenario {
    Scenario::paper_testbed(42)
        .with_slos(vec![
            Some(levels.tail50[0]),
            Some(levels.tail50[1]),
            Some(levels.tail50[2]),
        ])
        .with_change(ScheduledChange::Slo {
            at_period: CHANGE_AT,
            task: 0,
            slo_s: levels.tail30[0], // relax t1
        })
        .with_change(ScheduledChange::Slo {
            at_period: CHANGE_AT,
            task: 1,
            slo_s: levels.tail80[1], // tighten t2
        })
        .with_change(ScheduledChange::Slo {
            at_period: CHANGE_AT,
            task: 2,
            slo_s: levels.tail80[2], // tighten t3
        })
}

fn main() {
    fmt::header("Figure 8: latency vs SLOs under Safe Fixed-step and GPU-Only");
    let levels = slo_levels::compute(&Scenario::paper_testbed(42));
    println!(
        "calibrated SLO levels (s/batch): 30% tail {:?}, 50% tail {:?}, 80% tail {:?}",
        levels.tail30, levels.tail50, levels.tail80
    );

    let report = SweepSpec::new(scenario(&levels))
        .setpoint(SETPOINT)
        .periods(PERIODS)
        .controller(ControllerSpec::SafeFixedStep { multiplier: 1 })
        .controller(ControllerSpec::GpuOnly)
        .run()
        .expect("sweep");
    let mut miss_rates = Vec::new();
    for trace in report.traces() {
        println!();
        println!("--- {} ---", trace.controller);
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "period", "lat t1", "slo t1", "lat t2", "slo t2", "lat t3", "slo t3"
        );
        for r in trace.records.iter().step_by(4) {
            println!(
                "{:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                r.period,
                r.gpu_mean_latency[0],
                r.slo[0].unwrap_or(f64::NAN),
                r.gpu_mean_latency[1],
                r.slo[1].unwrap_or(f64::NAN),
                r.gpu_mean_latency[2],
                r.slo[2].unwrap_or(f64::NAN),
            );
        }
        println!(
            "deadline miss rates: t1 {:.1}%, t2 {:.1}%, t3 {:.1}%",
            100.0 * trace.miss_rates[0],
            100.0 * trace.miss_rates[1],
            100.0 * trace.miss_rates[2]
        );
        miss_rates.push(trace.miss_rates.clone());
    }

    fmt::header("Shape checks vs paper Fig. 8");
    for (name, mr) in ["Safe Fixed-step", "GPU-Only"].iter().zip(&miss_rates) {
        let worst = mr.iter().cloned().fold(0.0_f64, f64::max);
        fmt::check(
            &format!("{name} violates at least one SLO"),
            worst > 0.05,
            &format!("worst task miss rate {:.1}%", 100.0 * worst),
        );
    }
}
