//! **Figure 7** — Application performance under the cap at 1000 W:
//! (a) per-task GPU inference throughput, (b) CPU throughput (feature
//! subsets/s), (c) per-task GPU batch latency, (d) CPU latency (seconds
//! per subset evaluation).
//!
//! Expected shapes: CapGPU delivers the highest GPU throughput and lowest
//! GPU latency; its CPU latency may be slightly worse than GPU-Only
//! (which pins the CPU at max) — acceptable because preprocessing has no
//! SLO (§6.3).
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig7`

use capgpu::prelude::*;
use capgpu_bench::{fmt, PAPER_PERIODS, PAPER_TAIL_FRACTION};

const SETPOINT: f64 = 1000.0;

fn main() {
    fmt::header(&format!(
        "Figure 7: application performance at a {SETPOINT:.0} W cap"
    ));
    let report = SweepSpec::new(Scenario::paper_testbed(42))
        .setpoint(SETPOINT)
        .periods(PAPER_PERIODS)
        .controller(ControllerSpec::CapGpu)
        .controller(ControllerSpec::GpuOnly)
        .controller(ControllerSpec::SafeFixedStep { multiplier: 1 })
        .run()
        .expect("sweep");
    let summaries: Vec<RunSummary> = report.traces().map(RunSummary::from_trace).collect();
    let tasks = ["t1 ResNet50", "t2 Swin-T", "t3 VGG16"];

    println!("(a) GPU inference throughput (img/s):");
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10}",
        "controller", tasks[0], tasks[1], tasks[2], "total"
    );
    for s in &summaries {
        let total: f64 = s.gpu_throughput.iter().sum();
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>12.1} {:>10.1}",
            s.controller, s.gpu_throughput[0], s.gpu_throughput[1], s.gpu_throughput[2], total
        );
    }

    println!();
    println!("(b) CPU throughput (feature subsets/s):");
    for s in &summaries {
        println!("{:<28} {:>12.1}", s.controller, s.cpu_throughput);
    }

    println!();
    println!("(c) GPU batch inference latency (s/batch):");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "controller", tasks[0], tasks[1], tasks[2]
    );
    for s in &summaries {
        println!(
            "{:<28} {:>12.4} {:>12.4} {:>12.4}",
            s.controller, s.gpu_latency[0], s.gpu_latency[1], s.gpu_latency[2]
        );
    }

    println!();
    println!("(d) CPU latency (s per subset evaluation):");
    for s in &summaries {
        println!("{:<28} {:>12.4}", s.controller, 1.0 / s.cpu_throughput);
    }

    fmt::header("Shape checks vs paper Fig. 7");
    let total_thr = |i: usize| -> f64 { summaries[i].gpu_throughput.iter().sum() };
    fmt::check(
        "CapGPU has the highest total GPU throughput",
        total_thr(0) >= total_thr(1) && total_thr(0) >= total_thr(2),
        &format!(
            "CapGPU {:.1}, GPU-Only {:.1}, SafeFS {:.1} img/s",
            total_thr(0),
            total_thr(1),
            total_thr(2)
        ),
    );
    let mean_lat = |i: usize| capgpu_linalg::stats::mean(&summaries[i].gpu_latency);
    fmt::check(
        "CapGPU has the lowest mean GPU latency",
        mean_lat(0) <= mean_lat(1) && mean_lat(0) <= mean_lat(2),
        &format!(
            "CapGPU {:.4}, GPU-Only {:.4}, SafeFS {:.4} s",
            mean_lat(0),
            mean_lat(1),
            mean_lat(2)
        ),
    );
    fmt::check(
        "CapGPU CPU latency slightly worse than GPU-Only (CPU not pinned at max)",
        summaries[0].cpu_throughput <= summaries[1].cpu_throughput,
        &format!(
            "CapGPU {:.1} vs GPU-Only {:.1} subsets/s",
            summaries[0].cpu_throughput, summaries[1].cpu_throughput
        ),
    );
    let _ = PAPER_TAIL_FRACTION;
}
