//! **Figure 9** — Inference latency under CapGPU with the same §6.4 SLO
//! schedule as Fig. 8: start at 50%-tail SLOs, then at period 14 tighten
//! t₂/t₃ to the 80%-tail level and relax t₁ to the 30%-tail level, at a
//! 1000 W cap.
//!
//! Expected shape: CapGPU adjusts each GPU's frequency independently
//! through the SLO frequency-floor constraints (10b/10c) and meets every
//! SLO, including after the change.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig9`

use capgpu::config::ScheduledChange;
use capgpu::prelude::*;
use capgpu_bench::{fmt, slo_levels};

const SETPOINT: f64 = 1100.0;
const CHANGE_AT: usize = 14;
const PERIODS: usize = 60;

fn main() {
    fmt::header("Figure 9: latency vs SLOs under CapGPU");
    let levels = slo_levels::compute(&Scenario::paper_testbed(42));
    println!(
        "calibrated SLO levels (s/batch): 30% tail {:?}, 50% tail {:?}, 80% tail {:?}",
        levels.tail30, levels.tail50, levels.tail80
    );
    let scenario = Scenario::paper_testbed(42)
        .with_slos(vec![
            Some(levels.tail50[0]),
            Some(levels.tail50[1]),
            Some(levels.tail50[2]),
        ])
        .with_change(ScheduledChange::Slo {
            at_period: CHANGE_AT,
            task: 0,
            slo_s: levels.tail30[0],
        })
        .with_change(ScheduledChange::Slo {
            at_period: CHANGE_AT,
            task: 1,
            slo_s: levels.tail80[1],
        })
        .with_change(ScheduledChange::Slo {
            at_period: CHANGE_AT,
            task: 2,
            slo_s: levels.tail80[2],
        });
    let report = SweepSpec::new(scenario)
        .setpoint(SETPOINT)
        .periods(PERIODS)
        .controller(ControllerSpec::CapGpu)
        .run()
        .expect("sweep");
    let trace = report.cells[0].trace();

    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "period", "lat t1", "slo t1", "lat t2", "slo t2", "lat t3", "slo t3", "power"
    );
    for r in trace.records.iter().step_by(2) {
        println!(
            "{:>6} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.1}",
            r.period,
            r.gpu_mean_latency[0],
            r.slo[0].unwrap_or(f64::NAN),
            r.gpu_mean_latency[1],
            r.slo[1].unwrap_or(f64::NAN),
            r.gpu_mean_latency[2],
            r.slo[2].unwrap_or(f64::NAN),
            r.avg_power,
        );
    }
    println!(
        "deadline miss rates: t1 {:.2}%, t2 {:.2}%, t3 {:.2}%",
        100.0 * trace.miss_rates[0],
        100.0 * trace.miss_rates[1],
        100.0 * trace.miss_rates[2]
    );

    fmt::header("Shape checks vs paper Fig. 9");
    // Allow the one-period adaptation transient right after the change.
    let adapted: Vec<&capgpu::runner::PeriodRecord> = trace
        .records
        .iter()
        .filter(|r| r.period >= CHANGE_AT + 2)
        .collect();
    for t in 0..3 {
        let misses: usize = adapted.iter().map(|r| r.slo_misses[t]).sum();
        let batches: usize = adapted.iter().map(|r| r.batches[t]).sum();
        let rate = if batches > 0 {
            misses as f64 / batches as f64
        } else {
            0.0
        };
        fmt::check(
            &format!("t{} meets its SLO after adaptation", t + 1),
            rate < 0.02,
            &format!(
                "post-change miss rate {:.2}% ({misses}/{batches})",
                100.0 * rate
            ),
        );
    }
    let (mean, _) = trace.steady_state_power(0.5);
    fmt::check(
        "power stays capped at the set point while meeting SLOs",
        (mean - SETPOINT).abs() < 15.0,
        &format!("steady-state power {mean:.1} W"),
    );
    // Per-device differentiation (the capability GPU-Only lacks): after
    // the change the tightened tasks' frequency floors rise and the
    // relaxed task's floor falls. Device order: [CPU, GPU0, GPU1, GPU2].
    let before = &trace.records[CHANGE_AT - 1].floors;
    let after = trace.records.last().expect("records").floors.clone();
    fmt::check(
        "tightened tasks' floors rose after the change (t2, t3)",
        after[2] > before[2] && after[3] > before[3],
        &format!(
            "t2 {:.0} → {:.0} MHz, t3 {:.0} → {:.0} MHz",
            before[2], after[2], before[3], after[3]
        ),
    );
    fmt::check(
        "relaxed task's floor fell after the change (t1)",
        after[1] < before[1],
        &format!("t1 {:.0} → {:.0} MHz", before[1], after[1]),
    );
}
