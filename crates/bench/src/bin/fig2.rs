//! **Figure 2** — (a) system identification: measured vs predicted power
//! for a 1-CPU + 1-GPU system (paper: R² = 0.96); (b) measured vs
//! predicted inference latency under the power-law model (paper: γ = 0.91,
//! R² ≈ 0.91).
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig2`

use capgpu::prelude::*;
use capgpu_bench::fmt;
use capgpu_control::latency::LatencyModel;
use capgpu_sim::presets;
use capgpu_workload::models;

fn main() {
    fig2a();
    fig2b();
}

/// One CPU + one GPU, the paper's §4.2 example schedule: sweep the GPU
/// 435→1350 MHz at CPU 1.4 GHz, then the CPU 1.0→2.1 GHz at GPU 495 MHz.
fn fig2a() {
    fmt::header("Figure 2(a): system identification, measured vs predicted power");
    let mut scenario = Scenario::paper_testbed(42);
    scenario.devices = vec![presets::xeon_gold_5215(), presets::tesla_v100()];
    scenario.gpu_models = vec![models::resnet50()];
    scenario.slos = vec![None];
    let mut runner = ExperimentRunner::new(scenario, 900.0).expect("scenario");
    let fitted = runner.identify().expect("identification");
    println!(
        "fitted model: p = {:.4}·f_cpu + {:.4}·f_gpu + {:.1}   (W, MHz)",
        fitted.model.gains()[0],
        fitted.model.gains()[1],
        fitted.model.offset()
    );
    println!(
        "R² = {:.4}   RMSE = {:.2} W   over {} samples",
        fitted.r_squared, fitted.rmse_watts, fitted.n_samples
    );
    fmt::check(
        "identification quality matches paper (R² ≈ 0.96)",
        fitted.r_squared > 0.93,
        &format!("R² = {:.4}", fitted.r_squared),
    );
    fmt::check(
        "GPU gain dominates CPU gain",
        fitted.model.gains()[1] > fitted.model.gains()[0],
        &format!(
            "B = {:.4} vs A = {:.4} W/MHz",
            fitted.model.gains()[1],
            fitted.model.gains()[0]
        ),
    );
}

/// Latency sweep on a V100 pipeline: measured batch latency per frequency
/// vs the fitted `e = e_min·(f_max/f)^γ` model.
fn fig2b() {
    fmt::header("Figure 2(b): measured vs predicted inference latency");
    use capgpu_workload::pipeline::{ArrivalMode, PipelineConfig, PipelineSim};
    let model = models::resnet50();
    let f_max = 1350.0;
    let mut freqs = Vec::new();
    let mut lats = Vec::new();
    println!(
        "{:>10} {:>14} {:>14}",
        "GPU(MHz)", "measured(s)", "predicted(s)"
    );
    for step in 0..12 {
        let f = 435.0 + step as f64 * 80.0;
        let mut pipe = PipelineSim::new(PipelineConfig {
            model: model.clone(),
            num_workers: 2,
            queue_capacity: 64,
            seed: 7 + step as u64,
            f_gpu_max_mhz: f_max,
            arrivals: ArrivalMode::Closed,
        })
        .expect("pipeline");
        // Warm up then measure.
        for _ in 0..10 {
            pipe.advance(1.0, 2200.0, f);
        }
        let mut samples = Vec::new();
        for _ in 0..30 {
            samples.extend(pipe.advance(1.0, 2200.0, f).batch_latencies);
        }
        let mean = capgpu_linalg::stats::mean(&samples);
        freqs.push(f);
        lats.push(mean);
    }
    let (fitted, r2) = LatencyModel::fit(&freqs, &lats, f_max).expect("latency fit");
    for (f, l) in freqs.iter().zip(lats.iter()) {
        println!("{f:>10.0} {l:>14.4} {:>14.4}", fitted.latency(*f));
    }
    println!(
        "fitted: e_min = {:.4} s, γ = {:.3}, R² = {:.4} (paper: γ = 0.91, R² ≈ 0.91)",
        fitted.e_min, fitted.gamma, r2
    );
    fmt::check(
        "latency fit quality (R² ≥ 0.9)",
        r2 > 0.9,
        &format!("R² = {r2:.4}"),
    );
    fmt::check(
        "fitted γ near 0.91",
        (fitted.gamma - 0.91).abs() < 0.08,
        &format!("γ = {:.3}", fitted.gamma),
    );
}
