//! **Figure 3** — Power control using state-of-the-art baselines and
//! CapGPU at a 900 W set point (3× V100 testbed, t₁–t₃ workloads).
//!
//! Controllers: CPU-Only, GPU-Only, CPU+GPU (50/50 and 60/40 splits), and
//! CapGPU. Expected shapes: CPU-Only cannot reach the cap; GPU-Only and
//! CapGPU converge cleanly; the split loops converge to the wrong total.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig3`

use capgpu::prelude::*;
use capgpu_bench::{fmt, PAPER_PERIODS, PAPER_TAIL_FRACTION};

const SETPOINT: f64 = 900.0;

fn main() {
    fmt::header(&format!(
        "Figure 3: power control at a {SETPOINT:.0} W set point"
    ));
    let report = SweepSpec::new(Scenario::paper_testbed(42))
        .setpoint(SETPOINT)
        .periods(PAPER_PERIODS)
        .controller(ControllerSpec::CpuOnly)
        .controller(ControllerSpec::GpuOnly)
        .controller(ControllerSpec::Split { gpu_share: 0.5 })
        .controller(ControllerSpec::Split { gpu_share: 0.6 })
        .controller(ControllerSpec::CapGpu)
        .run()
        .expect("sweep");
    let traces: Vec<&RunTrace> = report.traces().collect();
    let labels: Vec<&str> = traces.iter().map(|t| t.controller.as_str()).collect();
    let series: Vec<Vec<f64>> = traces.iter().map(|t| t.power_series()).collect();
    fmt::series_table(&labels, &series);

    fmt::header("Steady-state summary (last 80 of 100 periods)");
    for &t in &traces {
        println!("{}", RunSummary::from_trace(t).row());
    }

    fmt::header("Shape checks vs paper Fig. 3");
    let ss: Vec<(f64, f64)> = traces
        .iter()
        .map(|t| t.steady_state_power(PAPER_TAIL_FRACTION))
        .collect();
    fmt::check(
        "CPU-Only cannot reach the cap",
        ss[0].0 > SETPOINT + 50.0,
        &format!("settles at {}", fmt::pm(ss[0].0, ss[0].1)),
    );
    fmt::check(
        "GPU-Only converges near the cap",
        (ss[1].0 - SETPOINT).abs() < 10.0,
        &format!("settles at {}", fmt::pm(ss[1].0, ss[1].1)),
    );
    fmt::check(
        "at least one fixed split misses the cap",
        (ss[2].0 - SETPOINT).abs() > 25.0 || (ss[3].0 - SETPOINT).abs() > 25.0,
        &format!(
            "50/50 → {}, 60/40 → {}",
            fmt::pm(ss[2].0, ss[2].1),
            fmt::pm(ss[3].0, ss[3].1)
        ),
    );
    fmt::check(
        "CapGPU converges most precisely",
        (ss[4].0 - SETPOINT).abs() <= (ss[1].0 - SETPOINT).abs() + 1.0,
        &format!("settles at {}", fmt::pm(ss[4].0, ss[4].1)),
    );
    // "No violations" in the paper is judged against the measured curve;
    // with a 4 W-σ meter the discriminating criterion is that steady-state
    // excursions stay within ~3σ of sensor noise rather than reflecting a
    // control-error bias.
    fmt::check(
        "CapGPU steady-state overshoot within sensor noise (≤ 3σ ≈ 13 W)",
        {
            let skip = traces[4].records.len() / 5;
            let tail: Vec<f64> = traces[4].records[skip..]
                .iter()
                .map(|r| r.avg_power)
                .collect();
            capgpu_control::metrics::max_overshoot(&tail, SETPOINT) <= 13.0
        },
        &format!("max steady-state overshoot {:.1} W", {
            let skip = traces[4].records.len() / 5;
            let tail: Vec<f64> = traces[4].records[skip..]
                .iter()
                .map(|r| r.avg_power)
                .collect();
            capgpu_control::metrics::max_overshoot(&tail, SETPOINT)
        }),
    );
}
