//! **Figure 10** — Online adaptation to changing power set points:
//! 800 W → 900 W at period 40 (request surge raises the budget), back to
//! 800 W at period 80 (§6.4).
//!
//! Expected shapes: every controller adapts; CapGPU shows the least
//! fluctuation; GPU-Only has the longest settling after each step.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig10`

use capgpu::config::ScheduledChange;
use capgpu::prelude::*;
use capgpu_bench::fmt;
use capgpu_control::metrics;

const PERIODS: usize = 120;

fn scenario() -> Scenario {
    Scenario::paper_testbed(42)
        .with_change(ScheduledChange::SetPoint {
            at_period: 40,
            watts: 900.0,
        })
        .with_change(ScheduledChange::SetPoint {
            at_period: 80,
            watts: 800.0,
        })
}

/// Settling time (periods) after the step at `at`, within ±band watts,
/// judged over the segment `[at, until)` (before the next step change).
fn settle_after(
    trace: &RunTrace,
    at: usize,
    until: usize,
    target: f64,
    band: f64,
) -> Option<usize> {
    let seg: Vec<f64> = trace.records[at..until]
        .iter()
        .map(|r| r.avg_power)
        .collect();
    metrics::settling_time(&seg, target, band)
}

fn main() {
    fmt::header("Figure 10: online adaptation to set-point steps 800→900→800 W");
    let report = SweepSpec::new(scenario())
        .setpoint(800.0)
        .periods(PERIODS)
        .controller(ControllerSpec::CapGpu)
        .controller(ControllerSpec::GpuOnly)
        .controller(ControllerSpec::SafeFixedStep { multiplier: 1 })
        .run()
        .expect("sweep");
    let traces: Vec<&RunTrace> = report.traces().collect();
    let labels: Vec<&str> = traces.iter().map(|t| t.controller.as_str()).collect();
    let series: Vec<Vec<f64>> = traces.iter().map(|t| t.power_series()).collect();
    fmt::series_table(&labels, &series);

    fmt::header("Adaptation metrics");
    println!(
        "{:<28} {:>14} {:>14} {:>12}",
        "controller", "settle @40 (T)", "settle @80 (T)", "σ overall (W)"
    );
    let mut rows = Vec::new();
    for &t in &traces {
        let s40 = settle_after(t, 40, 80, 900.0, 15.0);
        let s80 = settle_after(t, 80, PERIODS, 800.0, 15.0);
        // Fluctuation: mean per-segment std (excluding 5-period transients).
        let seg_std = |lo: usize, hi: usize| {
            let xs: Vec<f64> = traces[0].records[lo..hi]
                .iter()
                .map(|r| r.avg_power)
                .collect();
            let _ = xs;
            let v: Vec<f64> = t.records[lo..hi].iter().map(|r| r.avg_power).collect();
            capgpu_linalg::stats::std_dev(&v)
        };
        let sigma = (seg_std(10, 40) + seg_std(45, 80) + seg_std(85, PERIODS)) / 3.0;
        println!(
            "{:<28} {:>14} {:>14} {:>12.1}",
            t.controller,
            s40.map(|v| v.to_string()).unwrap_or_else(|| "never".into()),
            s80.map(|v| v.to_string()).unwrap_or_else(|| "never".into()),
            sigma
        );
        rows.push((s40, s80, sigma));
    }

    fmt::header("Shape checks vs paper Fig. 10");
    // Safe Fixed-step intentionally sits ~a margin below the cap, so judge
    // adaptation with a band wide enough to include its offset.
    let adapt = |t: &RunTrace| {
        settle_after(t, 40, 80, 900.0, 35.0).is_some()
            && settle_after(t, 80, PERIODS, 800.0, 35.0).is_some()
    };
    fmt::check(
        "all controllers adapt to both steps",
        traces.iter().all(|t| adapt(t)),
        "every controller reaches the new set point's neighbourhood",
    );
    fmt::check(
        "CapGPU holds the least fluctuation",
        rows[0].2 <= rows[1].2 + 0.5 && rows[0].2 <= rows[2].2,
        &format!(
            "σ: CapGPU {:.1}, GPU-Only {:.1}, SafeFS {:.1} W",
            rows[0].2, rows[1].2, rows[2].2
        ),
    );
    fmt::check(
        "CapGPU settles at least as fast as GPU-Only",
        match (rows[0].0, rows[1].0) {
            (Some(a), Some(b)) => a <= b,
            _ => false,
        },
        &format!(
            "settle @40: CapGPU {:?} vs GPU-Only {:?}",
            rows[0].0, rows[1].0
        ),
    );
}
