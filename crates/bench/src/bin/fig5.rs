//! **Figure 5** — Safe Fixed-step controller for different step sizes at a
//! 900 W set point. The safety margin keeps the oscillation band below the
//! cap, at the cost of control accuracy (it leaves budget unused).
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig5`

use capgpu::prelude::*;
use capgpu_bench::{fmt, PAPER_PERIODS, PAPER_TAIL_FRACTION};

const SETPOINT: f64 = 900.0;

fn main() {
    fmt::header(&format!(
        "Figure 5: Safe Fixed-step traces at {SETPOINT:.0} W"
    ));
    let mut spec = SweepSpec::new(Scenario::paper_testbed(42))
        .setpoint(SETPOINT)
        .periods(PAPER_PERIODS);
    for multiplier in [1usize, 3, 5] {
        spec = spec.controller(ControllerSpec::SafeFixedStep { multiplier });
    }
    let report = spec.run().expect("sweep");
    let traces: Vec<&RunTrace> = report.traces().collect();
    let labels: Vec<&str> = traces.iter().map(|t| t.controller.as_str()).collect();
    let series: Vec<Vec<f64>> = traces.iter().map(|t| t.power_series()).collect();
    fmt::series_table(&labels, &series);

    fmt::header("Steady-state summary");
    for &t in &traces {
        println!("{}", RunSummary::from_trace(t).row());
    }

    fmt::header("Shape checks vs paper Fig. 5");
    for t in &traces {
        let (mean, _) = t.steady_state_power(PAPER_TAIL_FRACTION);
        fmt::check(
            &format!("{} operates at or below the set point", t.controller),
            mean < SETPOINT,
            &format!("steady-state mean {mean:.1} W"),
        );
    }
    // The paper notes Safe Fixed-step still violated the cap once (margins
    // from averaged steady-state errors are not worst-case guarantees).
    let total_violations: usize = traces.iter().map(|t| t.violations(2.0)).sum();
    fmt::check(
        "violations are rare but may occur",
        total_violations < PAPER_PERIODS / 3,
        &format!("{total_violations} violating periods across all step sizes"),
    );
    // Accuracy cost: Safe Fixed-step leaves more budget unused than an
    // exact tracker would.
    let worst_gap = traces
        .iter()
        .map(|t| SETPOINT - t.steady_state_power(PAPER_TAIL_FRACTION).0)
        .fold(f64::NEG_INFINITY, f64::max);
    fmt::check(
        "safety margin leaves budget unused (worst gap > 5 W)",
        worst_gap > 5.0,
        &format!("worst steady-state gap {worst_gap:.1} W below cap"),
    );
}
