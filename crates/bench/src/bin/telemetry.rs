//! **Telemetry snapshot** — exercises the in-tree telemetry subsystem
//! end to end (DESIGN.md §14): a supervised fault storm produces the
//! deterministic metric/journal report, then the bin verifies the
//! observability invariants that make the subsystem safe to leave on:
//!
//! 1. the deterministic report reruns byte-identically,
//! 2. published figure CSVs are byte-identical with telemetry enabled,
//! 3. a telemetry-carrying sweep is bit-identical across thread counts
//!    (merged registry included),
//! 4. wall-clock span tracing captures every control-loop phase.
//!
//! Regenerate the committed golden with:
//! `cargo run --release -p capgpu-bench --bin telemetry > results/telemetry.txt`
//! — the wall-clock span table goes to **stderr**, keeping stdout (and
//! therefore the golden) free of non-deterministic timings.
//!
//! `--smoke` shortens the storm and the CSV grid for CI; the checks are
//! identical and the bin exits nonzero if any of them fails.

use capgpu::export::trace_to_csv;
use capgpu::prelude::*;
use capgpu_bench::fmt;

const SEED: u64 = 42;
/// Set point above the storm's derated PSU limit, matching the faults
/// ablation — this drives the supervisor through its full ladder and
/// fills the journal with tier changes, quarantines, and fault events.
const STORM_SETPOINT: f64 = 1000.0;

fn storm_run(periods: usize) -> (RunTrace, TelemetryReport) {
    let scenario = Scenario::fault_testbed(SEED)
        .with_supervisor(SupervisorConfig::default())
        .with_telemetry(TelemetryConfig::deterministic());
    let mut r = ExperimentRunner::new(scenario, STORM_SETPOINT).expect("runner");
    let c = r.build_capgpu_controller().expect("controller");
    let trace = r.run(c, periods).expect("run");
    let report = r.telemetry_report().expect("telemetry enabled");
    (trace, report)
}

fn grid(setpoints: &[f64], periods: usize, telemetry: bool) -> SweepSpec {
    let mut scenario = Scenario::paper_testbed(SEED);
    if telemetry {
        scenario = scenario.with_telemetry(TelemetryConfig::deterministic());
    }
    SweepSpec::new(scenario)
        .setpoints(setpoints)
        .periods(periods)
        .controller(ControllerSpec::CapGpu)
        .controller(ControllerSpec::GpuOnly)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let storm_periods = if smoke { 30 } else { 60 };
    let grid_periods = if smoke { 8 } else { 12 };
    let setpoints: Vec<f64> = if smoke {
        vec![900.0, 1100.0]
    } else {
        vec![900.0, 1000.0, 1100.0, 1200.0]
    };
    let mut all_ok = true;

    // ---- deterministic report: supervised CapGPU under the storm ----
    fmt::header("Telemetry: supervised fault storm, CapGPU (deterministic report)");
    let (_trace, report) = storm_run(storm_periods);
    println!("{}", report.deterministic_text());

    // ---- check 1: byte-identical rerun --------------------------------
    let (_t2, rerun) = storm_run(storm_periods);
    let det_ok = report.deterministic_text() == rerun.deterministic_text()
        && report.prometheus_text() == rerun.prometheus_text();
    fmt::check(
        "deterministic: telemetry report reruns byte-identically",
        det_ok,
        &format!("{} journal events", report.journal.len()),
    );
    all_ok &= det_ok;

    // ---- check 2: telemetry never perturbs published CSVs -------------
    // The Fig. 6 accuracy grid (shortened), once bare and once with
    // telemetry enabled on a threaded schedule — every per-cell CSV must
    // come out byte for byte the same.
    let off = grid(&setpoints, grid_periods, false)
        .run_serial()
        .expect("bare sweep");
    let on = grid(&setpoints, grid_periods, true)
        .run_with_threads(4)
        .expect("telemetry sweep");
    let csv_ok = off.traces().count() == on.traces().count()
        && off
            .traces()
            .zip(on.traces())
            .all(|(a, b)| trace_to_csv(a) == trace_to_csv(b));
    fmt::check(
        "published CSVs byte-identical with telemetry enabled",
        csv_ok,
        &format!("{} cells compared", off.len()),
    );
    all_ok &= csv_ok;

    // ---- check 3: thread-schedule independence with telemetry on ------
    let serial = grid(&setpoints, grid_periods, true)
        .run_serial()
        .expect("serial sweep");
    let merged = serial
        .merged_telemetry()
        .expect("merge")
        .expect("snapshots present");
    let mut threads_ok = serial == on;
    for threads in [2, 8] {
        let parallel = grid(&setpoints, grid_periods, true)
            .run_with_threads(threads)
            .expect("parallel sweep");
        threads_ok &= parallel == serial;
        let pm = parallel
            .merged_telemetry()
            .expect("merge")
            .expect("snapshots present");
        threads_ok &= pm.to_prometheus_text() == merged.to_prometheus_text();
    }
    fmt::check(
        "telemetry sweep bit-identical across thread counts",
        threads_ok,
        &format!(
            "merged registry: {} periods over {} cells",
            merged
                .counter_value("capgpu_periods_total", &[])
                .unwrap_or(0),
            serial.len()
        ),
    );
    all_ok &= threads_ok;

    // ---- check 4: wall-clock spans (stderr only) ----------------------
    let scenario = Scenario::paper_testbed(SEED).with_telemetry(TelemetryConfig::with_spans());
    let mut r = ExperimentRunner::new(scenario, 900.0).expect("runner");
    let c = r.build_capgpu_controller().expect("controller");
    r.run(c, 20).expect("run");
    let traced = r.telemetry_report().expect("telemetry enabled");
    let spans_ok = match traced.wall_clock_text() {
        Some(text) => {
            eprintln!("wall-clock spans (non-deterministic, excluded from golden):");
            eprintln!("{text}");
            true
        }
        None => false,
    };
    fmt::check(
        "wall-clock span tracing captured control-loop phases (table on stderr)",
        spans_ok,
        &format!("{} phases timed", traced.spans.phases.len()),
    );
    all_ok &= spans_ok;

    if !all_ok {
        std::process::exit(1);
    }
}
