//! **capgpu-obs** — offline journal post-mortem (DESIGN.md §19).
//!
//! Modes:
//!
//! * default: run the scripted observability scenario — a mock-backend
//!   daemon that identifies, takes a set-point step, suffers a meter
//!   dropout, crashes mid-run (unsealed journal), is restarted via
//!   journal-replay recovery, and finally seals — then ingest the
//!   journal directory it left behind and print the deterministic
//!   post-mortem report. The committed golden is `results/obs.txt`.
//! * `--journal DIR`: ingest an arbitrary journal directory instead of
//!   the scripted scenario and print its post-mortem.
//! * `--smoke`: CI gate. Checks that (1) the scripted report reruns
//!   byte-identically, (2) it matches the committed golden, (3) the
//!   scenario actually rotated and sealed segments, (4) kill-and-restart
//!   recovery converges to the uninterrupted run within one control
//!   period, (5) a torn final record is tolerated without changing the
//!   replayed state, (6) an unknown schema major version is rejected,
//!   and (7) the fleet health roll-up flags an over-budget rack while
//!   leaving healthy racks alone. Exits nonzero on any failure.
//!
//! Regenerate the golden with:
//! `cargo run --release -p capgpu-bench --bin obs > results/obs.txt`
//!
//! Usage: `obs [--journal DIR] [--smoke]`

use std::path::{Path, PathBuf};

use capgpu::daemon::{Daemon, DaemonConfig};
use capgpu::prelude::FaultKind;
use capgpu_backend::MockBackend;
use capgpu_bench::fmt;
use capgpu_obs::analyzer::AnalyzerConfig;
use capgpu_obs::reader::{parse_jsonl, read_dir};
use capgpu_obs::replay::ReplayState;
use capgpu_obs::report::render;
use capgpu_obs::ObsError;

const GOLDEN_PATH: &str = "results/obs.txt";

fn scenario_cfg(journal_dir: Option<PathBuf>) -> DaemonConfig {
    let mut cfg = DaemonConfig::default_sim();
    cfg.backend = "mock".to_string();
    cfg.sim_gpus = 2;
    cfg.sysid_steps_per_device = 4;
    cfg.control_period_s = 2;
    cfg.journal_dir = journal_dir;
    // Small segments so the scripted run exercises rotation.
    cfg.journal_max_segment_kib = 1;
    cfg.journal_retain_segments = 64;
    cfg
}

/// Runs the scripted scenario into `dir`: identify → steady periods →
/// set-point step → meter dropout and recovery → crash (unsealed) →
/// journal-replay restart → graceful seal.
fn scripted_scenario(dir: &Path) -> Result<(), String> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let cfg = scenario_cfg(Some(dir.to_path_buf()));
    let backend = Box::new(MockBackend::testbed(2).map_err(|e| e.to_string())?);
    let mut d = Daemon::new(cfg.clone(), backend).map_err(|e| e.to_string())?;
    d.identify().map_err(|e| e.to_string())?;
    d.run_periods(6).map_err(|e| e.to_string())?;
    d.set_setpoint(850.0);
    d.run_periods(4).map_err(|e| e.to_string())?;
    d.backend_mut()
        .as_any_mut()
        .downcast_mut::<MockBackend>()
        .ok_or("not a mock backend")?
        .apply_fault(&FaultKind::MeterDropout)
        .map_err(|e| e.to_string())?;
    d.run_periods(5).map_err(|e| e.to_string())?;
    d.backend_mut()
        .as_any_mut()
        .downcast_mut::<MockBackend>()
        .ok_or("not a mock backend")?
        .clear_fault(&FaultKind::MeterDropout)
        .map_err(|e| e.to_string())?;
    d.run_periods(8).map_err(|e| e.to_string())?;
    // Crash: drop the daemon without sealing; the plant survives.
    let backend = d.into_backend();
    // Restart: replay the journal and resume.
    let scan = read_dir(dir).map_err(|e| e.to_string())?;
    let state = ReplayState::replay(&scan.records);
    let mut d2 = Daemon::new(cfg, backend).map_err(|e| e.to_string())?;
    d2.recover(&state).map_err(|e| e.to_string())?;
    d2.run_periods(4).map_err(|e| e.to_string())?;
    d2.seal_journal().map_err(|e| e.to_string())?;
    Ok(())
}

/// Renders the post-mortem for a journal directory.
fn post_mortem(dir: &Path) -> Result<String, String> {
    let scan = read_dir(dir).map_err(|e| e.to_string())?;
    let pm = render(&scan, &AnalyzerConfig::default()).map_err(|e| e.to_string())?;
    Ok(pm.text)
}

/// The default transcript: scripted scenario + its post-mortem.
fn scripted_transcript() -> Result<String, String> {
    let dir = std::env::temp_dir().join(format!("capgpu-obs-scenario-{}", std::process::id()));
    scripted_scenario(&dir)?;
    let mut out = String::new();
    out.push_str("\n==============================\n");
    out.push_str("capgpu-obs offline post-mortem\n");
    out.push_str("==============================\n");
    out.push_str(
        "scenario: scripted mock-backend run — identify, set-point step,\n\
         meter dropout + ladder recovery, crash mid-run (unsealed journal),\n\
         journal-replay restart, graceful seal\n\n",
    );
    out.push_str(&post_mortem(&dir)?);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(out)
}

#[allow(clippy::too_many_lines)]
fn smoke() -> bool {
    let mut all_ok = true;

    // ---- check 1: deterministic scripted report -----------------------
    let first = scripted_transcript();
    let second = scripted_transcript();
    let rerun_ok = match (&first, &second) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    };
    fmt::check(
        "scripted post-mortem reruns byte-identically",
        rerun_ok,
        &format!(
            "{} bytes (journal scan + replay + detectors included)",
            first.as_ref().map(String::len).unwrap_or(0)
        ),
    );
    all_ok &= rerun_ok;

    // ---- check 2: committed golden ------------------------------------
    match std::fs::read_to_string(GOLDEN_PATH) {
        Ok(golden) => {
            let golden_ok = first.as_ref().is_ok_and(|t| *t == golden);
            fmt::check(
                "post-mortem matches the committed golden",
                golden_ok,
                GOLDEN_PATH,
            );
            all_ok &= golden_ok;
        }
        Err(_) => {
            fmt::check(
                "post-mortem matches the committed golden",
                true,
                "golden absent (not running from the repo root); skipped",
            );
        }
    }

    // ---- check 3: the scenario rotated and sealed segments ------------
    let rotation_ok = (|| -> Result<bool, String> {
        let dir = std::env::temp_dir().join(format!("capgpu-obs-rotate-{}", std::process::id()));
        scripted_scenario(&dir)?;
        let scan = read_dir(&dir).map_err(|e| e.to_string())?;
        let sealed = scan.segments.iter().filter(|s| s.sealed).count();
        let _ = std::fs::remove_dir_all(&dir);
        Ok(scan.segments.len() >= 3 && sealed >= 2 && scan.torn_tail.is_none())
    })();
    let rotation_ok = matches!(rotation_ok, Ok(true));
    fmt::check(
        "rotation rolled and CRC-sealed multiple segments",
        rotation_ok,
        "1 KiB segments; seals verified on read-back",
    );
    all_ok &= rotation_ok;

    // ---- check 4: kill-and-restart convergence ------------------------
    let converge_ok = (|| -> Result<bool, String> {
        let total = 14u64;
        let kill_at = 6u64;
        let mut a = Daemon::new(
            scenario_cfg(None),
            Box::new(MockBackend::testbed(2).map_err(|e| e.to_string())?),
        )
        .map_err(|e| e.to_string())?;
        a.identify().map_err(|e| e.to_string())?;
        let reference = a.run_periods(total).map_err(|e| e.to_string())?;

        let dir = std::env::temp_dir().join(format!("capgpu-obs-conv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let mut b = Daemon::new(
            scenario_cfg(Some(dir.clone())),
            Box::new(MockBackend::testbed(2).map_err(|e| e.to_string())?),
        )
        .map_err(|e| e.to_string())?;
        b.identify().map_err(|e| e.to_string())?;
        b.run_periods(kill_at).map_err(|e| e.to_string())?;
        let backend = b.into_backend();
        let scan = read_dir(&dir).map_err(|e| e.to_string())?;
        let state = ReplayState::replay(&scan.records);
        let mut b2 =
            Daemon::new(scenario_cfg(Some(dir.clone())), backend).map_err(|e| e.to_string())?;
        b2.recover(&state).map_err(|e| e.to_string())?;
        let resumed = b2.run_periods(total - kill_at).map_err(|e| e.to_string())?;
        let _ = std::fs::remove_dir_all(&dir);
        // Within one control period: skip the first resumed period.
        Ok(resumed
            .iter()
            .zip(&reference[kill_at as usize..])
            .skip(1)
            .all(|(r, want)| {
                r.tier == want.tier
                    && r.targets_mhz
                        .iter()
                        .zip(want.targets_mhz.iter())
                        .all(|(t, w)| (t - w).abs() < 1e-6)
            }))
    })();
    let converge_ok = matches!(converge_ok, Ok(true));
    fmt::check(
        "kill-and-restart recovery converges within one control period",
        converge_ok,
        "replayed tier/model/targets vs the uninterrupted run",
    );
    all_ok &= converge_ok;

    // ---- check 5: torn tail is tolerated ------------------------------
    let torn_ok = (|| -> Result<bool, String> {
        let dir = std::env::temp_dir().join(format!("capgpu-obs-torn-{}", std::process::id()));
        scripted_scenario(&dir)?;
        let before = ReplayState::replay(&read_dir(&dir).map_err(|e| e.to_string())?.records);
        let mut segments: Vec<_> = std::fs::read_dir(&dir)
            .map_err(|e| e.to_string())?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        segments.sort();
        let last = segments.last().ok_or("no segments")?;
        let mut text = std::fs::read_to_string(last).map_err(|e| e.to_string())?;
        // The scenario seals its last segment; tearing it would be a
        // CRC error, so tear a fresh active segment instead.
        let torn_path = last.with_file_name("journal.999999.jsonl");
        text.clear();
        text.push_str("{\"v\":1,\"period\":99,\"t_s\":400,\"kind\":\"per");
        std::fs::write(&torn_path, &text).map_err(|e| e.to_string())?;
        let scan = read_dir(&dir).map_err(|e| e.to_string())?;
        let after = ReplayState::replay(&scan.records);
        let _ = std::fs::remove_dir_all(&dir);
        Ok(scan.torn_tail.is_some() && after == before)
    })();
    let torn_ok = matches!(torn_ok, Ok(true));
    fmt::check(
        "torn final record is dropped without corrupting replay",
        torn_ok,
        "crash-mid-flush model: complete records only",
    );
    all_ok &= torn_ok;

    // ---- check 6: unknown schema major version is rejected ------------
    let schema_ok = matches!(
        parse_jsonl(
            "{\"v\":2,\"period\":0,\"t_s\":0,\"kind\":\"period\"}\n",
            true
        ),
        Err(ObsError::SchemaVersion {
            found: 2,
            supported: 1
        })
    );
    fmt::check(
        "unknown schema major version is rejected",
        schema_ok,
        "v=2 record refused; v=1 is the only spoken version",
    );
    all_ok &= schema_ok;

    // ---- check 7: fleet health roll-up --------------------------------
    let fleet_ok = (|| {
        use capgpu_fleet::health::analyze;
        use capgpu_fleet::sim::{EpochReport, FleetReport, RackEpoch, ServerStat};
        use capgpu_obs::analyzer::Verdict;
        let rack = |assigned: f64, measured: f64| RackEpoch {
            assigned,
            measured,
            misses: 0,
            completed: 100,
            binding_servers: 0,
            worst_p99_s: 0.1,
        };
        let stat = |r: usize| ServerStat {
            rack: r,
            class: 0,
            streams: 1,
            demand: 900.0,
            min_watts: 400.0,
            max_watts: 1200.0,
            assigned: 900.0,
            measured: 890.0,
            misses: 0,
            completed: 100,
        };
        let epochs: Vec<EpochReport> = (0..40)
            .map(|_| EpochReport {
                racks: vec![rack(1800.0, 1840.0), rack(1800.0, 1750.0)],
                migrations: Vec::new(),
            })
            .collect();
        let report = FleetReport {
            epochs,
            stats: vec![stat(0), stat(0), stat(1), stat(1)],
            server_periods: 160,
            reorder_window: 1,
            peak_pending: 1,
            peak_live_traces: 1,
        };
        let Ok(h) = analyze(&report, &AnalyzerConfig::default()) else {
            return false;
        };
        h.racks.len() == 2
            && h.racks[0].overall == Verdict::Critical
            && h.racks[1].overall == Verdict::Ok
            && h.overall() == Verdict::Critical
    })();
    fmt::check(
        "fleet health flags the over-budget rack only",
        fleet_ok,
        "per-rack detector banks over the epoch fold",
    );
    all_ok &= fleet_ok;

    all_ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if flag("--smoke") {
        if !smoke() {
            std::process::exit(1);
        }
        return;
    }
    if let Some(dir) = value("--journal") {
        match post_mortem(Path::new(&dir)) {
            Ok(t) => print!("{t}"),
            Err(e) => {
                eprintln!("obs: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    match scripted_transcript() {
        Ok(t) => print!("{t}"),
        Err(e) => {
            eprintln!("obs: {e}");
            std::process::exit(1);
        }
    }
}
