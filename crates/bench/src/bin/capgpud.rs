//! **capgpud** — the live-serving control daemon, runnable end to end
//! without hardware (DESIGN.md §18).
//!
//! Modes:
//!
//! * default / `--dry-run`: boot the configured backend, identify,
//!   run `--periods` control periods, and print the deterministic
//!   transcript — period table, JSONL journal, Prometheus exposition.
//!   Against the sim backend the transcript is byte-identical across
//!   reruns; the committed golden is `results/capgpud.txt`.
//! * `--serve`: the real timer loop — wall-clock paced periods with
//!   SIGHUP + config-mtime set-point hot reload and a live
//!   `GET /metrics` listener. Not used in CI (non-deterministic).
//! * `--smoke`: CI gate. Checks that (1) the dry-run transcript reruns
//!   byte-identically, (2) it matches the committed golden, (3) meter
//!   dropout on a mock backend escalates the supervisor ladder through
//!   fallback to park and recovers, (4) the metrics endpoint serves the
//!   exposition over HTTP, (5) a config rewrite hot-reloads the
//!   set-point, and (6, Unix) SIGHUP latches the reload flag. Exits
//!   nonzero on any failure.
//!
//! Regenerate the golden with:
//! `cargo run --release -p capgpu-bench --bin capgpud > results/capgpud.txt`
//!
//! Usage: `capgpud [--config path.toml] [--backend sim|mock]
//! [--setpoint W] [--periods N] [--dry-run | --serve | --smoke]`

use std::fmt::Write as _;
use std::path::PathBuf;

use capgpu::prelude::*;
use capgpu_backend::MockBackend;
use capgpu_bench::fmt;

const DEFAULT_PERIODS: u64 = 12;
const GOLDEN_PATH: &str = "results/capgpud.txt";

fn tier_name(tier: SupervisorTier) -> &'static str {
    match tier {
        SupervisorTier::Primary => "primary",
        SupervisorTier::SafeFallback => "fallback",
        SupervisorTier::Park => "park",
    }
}

/// Builds, identifies, and runs a daemon for `periods`, rendering the
/// deterministic dry-run transcript.
fn dry_run_transcript(cfg: &DaemonConfig, periods: u64) -> Result<String, String> {
    let backend = cfg.build_backend().map_err(|e| e.to_string())?;
    let mut daemon = Daemon::new(cfg.clone(), backend).map_err(|e| e.to_string())?;
    daemon.identify().map_err(|e| e.to_string())?;
    let reports = daemon.run_periods(periods).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let title = format!(
        "capgpud dry run (backend={}, {} periods)",
        cfg.backend, periods
    );
    let rule = "=".repeat(title.len());
    let _ = writeln!(out, "\n{rule}\n{title}\n{rule}");
    let devices = daemon.backend().devices();
    let gpus = devices
        .iter()
        .filter(|d| d.kind == capgpu_sim::DeviceKind::Gpu)
        .count();
    let _ = writeln!(
        out,
        "devices: {} ({} cpu + {} gpu)  period={}s  setpoint={:.0}W",
        devices.len(),
        devices.len() - gpus,
        gpus,
        cfg.control_period_s,
        cfg.setpoint_watts
    );
    let ident = daemon
        .journal()
        .of_kind("identified")
        .next()
        .expect("identified event")
        .to_json();
    let _ = writeln!(out, "identified: {ident}");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>6}  {:>8}  {:>9}  {:>9}  {:>5}",
        "period", "tier", "watts", "setpoint", "stale"
    );
    for r in &reports {
        let _ = writeln!(
            out,
            "{:>6}  {:>8}  {:>9.2}  {:>9.2}  {:>5}",
            r.period,
            tier_name(r.tier),
            r.avg_power_watts,
            r.effective_setpoint,
            r.stale_periods
        );
    }
    let _ = writeln!(out, "\njournal (JSONL)");
    out.push_str(&daemon.journal().to_jsonl());
    let _ = writeln!(out, "\nprometheus exposition");
    out.push_str(&daemon.prometheus_text());
    Ok(out)
}

/// The live timer loop: wall-paced periods, SIGHUP/config hot reload,
/// metrics over HTTP. Bounded by `periods` when given.
fn serve(cfg: &DaemonConfig, config_path: Option<&PathBuf>, periods: Option<u64>) {
    let backend = cfg.build_backend().expect("backend");
    let mut daemon = Daemon::new(cfg.clone(), backend).expect("daemon");
    let metrics = cfg
        .metrics_port
        .map(|port| MetricsServer::bind(port).expect("metrics listener"));
    if let Some(m) = &metrics {
        eprintln!(
            "capgpud: metrics on http://{0}/metrics, health on http://{0}/healthz",
            m.local_addr()
        );
    }
    let sig = ReloadSignal::install();
    let mut watcher = config_path.map(ConfigWatcher::new);
    eprintln!("capgpud: identifying...");
    daemon.identify().expect("identification");
    eprintln!("capgpud: control loop started");
    let mut n = 0u64;
    loop {
        let t0 = std::time::Instant::now();
        let report = daemon.step_period().expect("period");
        eprintln!(
            "period {:>5}  tier={:<8}  {:>8.2} W -> {:>8.2} W",
            report.period,
            tier_name(report.tier),
            report.avg_power_watts,
            report.effective_setpoint
        );
        if let Some(m) = &metrics {
            m.publish(&daemon.prometheus_text());
            m.publish_health(&daemon.health_json());
        }
        let mtime_hit = watcher.as_mut().is_some_and(ConfigWatcher::changed);
        if sig.take() || mtime_hit {
            if let Some(path) = config_path {
                match DaemonConfig::load(path) {
                    Ok(new_cfg) => {
                        if daemon.apply_reload(&new_cfg) {
                            eprintln!(
                                "capgpud: set-point reloaded to {:.1} W",
                                daemon.setpoint_watts()
                            );
                        }
                    }
                    Err(e) => eprintln!("capgpud: reload rejected: {e}"),
                }
            }
        }
        n += 1;
        if periods.is_some_and(|p| n >= p) {
            break;
        }
        // Pace to the control period, net of the time the period took
        // (the sim advances instantly; live backends sleep inside
        // `advance` instead and fall straight through here).
        let elapsed = t0.elapsed();
        let period = std::time::Duration::from_secs(daemon.config().control_period_s);
        if let Some(left) = period.checked_sub(elapsed) {
            if daemon.backend().wall_clock_unix_ms().is_none() && cfg.backend == "sim" {
                // Deterministic plant: don't sleep, time is simulated.
            } else {
                std::thread::sleep(left);
            }
        }
    }
    if let Some(path) = &daemon.config().journal_path {
        daemon.journal().write_jsonl(path).expect("journal write");
        eprintln!("capgpud: journal written to {}", path.display());
    }
    // Graceful shutdown seals the rotating journal's active segment;
    // a crash would skip this and leave the torn tail the recovery
    // reader tolerates.
    if let Err(e) = daemon.seal_journal() {
        eprintln!("capgpud: journal seal failed: {e}");
    }
}

fn smoke(cfg: &DaemonConfig, periods: u64) -> bool {
    let mut all_ok = true;

    // ---- check 1: deterministic dry run -------------------------------
    let first = dry_run_transcript(cfg, periods);
    let second = dry_run_transcript(cfg, periods);
    let rerun_ok = match (&first, &second) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    };
    fmt::check(
        "dry-run transcript reruns byte-identically",
        rerun_ok,
        &format!(
            "{} bytes (journal + prometheus included)",
            first.as_ref().map(String::len).unwrap_or(0)
        ),
    );
    all_ok &= rerun_ok;

    // ---- check 2: committed golden ------------------------------------
    match std::fs::read_to_string(GOLDEN_PATH) {
        Ok(golden) => {
            let golden_ok = first.as_ref().is_ok_and(|t| *t == golden);
            fmt::check(
                "dry-run transcript matches the committed golden",
                golden_ok,
                GOLDEN_PATH,
            );
            all_ok &= golden_ok;
        }
        Err(_) => {
            fmt::check(
                "dry-run transcript matches the committed golden",
                true,
                "golden absent (not running from the repo root); skipped",
            );
        }
    }

    // ---- check 3: dropout escalates the ladder on a mock backend ------
    let ladder_ok = (|| -> Result<bool, String> {
        let mut mcfg = cfg.clone();
        mcfg.backend = "mock".to_string();
        mcfg.control_period_s = 2;
        let backend = mcfg.build_backend().map_err(|e| e.to_string())?;
        let mut d = Daemon::new(mcfg, backend).map_err(|e| e.to_string())?;
        d.identify().map_err(|e| e.to_string())?;
        d.run_periods(3).map_err(|e| e.to_string())?;
        if d.tier() != SupervisorTier::Primary {
            return Ok(false);
        }
        d.backend_mut()
            .as_any_mut()
            .downcast_mut::<MockBackend>()
            .ok_or("not a mock backend")?
            .apply_fault(&FaultKind::MeterDropout)
            .map_err(|e| e.to_string())?;
        let stale = d.run_periods(6).map_err(|e| e.to_string())?;
        let saw_fallback = stale.iter().any(|r| r.tier == SupervisorTier::SafeFallback);
        let parked = stale.last().is_some_and(|r| r.tier == SupervisorTier::Park);
        d.backend_mut()
            .as_any_mut()
            .downcast_mut::<MockBackend>()
            .unwrap()
            .clear_fault(&FaultKind::MeterDropout)
            .map_err(|e| e.to_string())?;
        let recovered = d.run_periods(14).map_err(|e| e.to_string())?;
        let back = recovered
            .last()
            .is_some_and(|r| r.tier == SupervisorTier::Primary);
        Ok(saw_fallback && parked && back)
    })();
    let ladder_ok = matches!(ladder_ok, Ok(true));
    fmt::check(
        "mock meter dropout walks the ladder: primary -> fallback -> park -> primary",
        ladder_ok,
        "staleness watchdog fed purely through the PowerBackend seam",
    );
    all_ok &= ladder_ok;

    // ---- check 4: metrics over HTTP -----------------------------------
    let http_ok = (|| -> Result<bool, String> {
        use std::io::{Read as _, Write as _};
        let backend = cfg.build_backend().map_err(|e| e.to_string())?;
        let mut d = Daemon::new(cfg.clone(), backend).map_err(|e| e.to_string())?;
        d.identify().map_err(|e| e.to_string())?;
        d.run_periods(2).map_err(|e| e.to_string())?;
        let server = MetricsServer::bind(0).map_err(|e| e.to_string())?;
        server.publish(&d.prometheus_text());
        let mut s = std::net::TcpStream::connect(server.local_addr()).map_err(|e| e.to_string())?;
        s.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .map_err(|e| e.to_string())?;
        write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").map_err(|e| e.to_string())?;
        let mut body = String::new();
        let _ = s.read_to_string(&mut body);
        Ok(body.starts_with("HTTP/1.1 200 OK")
            && body.contains("# HELP capgpud_power_watts")
            && body.contains("capgpud_periods_total"))
    })();
    let http_ok = matches!(http_ok, Ok(true));
    fmt::check(
        "GET /metrics serves the Prometheus exposition",
        http_ok,
        "help + type lines and daemon counters over the in-tree listener",
    );
    all_ok &= http_ok;

    // ---- check 5: config rewrite hot-reloads the set-point ------------
    let reload_ok = (|| -> Result<bool, String> {
        let path = std::env::temp_dir().join(format!("capgpud-smoke-{}.toml", std::process::id()));
        std::fs::write(&path, "[daemon]\nsetpoint_watts = 900\n").map_err(|e| e.to_string())?;
        let mut watcher = ConfigWatcher::new(&path);
        let backend = cfg.build_backend().map_err(|e| e.to_string())?;
        let mut d = Daemon::new(cfg.clone(), backend).map_err(|e| e.to_string())?;
        d.identify().map_err(|e| e.to_string())?;
        d.run_periods(2).map_err(|e| e.to_string())?;
        let baseline = !watcher.changed();
        std::fs::write(&path, "[daemon]\nsetpoint_watts = 812.5\n").map_err(|e| e.to_string())?;
        let tripped = watcher.changed();
        let new_cfg = DaemonConfig::load(&path).map_err(|e| e.to_string())?;
        let applied = d.apply_reload(&new_cfg);
        let journaled = d.journal().of_kind("setpoint_change").count() == 1;
        let _ = std::fs::remove_file(&path);
        Ok(baseline && tripped && applied && d.setpoint_watts() == 812.5 && journaled)
    })();
    let reload_ok = matches!(reload_ok, Ok(true));
    fmt::check(
        "config rewrite hot-reloads the set-point",
        reload_ok,
        "mtime watcher -> DaemonConfig::load -> apply_reload, journaled",
    );
    all_ok &= reload_ok;

    // ---- check 6: SIGHUP latches the reload flag (Unix) ---------------
    #[cfg(unix)]
    {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        const SIGHUP: i32 = 1;
        let sig = ReloadSignal::install();
        let _ = sig.take();
        unsafe {
            raise(SIGHUP);
        }
        let sighup_ok = sig.take() && !sig.take();
        fmt::check(
            "SIGHUP latches the reload flag exactly once",
            sighup_ok,
            "installed handler does only an atomic store",
        );
        all_ok &= sighup_ok;
    }

    all_ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let config_path = value("--config").map(PathBuf::from);
    let mut cfg = match &config_path {
        Some(p) => DaemonConfig::load(p).unwrap_or_else(|e| {
            eprintln!("capgpud: {e}");
            std::process::exit(2);
        }),
        None => DaemonConfig::default_sim(),
    };
    if let Some(b) = value("--backend") {
        cfg.backend = b;
    }
    if let Some(s) = value("--setpoint") {
        cfg.setpoint_watts = s.parse().unwrap_or_else(|_| {
            eprintln!("capgpud: bad --setpoint `{s}`");
            std::process::exit(2);
        });
    }
    if let Err(e) = cfg.validate() {
        eprintln!("capgpud: {e}");
        std::process::exit(2);
    }
    let periods: u64 = value("--periods")
        .map(|p| {
            p.parse().unwrap_or_else(|_| {
                eprintln!("capgpud: bad --periods `{p}`");
                std::process::exit(2);
            })
        })
        .unwrap_or(DEFAULT_PERIODS);

    if flag("--smoke") {
        if !smoke(&cfg, periods) {
            std::process::exit(1);
        }
        return;
    }
    if flag("--serve") {
        let bound = value("--periods").map(|_| periods);
        serve(&cfg, config_path.as_ref(), bound);
        return;
    }
    // Default: dry run (the golden).
    match dry_run_transcript(&cfg, periods) {
        Ok(t) => print!("{t}"),
        Err(e) => {
            eprintln!("capgpud: {e}");
            std::process::exit(1);
        }
    }
}
