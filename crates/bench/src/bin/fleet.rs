//! **Fleet-scale hierarchical capping** — drives `capgpu-fleet`
//! (DESIGN.md §16) at datacenter scale and verifies the claims that make
//! the fleet layer trustworthy:
//!
//! 1. hierarchical re-division + stream migration **hold every rack
//!    budget** (after the first floor-learning epoch) under an
//!    oversubscribed datacenter budget, with **fewer SLO misses than
//!    static equal-split**,
//! 2. the sharded simulation is **bit-identical across 1/2/4/8 worker
//!    threads** and across a full rebuild/rerun,
//! 3. resident state is **O(servers)**: peak in-flight traces ≤ threads
//!    and peak pending summaries ≤ the reorder window — asserted from
//!    the report's instrumentation, not claimed.
//!
//! The full run simulates a 16-rack × 64-server = **1024-server**
//! mixed-generation fleet (V100/A100/H100 classes) for 12 allocator
//! epochs × 8 control periods; regenerate the committed golden with:
//! `cargo run --release -p capgpu-bench --bin fleet > results/fleet.txt`
//! — timings (server-periods/sec) go to **stderr**, keeping the golden
//! deterministic.
//!
//! `--smoke` shrinks to a 4-rack × 6-server fleet for CI; the checks are
//! identical and the bin exits nonzero if any of them fails.

use capgpu_bench::fmt;
use capgpu_fleet::prelude::*;
use std::time::Instant;

struct Geometry {
    racks: usize,
    per_rack: usize,
    epochs: usize,
    epoch_periods: usize,
    budget_per_server: f64,
    thread_counts: &'static [usize],
    seed: u64,
}

const FULL: Geometry = Geometry {
    racks: 16,
    per_rack: 64,
    epochs: 12,
    epoch_periods: 8,
    budget_per_server: 1700.0,
    thread_counts: &[1, 2, 4, 8],
    seed: 41,
};

const SMOKE: Geometry = Geometry {
    racks: 4,
    per_rack: 6,
    epochs: 6,
    epoch_periods: 6,
    budget_per_server: 1700.0,
    thread_counts: &[1, 2, 4],
    seed: 41,
};

/// Reference thread count for the golden run (results are identical for
/// every thread count — that is check 2).
const REF_THREADS: usize = 2;

fn topology(g: &Geometry) -> FleetTopology {
    // Mixed generations cycle across slots; load is deliberately uneven
    // across racks (rack r hosts `r % 5` hot servers carrying 1.25× the
    // nominal stream count) so the hierarchical allocator has real
    // inter-rack asymmetry to exploit.
    FleetTopology::datacenter(g.racks, g.per_rack, |rack, slot| ServerSpec {
        class: slot % 3,
        streams: if slot < rack % 5 { 5 } else { 4 },
    })
    .expect("fleet topology is valid")
}

fn config(g: &Geometry, allocator: AllocatorMode, migrate: bool) -> FleetConfig {
    FleetConfig {
        epochs: g.epochs,
        epoch_periods: g.epoch_periods,
        allocator,
        migration: if migrate {
            Some(MigrationConfig::default())
        } else {
            None
        },
        ..FleetConfig::new(g.budget_per_server * (g.racks * g.per_rack) as f64)
    }
}

fn build(g: &Geometry, allocator: AllocatorMode, migrate: bool) -> FleetSim {
    FleetSim::new(
        topology(g),
        &mixed_generation_classes(g.seed),
        config(g, allocator, migrate),
    )
    .expect("fleet construction")
}

fn run(g: &Geometry, allocator: AllocatorMode, migrate: bool, threads: usize) -> FleetReport {
    let mut sim = build(g, allocator, migrate);
    let t0 = Instant::now();
    let report = sim.run(threads).expect("fleet run");
    let dt = t0.elapsed().as_secs_f64();
    eprintln!(
        "{:?} migrate={migrate} threads={threads}: {:.0} server-periods/sec",
        allocator,
        report.server_periods as f64 / dt
    );
    report
}

/// Post-warmup rack overshoot: max of measured − assigned over every
/// rack in every epoch after the first (the first epoch is where the
/// allocator learns SLO-floor-limited servers' effective minimums).
fn post_warmup_overshoot(report: &FleetReport) -> f64 {
    report
        .epochs
        .iter()
        .skip(1)
        .flat_map(|e| e.racks.iter())
        .map(|r| r.measured - r.assigned)
        .fold(f64::NEG_INFINITY, f64::max)
}

fn post_warmup_misses(report: &FleetReport) -> u64 {
    report.epochs.iter().skip(1).map(EpochReport::misses).sum()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let g = if smoke { &SMOKE } else { &FULL };
    let servers = g.racks * g.per_rack;
    let budget = g.budget_per_server * servers as f64;
    let mut all_ok = true;

    fmt::header(&format!(
        "Fleet: {} servers ({} racks x {}), {:.0} kW budget, {} epochs x {} periods, V100/A100/H100 mix",
        servers,
        g.racks,
        g.per_rack,
        budget / 1000.0,
        g.epochs,
        g.epoch_periods
    ));

    // ---- reference run: hierarchical + migration ----------------------
    let reference = run(g, AllocatorMode::Hierarchical, true, REF_THREADS);
    println!("hierarchical + migration (per epoch):");
    println!(
        "  {:>5} {:>14} {:>14} {:>9} {:>11} {:>10}",
        "epoch", "assigned (W)", "measured (W)", "misses", "completed", "migrations"
    );
    for (e, epoch) in reference.epochs.iter().enumerate() {
        println!(
            "  {:>5} {:>14.1} {:>14.1} {:>9} {:>11} {:>10}",
            e,
            epoch.assigned_watts(),
            epoch.measured_watts(),
            epoch.misses(),
            epoch.completed(),
            epoch.migrations.len()
        );
    }
    let last = reference.epochs.last().expect("epochs non-empty");
    println!("final epoch, per rack:");
    println!(
        "  {:>5} {:>13} {:>13} {:>8} {:>8} {:>12}",
        "rack", "assigned (W)", "measured (W)", "misses", "binding", "worst p99 (s)"
    );
    for (r, rack) in last.racks.iter().enumerate() {
        println!(
            "  {:>5} {:>13.1} {:>13.1} {:>8} {:>8} {:>12.4}",
            r, rack.assigned, rack.measured, rack.misses, rack.binding_servers, rack.worst_p99_s
        );
    }

    // ---- check 1: every rack budget holds ------------------------------
    let assigned_ok = reference
        .epochs
        .iter()
        .all(|e| e.assigned_watts() <= budget + 1e-6);
    fmt::check(
        "assigned set points never exceed the datacenter budget",
        assigned_ok,
        &format!("budget {budget:.0} W at every epoch"),
    );
    all_ok &= assigned_ok;

    let overshoot = post_warmup_overshoot(&reference);
    // Tolerance: per-server steady-state regulation ripple, summed over
    // a rack.
    let overshoot_tol = 2.0 * g.per_rack as f64;
    let held = overshoot <= overshoot_tol;
    fmt::check(
        "every rack budget held after the floor-learning epoch",
        held,
        &format!("worst rack overshoot {overshoot:.1} W (tolerance {overshoot_tol:.0} W)"),
    );
    all_ok &= held;

    // ---- check 2: fewer misses than static equal-split -----------------
    let equal = run(g, AllocatorMode::EqualSplit, false, REF_THREADS);
    let h_miss = post_warmup_misses(&reference);
    let e_miss = post_warmup_misses(&equal);
    let fewer = h_miss < e_miss;
    fmt::check(
        "hierarchical + migration misses fewer SLOs than static equal-split",
        fewer,
        &format!(
            "{h_miss} vs {e_miss} post-warmup misses ({:.1}% vs {:.1}% of batches)",
            100.0 * reference.miss_rate(),
            100.0 * equal.miss_rate()
        ),
    );
    all_ok &= fewer;

    // ---- check 3: deterministic rerun ----------------------------------
    let rerun = run(g, AllocatorMode::Hierarchical, true, REF_THREADS);
    let rerun_ok = rerun == reference;
    fmt::check(
        "full rebuild + rerun is bit-identical",
        rerun_ok,
        &format!("{} server-periods", reference.server_periods),
    );
    all_ok &= rerun_ok;

    // ---- check 4: bit-identical across thread counts -------------------
    let mut threads_ok = true;
    let mut memory_ok = true;
    for &threads in g.thread_counts {
        let report = run(g, AllocatorMode::Hierarchical, true, threads);
        threads_ok &= report == reference;
        // Memory bound, asserted from instrumentation: in-flight traces
        // never exceed the worker count, pending summaries never exceed
        // the reorder window, and retained state is per-server scalars
        // plus per-rack rows only.
        memory_ok &= report.peak_live_traces <= threads;
        memory_ok &= report.peak_pending <= report.reorder_window;
        memory_ok &= report.stats.len() == servers;
        memory_ok &= report.epochs.iter().all(|e| e.racks.len() == g.racks);
    }
    fmt::check(
        &format!(
            "fleet report bit-identical across {:?} threads",
            g.thread_counts
        ),
        threads_ok,
        &format!("{} servers, {} epochs", servers, g.epochs),
    );
    all_ok &= threads_ok;
    // The measured peaks are scheduling instrumentation (they vary run
    // to run with thread timing), so they go to stderr with the other
    // nondeterministic numbers; the golden records only the verdict.
    eprintln!(
        "peak pending {} (window {}), peak live traces {}",
        reference.peak_pending, reference.reorder_window, reference.peak_live_traces
    );
    fmt::check(
        "resident state O(servers): traces <= threads, pending <= reorder window",
        memory_ok,
        &format!(
            "bounds asserted at every thread count in {:?}",
            g.thread_counts
        ),
    );
    all_ok &= memory_ok;

    println!(
        "totals: {} migrations, miss rate {:.4} (equal-split {:.4})",
        reference.total_migrations(),
        reference.miss_rate(),
        equal.miss_rate()
    );

    if !all_ok {
        std::process::exit(1);
    }
}
