//! **Serving ablation** — p99-miss-rate-vs-cap curves for CapGPU and the
//! five §6.1 baselines on the request-level serving testbed (DESIGN.md
//! §12). With the discrete-event serving layer enabled, constraint (10b)
//! is checked against *measured* request tails: frequency cuts inflate
//! batch service time, queues build, and p99 latency diverges long before
//! the mean does. The curves show how much SLO headroom each controller
//! preserves as the cap deepens, plus how miss rates respond to arrival
//! load scaling and a mid-run traffic burst.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin serving`
//!
//! `--smoke` runs a shrunk grid (3 caps, 2 load scales, short runs) — the
//! CI smoke configuration; the shape checks are identical.

use capgpu::prelude::*;
use capgpu::sweep::{ControllerSpec, SweepSpec};
use capgpu_bench::fmt;

const SEED: u64 = 42;

/// The six contenders: CapGPU plus the five baselines of §6.1.
fn contenders() -> Vec<ControllerSpec> {
    vec![
        ControllerSpec::CapGpu,
        ControllerSpec::FixedStep { multiplier: 2 },
        ControllerSpec::SafeFixedStep { multiplier: 1 },
        ControllerSpec::GpuOnly,
        ControllerSpec::CpuOnly,
        ControllerSpec::Split { gpu_share: 0.5 },
    ]
}

/// Worst-task deadline-miss rate of a run.
fn worst_miss(trace: &RunTrace) -> f64 {
    trace.miss_rates.iter().cloned().fold(0.0_f64, f64::max)
}

/// Worst-task measured p99 request latency (seconds).
fn worst_p99(trace: &RunTrace) -> f64 {
    trace.p99_latency_s.iter().cloned().fold(0.0_f64, f64::max)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (caps, scales, periods): (Vec<f64>, Vec<f64>, usize) = if smoke {
        (vec![880.0, 1020.0, 1160.0], vec![0.8, 1.2], 12)
    } else {
        (
            vec![880.0, 950.0, 1020.0, 1090.0, 1160.0],
            vec![0.6, 0.8, 1.0, 1.2],
            40,
        )
    };

    cap_curves(&caps, periods);
    // The family's burst fires at period 50; the full run must reach it.
    load_and_burst(&scales, if smoke { periods } else { 60 });
}

/// P99-miss-rate-vs-cap: one serving run per (cap, controller) cell.
fn cap_curves(caps: &[f64], periods: usize) {
    fmt::header("Serving ablation A: p99 / miss rate vs power cap");
    let spec = SweepSpec::new(Scenario::serving_testbed(SEED))
        .setpoints(caps)
        .periods(periods);
    let spec = contenders().into_iter().fold(spec, |s, c| s.controller(c));
    let report = spec.run().expect("cap sweep");
    let rerun = {
        let spec = SweepSpec::new(Scenario::serving_testbed(SEED))
            .setpoints(caps)
            .periods(periods);
        contenders()
            .into_iter()
            .fold(spec, |s, c| s.controller(c))
            .run()
            .expect("rerun")
    };

    let labels: Vec<String> = (0..6)
        .map(|c| report.get(0, 0, 0, c).cell.controller_label.clone())
        .collect();

    println!("worst-task deadline-miss rate (%):");
    print!("{:>8}", "cap (W)");
    for l in &labels {
        print!(" {l:>20}");
    }
    println!();
    for (i, cap) in caps.iter().enumerate() {
        print!("{cap:>8.0}");
        for c in 0..6 {
            print!(" {:>20.2}", 100.0 * worst_miss(report.trace(0, 0, i, c)));
        }
        println!();
    }

    println!();
    println!("worst-task measured p99 latency (ms):");
    print!("{:>8}", "cap (W)");
    for l in &labels {
        print!(" {l:>20}");
    }
    println!();
    for (i, cap) in caps.iter().enumerate() {
        print!("{cap:>8.0}");
        for c in 0..6 {
            print!(" {:>20.1}", 1e3 * worst_p99(report.trace(0, 0, i, c)));
        }
        println!();
    }

    let deepest = 0;
    let roomiest = caps.len() - 1;
    let capgpu = 0;
    fmt::check(
        "deterministic: identical sweep reruns bit-identically",
        report == rerun,
        &format!("{} cells compared", report.len()),
    );
    fmt::check(
        "deep caps inflate CapGPU's measured tail",
        worst_p99(report.trace(0, 0, deepest, capgpu))
            >= worst_p99(report.trace(0, 0, roomiest, capgpu)),
        &format!(
            "p99 {:.1} ms at {:.0} W vs {:.1} ms at {:.0} W",
            1e3 * worst_p99(report.trace(0, 0, deepest, capgpu)),
            caps[deepest],
            1e3 * worst_p99(report.trace(0, 0, roomiest, capgpu)),
            caps[roomiest]
        ),
    );
    let worst_baseline_miss = (1..6)
        .map(|c| worst_miss(report.trace(0, 0, deepest, c)))
        .fold(0.0_f64, f64::max);
    fmt::check(
        "CapGPU's deepest-cap miss rate beats the worst baseline",
        worst_miss(report.trace(0, 0, deepest, capgpu)) <= worst_baseline_miss + 1e-12,
        &format!(
            "{:.2}% vs {:.2}% at {:.0} W",
            100.0 * worst_miss(report.trace(0, 0, deepest, capgpu)),
            100.0 * worst_baseline_miss,
            caps[deepest]
        ),
    );
}

/// Arrival-load scaling and burst handling via the serving scenario
/// family, CapGPU at a mid-depth cap.
fn load_and_burst(scales: &[f64], periods: usize) {
    fmt::header("Serving ablation B: arrival-load scaling and burst");
    let report = SweepSpec::serving_family(SEED, scales, Some(2.0))
        .expect("family")
        .setpoint(1020.0)
        .periods(periods)
        .controller(ControllerSpec::CapGpu)
        .run()
        .expect("family sweep");
    println!(
        "{:>12} {:>12} {:>12} {:>14}",
        "variant", "miss (%)", "p99 (ms)", "thr (req/s)"
    );
    let mut misses = Vec::new();
    for cell in &report.cells {
        let trace = cell.trace();
        let thr: f64 = trace.steady_gpu_throughput(0.5).iter().sum();
        println!(
            "{:>12} {:>12.2} {:>12.1} {:>14.1}",
            cell.cell.scenario_label,
            100.0 * worst_miss(trace),
            1e3 * worst_p99(trace),
            thr
        );
        misses.push(worst_miss(trace));
    }
    // The last cell is the burst variant; the scales precede it.
    let lightest = misses[0];
    let heaviest = misses[scales.len() - 1];
    fmt::check(
        "heavier offered load never lowers the worst miss rate",
        heaviest >= lightest,
        &format!(
            "{:.2}% at x{:.2} vs {:.2}% at x{:.2}",
            100.0 * heaviest,
            scales[scales.len() - 1],
            100.0 * lightest,
            scales[0]
        ),
    );
}
