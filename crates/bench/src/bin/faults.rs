//! **Faults ablation** — cap-violation energy and SLO misses under
//! deterministic fault storms (DESIGN.md §13). The storm schedule drives
//! meter dropout/bias, a stuck GPU clock, a GPU ejection, and a PSU
//! derate through the simulated testbed; every §6.1 contender runs the
//! identical storm twice, once bare and once wrapped by the supervisory
//! failover ladder. The headline number is cap-violation energy (W·s)
//! against the instantaneous feasible budget `min(set-point, PSU limit)`
//! — exactly what a derated supply makes physically dangerous.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin faults`
//!
//! `--smoke` runs the default-intensity storm only — the CI smoke
//! configuration; the determinism and supervisor checks are identical.
//!
//! Exits nonzero if any shape check fails, so the CI smoke step is a
//! real gate.

use capgpu::prelude::*;
use capgpu::sweep::{ControllerSpec, SweepSpec};
use capgpu_bench::fmt;

const SEED: u64 = 42;
/// Operator set-point above the storm's derated PSU limit (940 W), so an
/// unsupervised loop happily regulates into the infeasible region.
const SETPOINT: f64 = 1000.0;
/// Full storm horizon (periods) including the PSU-derate tail phase.
const PERIODS: usize = 60;

/// The six contenders: CapGPU plus the five baselines of §6.1.
fn contenders() -> Vec<ControllerSpec> {
    vec![
        ControllerSpec::CapGpu,
        ControllerSpec::FixedStep { multiplier: 2 },
        ControllerSpec::SafeFixedStep { multiplier: 1 },
        ControllerSpec::GpuOnly,
        ControllerSpec::CpuOnly,
        ControllerSpec::Split { gpu_share: 0.5 },
    ]
}

/// Cap-violation energy (W·s): power above the instantaneous feasible
/// budget `min(set-point, active PSU limit)`, integrated over the run.
fn violation_ws(trace: &RunTrace, schedule: &FaultSchedule, period_s: f64) -> f64 {
    trace
        .records
        .iter()
        .map(|rec| {
            let budget = schedule
                .feasible_limit(rec.period)
                .map_or(SETPOINT, |l| l.min(SETPOINT));
            (rec.avg_power - budget).max(0.0) * period_s
        })
        .sum()
}

/// Worst-task deadline-miss rate of a run.
fn worst_miss(trace: &RunTrace) -> f64 {
    trace.miss_rates.iter().cloned().fold(0.0_f64, f64::max)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let intensities: Vec<f64> = if smoke {
        vec![1.0]
    } else {
        vec![0.5, 1.0, 1.5]
    };
    let period_s = Scenario::fault_testbed(SEED).control_period_s as f64;
    let n_contenders = contenders().len();

    fmt::header("Faults ablation: cap violation and SLO misses under fault storms");
    let spec = || -> SweepSpec {
        let s = SweepSpec::fault_family(SEED, &intensities)
            .expect("fault family")
            .setpoint(SETPOINT)
            .periods(PERIODS);
        contenders().into_iter().fold(s, |s, c| s.controller(c))
    };
    let report = spec().run().expect("fault sweep");
    // The rerun takes the serial path on purpose: equality then covers
    // both rerun determinism and thread-schedule independence at once.
    let rerun = spec().run_serial().expect("serial rerun");

    let mut all_ok = true;
    let mut strict_sup = (0.0, 0.0);
    for (k, &intensity) in intensities.iter().enumerate() {
        let storm = FaultSchedule::storm(
            SEED,
            &StormConfig {
                intensity,
                ..Default::default()
            },
        )
        .expect("storm schedule");
        println!();
        println!("storm x{intensity:.2} ({PERIODS} periods, set point {SETPOINT:.0} W):");
        println!(
            "{:>20} {:>14} {:>14} {:>12} {:>12}",
            "controller", "viol (W·s)", "+sup (W·s)", "miss (%)", "+sup (%)"
        );
        for c in 0..n_contenders {
            let bare = report.trace(2 * k, 0, 0, c);
            let sup = report.trace(2 * k + 1, 0, 0, c);
            println!(
                "{:>20} {:>14.1} {:>14.1} {:>12.2} {:>12.2}",
                report.get(2 * k, 0, 0, c).cell.controller_label,
                violation_ws(bare, &storm, period_s),
                violation_ws(sup, &storm, period_s),
                100.0 * worst_miss(bare),
                100.0 * worst_miss(sup),
            );
        }
        if (intensity - 1.0).abs() < 1e-12 {
            strict_sup = (
                violation_ws(report.trace(2 * k, 0, 0, 0), &storm, period_s),
                violation_ws(report.trace(2 * k + 1, 0, 0, 0), &storm, period_s),
            );
        }
    }
    println!();

    let det_ok = report == rerun;
    fmt::check(
        "deterministic: serial rerun matches threaded sweep bit-identically",
        det_ok,
        &format!("{} cells compared", report.len()),
    );
    all_ok &= det_ok;

    // Default-intensity storm, CapGPU with vs without the supervisor:
    // the ladder must strictly cut cap-violation energy.
    let default_k = intensities
        .iter()
        .position(|&i| (i - 1.0).abs() < 1e-12)
        .expect("default intensity in grid");
    let (bare_v, sup_v) = strict_sup;
    let sup_ok = sup_v < bare_v;
    fmt::check(
        "supervisor strictly cuts CapGPU's cap-violation energy (storm x1.00)",
        sup_ok,
        &format!("{sup_v:.1} W·s supervised vs {bare_v:.1} W·s bare"),
    );
    all_ok &= sup_ok;

    // The ladder actually engaged: the supervised CapGPU trace must show
    // demoted periods and stale-flagged measurements during the storm.
    let sup_trace = report.trace(2 * default_k + 1, 0, 0, 0);
    let engaged = sup_trace.records.iter().any(|r| r.supervisor_tier > 0);
    let stale_seen = sup_trace.records.iter().any(|r| r.meter_stale);
    fmt::check(
        "failover ladder engaged during the storm",
        engaged,
        &format!(
            "{} of {} periods off Primary",
            sup_trace
                .records
                .iter()
                .filter(|r| r.supervisor_tier > 0)
                .count(),
            sup_trace.records.len()
        ),
    );
    all_ok &= engaged;
    fmt::check(
        "dropout phases are stale-flagged, never silently averaged",
        stale_seen,
        &format!(
            "{} stale periods",
            sup_trace.records.iter().filter(|r| r.meter_stale).count()
        ),
    );
    all_ok &= stale_seen;

    if !all_ok {
        std::process::exit(1);
    }
}
