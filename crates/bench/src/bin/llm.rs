//! **LLM ablation** — phase-aware vs phase-blind CapGPU on the two-phase
//! LLM serving testbed (DESIGN.md §17). The decode regime is memory-bound
//! (`γ_decode ≈ 0.2`): capping a decode-dominated GPU recovers almost no
//! performance headroom per watt, it just stretches decode residency —
//! resident contexts hold their KV longer, cache admission stalls, and
//! the decode-bound agent task's TTFT collapses along with the
//! inter-token tail. The phase-blind arm sees only normalized token
//! throughput and parks exactly that GPU. The phase-aware arm folds the
//! per-device phase mix (prefill share, KV occupancy) into the weight
//! assignment and sheds the cap's burden onto prefill-elastic devices
//! instead, buying back TTFT and inter-token p99 at the same measured
//! power.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin llm`
//!
//! `--smoke` runs a shrunk grid (2 caps, short runs) — the CI smoke
//! configuration; the shape checks are identical.

use capgpu::prelude::*;
use capgpu::sweep::{ControllerSpec, SweepSpec};
use capgpu_bench::fmt;

const SEED: u64 = 42;

/// Worst-task TTFT p99 (seconds).
fn worst_ttft(trace: &RunTrace) -> f64 {
    trace.ttft_p99_s.iter().cloned().fold(0.0_f64, f64::max)
}

/// Worst-task inter-token p99 (seconds).
fn worst_itl(trace: &RunTrace) -> f64 {
    trace.itl_p99_s.iter().cloned().fold(0.0_f64, f64::max)
}

/// Worst-task inter-token SLO miss rate.
fn worst_itl_miss(trace: &RunTrace) -> f64 {
    trace.itl_miss_rates.iter().cloned().fold(0.0_f64, f64::max)
}

/// Worst-task TTFT SLO miss rate.
fn worst_ttft_miss(trace: &RunTrace) -> f64 {
    trace
        .ttft_miss_rates
        .iter()
        .cloned()
        .fold(0.0_f64, f64::max)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (caps, periods): (Vec<f64>, usize) = if smoke {
        (vec![900.0, 1100.0], 15)
    } else {
        (vec![900.0, 950.0, 1020.0, 1090.0, 1160.0], 40)
    };

    let mut all_ok = true;
    all_ok &= phase_ablation(&caps, periods);
    all_ok &= load_scaling(if smoke { periods } else { 30 }, smoke);
    if !all_ok {
        std::process::exit(1);
    }
}

/// Phase-aware vs phase-blind CapGPU across caps, at matched power.
fn phase_ablation(caps: &[f64], periods: usize) -> bool {
    fmt::header("LLM ablation A: phase-aware vs phase-blind CapGPU");
    let build = || {
        SweepSpec::new(Scenario::llm_testbed(SEED))
            .setpoints(caps)
            .periods(periods)
            .controller(ControllerSpec::CapGpu)
            .controller(ControllerSpec::CapGpuPhaseBlind)
    };
    let report = build().run().expect("llm sweep");
    let rerun = build().run().expect("llm rerun");

    println!(
        "{:>8} {:>6} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "", "", "phase-aware", "", "", "phase-blind", "", ""
    );
    println!(
        "{:>8} {:>6} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "cap (W)", "", "power (W)", "ttft p99", "itl p99", "power (W)", "ttft p99", "itl p99"
    );
    for (i, cap) in caps.iter().enumerate() {
        let aware = report.trace(0, 0, i, 0);
        let blind = report.trace(0, 0, i, 1);
        let (pa, _) = aware.steady_state_power(0.8);
        let (pb, _) = blind.steady_state_power(0.8);
        println!(
            "{cap:>8.0} {:>6} | {pa:>12.1} {:>9.0} ms {:>9.1} ms | {pb:>12.1} {:>9.0} ms {:>9.1} ms",
            "",
            1e3 * worst_ttft(aware),
            1e3 * worst_itl(aware),
            1e3 * worst_ttft(blind),
            1e3 * worst_itl(blind),
        );
    }

    let mut ok = true;
    let c = report == rerun;
    fmt::check(
        "deterministic: identical sweep reruns bit-identically",
        c,
        &format!("{} cells compared", report.len()),
    );
    ok &= c;

    // The comparison is only meaningful at matched power: the MPC's
    // integral action must pull both arms onto the cap.
    let mut max_gap = 0.0_f64;
    for (i, cap) in caps.iter().enumerate() {
        let (pa, _) = report.trace(0, 0, i, 0).steady_state_power(0.8);
        let (pb, _) = report.trace(0, 0, i, 1).steady_state_power(0.8);
        max_gap = max_gap.max((pa - pb).abs() / cap);
    }
    let c = max_gap < 0.02;
    fmt::check(
        "equal power: both arms settle on the cap (gap < 2%)",
        c,
        &format!("worst steady-state power gap {:.2}%", 100.0 * max_gap),
    );
    ok &= c;

    // The headline claim, judged at the deepest cap where the phase
    // signal matters most: phase-aware wins both tails.
    let deepest = 0;
    let aware = report.trace(0, 0, deepest, 0);
    let blind = report.trace(0, 0, deepest, 1);
    let c = worst_itl(aware) < worst_itl(blind);
    fmt::check(
        "phase-aware beats phase-blind on inter-token p99 at the deepest cap",
        c,
        &format!(
            "{:.1} ms vs {:.1} ms at {:.0} W",
            1e3 * worst_itl(aware),
            1e3 * worst_itl(blind),
            caps[deepest]
        ),
    );
    ok &= c;
    let c = worst_ttft(aware) <= worst_ttft(blind);
    fmt::check(
        "phase-aware TTFT p99 is no worse at the deepest cap",
        c,
        &format!(
            "{:.0} ms vs {:.0} ms at {:.0} W",
            1e3 * worst_ttft(aware),
            1e3 * worst_ttft(blind),
            caps[deepest]
        ),
    );
    ok &= c;
    let c = worst_itl_miss(aware) <= worst_itl_miss(blind) + 1e-12;
    fmt::check(
        "phase-aware inter-token SLO miss rate is no worse",
        c,
        &format!(
            "{:.2}% vs {:.2}% at {:.0} W",
            100.0 * worst_itl_miss(aware),
            100.0 * worst_itl_miss(blind),
            caps[deepest]
        ),
    );
    ok &= c;
    let c = worst_ttft_miss(aware) <= worst_ttft_miss(blind) + 1e-12;
    fmt::check(
        "phase-aware TTFT SLO miss rate is no worse",
        c,
        &format!(
            "{:.2}% vs {:.2}% at {:.0} W",
            100.0 * worst_ttft_miss(aware),
            100.0 * worst_ttft_miss(blind),
            caps[deepest]
        ),
    );
    ok &= c;
    ok
}

/// Arrival-load scaling on the LLM family, phase-aware CapGPU at a
/// mid-depth cap: token throughput follows the offered load, and the
/// inter-token tail degrades monotonically-ish as KV pressure rises.
fn load_scaling(periods: usize, smoke: bool) -> bool {
    fmt::header("LLM ablation B: arrival-load scaling");
    let scales: &[f64] = if smoke {
        &[0.8, 1.2]
    } else {
        &[0.6, 0.8, 1.0, 1.2]
    };
    let report = SweepSpec::llm_family(SEED, scales)
        .expect("family")
        .setpoint(1020.0)
        .periods(periods)
        .controller(ControllerSpec::CapGpu)
        .run()
        .expect("family sweep");
    println!(
        "{:>12} {:>14} {:>12} {:>12} {:>12}",
        "variant", "thr (tok/s)", "ttft p99", "itl p99", "itl miss (%)"
    );
    let mut tokens = Vec::new();
    for cell in &report.cells {
        let trace = cell.trace();
        let thr: f64 = trace.steady_gpu_throughput(0.5).iter().sum();
        println!(
            "{:>12} {:>14.0} {:>9.0} ms {:>9.1} ms {:>12.2}",
            cell.cell.scenario_label,
            thr,
            1e3 * worst_ttft(trace),
            1e3 * worst_itl(trace),
            100.0 * worst_itl_miss(trace),
        );
        tokens.push(thr);
    }
    let c = tokens.last().unwrap() > tokens.first().unwrap();
    fmt::check(
        "token throughput follows the offered load",
        c,
        &format!(
            "{:.0} tok/s at x{:.2} vs {:.0} tok/s at x{:.2}",
            tokens.last().unwrap(),
            scales.last().unwrap(),
            tokens.first().unwrap(),
            scales.first().unwrap()
        ),
    );
    c
}
