//! Performance snapshot: times the fixed reference sweep (the Fig. 6
//! accuracy grid, shortened) three ways — the pre-engine per-cell serial
//! pattern, the sweep engine's serial path, and the engine at 1/2/4/8
//! threads — verifies all of them produce bit-identical traces, and
//! writes the machine-readable `BENCH_sweep.json` so each PR can track
//! the repo's perf trajectory.
//!
//! Regenerate with:
//! `cargo run --release -p capgpu-bench --bin perf_snapshot`
//!
//! With `--check`, re-measures and compares against the committed
//! `BENCH_sweep.json` instead of overwriting it, exiting nonzero when
//! `engine_serial_ms`, the identification phase, the fast-MPC solve
//! (`mpc_solve_ns`), the streaming sweep's `sweep_cells_per_sec`, or
//! the fleet simulator's `fleet_server_periods_per_sec` regresses by
//! more than 30% (tolerance overridable with
//! `CAPGPU_PERF_TOLERANCE`), when the fast MPC path stops halving the
//! generic solve or its explicit-region hit falls below 3x the cold
//! solve, when the serving engine's event throughput or the LLM
//! continuous batcher's token throughput (`llm_tokens_per_sec`) drops
//! more than 30% below the committed rate, or when a telemetry record
//! or traced span pair exceeds its absolute ns budget — the CI
//! perf-regression gate.

use capgpu::prelude::*;
use capgpu_control::model::LinearPowerModel;
use capgpu_control::mpc::{MpcConfig, MpcController};
use capgpu_control::sysid::{RlsIdentifier, SystemIdentifier};
use capgpu_serve::{ArrivalGen, ArrivalProcess, ServeEngine, ServiceModel};
use std::fmt::Write as _;
use std::time::Instant;

/// Allowed slowdown factor before `--check` fails the build. Overridable
/// via [`TOLERANCE_ENV`] — see [`regression_factor`].
const REGRESSION_FACTOR: f64 = 1.30;

/// Environment variable overriding [`REGRESSION_FACTOR`], e.g.
/// `CAPGPU_PERF_TOLERANCE=1.5` on a noisy shared host. Values below 1.0
/// are ignored (a gate tighter than "no regression" is meaningless).
const TOLERANCE_ENV: &str = "CAPGPU_PERF_TOLERANCE";

/// The allowed slowdown factor for every relative `--check` gate:
/// `CAPGPU_PERF_TOLERANCE` when set to a float ≥ 1.0, else
/// [`REGRESSION_FACTOR`].
fn regression_factor() -> f64 {
    std::env::var(TOLERANCE_ENV)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&f| f.is_finite() && f >= 1.0)
        .unwrap_or(REGRESSION_FACTOR)
}

/// Absolute ceiling for one telemetry metric record (counter/gauge/
/// histogram), ns — enforced by `--check` regardless of the committed
/// snapshot.
const TELEMETRY_RECORD_BUDGET_NS: f64 = 50.0;

/// Absolute ceiling for one traced span enter/exit pair (two
/// `Instant::now()` reads plus the stack bookkeeping), ns.
const SPAN_PAIR_BUDGET_NS: f64 = 500.0;

/// Additive widening (ns) for relative gates on nanosecond-scale
/// telemetry metrics: at ~2 ns/record, 30% headroom is fractions of a
/// ns — host jitter alone would fail the build without this floor.
const NS_GATE_NOISE_FLOOR: f64 = 25.0;

/// Pulls the number following `"key":` out of the committed snapshot.
/// The snapshot is written by this binary with one scalar per line, so
/// a syntactic scan is enough — no JSON parser in the dependency tree.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Repeated-refit comparison at the testbed's device count: every
/// control period gets one new `(F, p̄)` sample and wants a refreshed
/// model. The batch path refits the whole growing history each time
/// (O(m·n²)); the streaming path folds the sample into the QR factor
/// and back-substitutes (O(n²)). Returns (batch_ms, rls_ms).
fn repeated_refit_comparison(n: usize) -> (f64, f64) {
    const HISTORY: usize = 64;
    const REFITS: usize = 200;
    let row = |i: usize| -> Vec<f64> {
        (0..n)
            .map(|d| 435.0 + (2400.0 - 435.0) * ((i * (2 * d + 3)) % 17) as f64 / 16.0)
            .collect()
    };
    let power = |f: &[f64]| -> f64 {
        280.0
            + f.iter()
                .enumerate()
                .map(|(d, x)| (0.05 + 0.02 * d as f64) * x)
                .sum::<f64>()
    };

    let mut batch = SystemIdentifier::new(n);
    let mut rls = RlsIdentifier::with_forgetting(n, 0.995).expect("rls");
    for i in 0..HISTORY {
        let f = row(i);
        let p = power(&f);
        batch.record(&f, p);
        rls.record(&f, p);
    }

    let t0 = Instant::now();
    for i in 0..REFITS {
        let f = row(HISTORY + i);
        batch.record(&f, power(&f));
        std::hint::black_box(batch.fit().expect("batch fit"));
    }
    let batch_ms = ms(t0.elapsed());

    let t0 = Instant::now();
    for i in 0..REFITS {
        let f = row(HISTORY + i);
        rls.record(&f, power(&f));
        std::hint::black_box(rls.fit().expect("rls fit"));
    }
    let rls_ms = ms(t0.elapsed());
    (batch_ms, rls_ms)
}

/// Serving-engine hot path (enqueue → dispatch → complete) at a drained
/// high-rate operating point: a fast service model keeps the queue
/// bounded so the event mix is dominated by arrivals and batch
/// completions rather than shedding. Returns wall-clock events/second.
fn serve_events_per_sec() -> f64 {
    let model = ServiceModel {
        e_min_s: 1e-4,
        gamma: 0.9,
        f_max_mhz: 1380.0,
        max_batch: 32,
        batch_overhead: 0.3,
    };
    let arrivals =
        ArrivalGen::new(ArrivalProcess::Poisson { rate_rps: 50_000.0 }, 7).expect("arrival gen");
    let mut engine = ServeEngine::new(model, 2e-4, 4096, arrivals).expect("serve engine");
    // Warmup window: allocate buffers, fill the queue.
    engine.advance(1.0, 1200.0);
    // Best of 3 intervals — throughput on a shared host jitters
    // downward, and the `--check` gate compares like to like.
    let mut best = 0.0_f64;
    for _ in 0..3 {
        let before = engine.events_total();
        let t0 = Instant::now();
        let mut elapsed = 0.0;
        while elapsed < 0.15 {
            std::hint::black_box(engine.advance(1.0, 1200.0));
            elapsed = t0.elapsed().as_secs_f64();
        }
        best = best.max((engine.events_total() - before) as f64 / elapsed);
    }
    assert!(engine.conserved(), "serve bench lost requests");
    best
}

/// LLM continuous-batcher hot path (arrival → chunked prefill → batched
/// decode → completion, with KV accounting on every step) at a saturated
/// operating point: short prompts and outputs keep the request churn —
/// and thus the admission/completion event rate — high while decode
/// batches stay full. Returns wall-clock simulated tokens/second.
fn llm_tokens_per_sec() -> f64 {
    let model = LlmServiceModel {
        f_max_mhz: 1380.0,
        prefill_tok_s: 50_000.0,
        gamma_prefill: 0.95,
        decode_base_s: 5e-4,
        decode_kv_coeff_s: 1e-8,
        gamma_decode: 0.2,
        step_overhead_s: 5e-5,
        max_batch: 64,
        kv_budget_tokens: 120_000,
        chunk_tokens: Some(256),
        gpu_util_prefill: 0.95,
        gpu_util_decode: 0.55,
    };
    let spec = LlmTaskSpec {
        arrival: ArrivalProcess::Poisson { rate_rps: 800.0 },
        prompt: TokenRange { lo: 100, hi: 300 },
        output: TokenRange { lo: 50, hi: 150 },
        ttft_slo_s: 1.0,
        itl_slo_s: 0.1,
    };
    let mut engine = LlmEngine::new(model, spec, 4096, 7).expect("llm engine");
    // Warmup window: allocate buffers, fill the running batch.
    engine.advance(1.0, 1200.0);
    let mut best = 0.0_f64;
    for _ in 0..3 {
        let before = engine.prefill_tokens_total() + engine.decode_tokens_total();
        let t0 = Instant::now();
        let mut elapsed = 0.0;
        while elapsed < 0.15 {
            std::hint::black_box(engine.advance(1.0, 1200.0));
            elapsed = t0.elapsed().as_secs_f64();
        }
        let after = engine.prefill_tokens_total() + engine.decode_tokens_total();
        best = best.max((after - before) as f64 / elapsed);
    }
    assert!(engine.conserved(), "llm bench lost requests");
    assert!(engine.tokens_conserved(), "llm bench lost tokens");
    best
}

/// Supervisor hot path: one `step()` per control period, ingesting the
/// period's health evidence and returning the failover directive. Best
/// of 3 intervals of 10k steps, reported in ns/step — the `--check`
/// gate also bounds it at 5% of an MPC control step, since it runs in
/// series with the controller on every period.
fn supervisor_overhead_ns() -> f64 {
    const STEPS: usize = 10_000;
    let gains = vec![0.035, 0.095, 0.095, 0.095];
    let mut sup = Supervisor::new(SupervisorConfig::default(), gains, 4).expect("supervisor");
    let applied = [2000.0, 900.0, 910.0, 920.0];
    let ejected = [false; 4];
    let mut round = 0usize;
    let (best_ms, ()) = measure_gated("supervisor_step", 3, || {
        for i in 0..STEPS {
            // Alternate applied vectors so the residual window stays hot
            // (the realistic steady state) without tripping authority.
            let shift = ((round * STEPS + i) % 3) as f64;
            let obs = HealthSample {
                fresh_samples: 4,
                meter_age_s: Some(0),
                avg_power: 900.0 + shift,
                setpoint: 900.0,
                psu_limit: None,
                applied_mean: &[
                    applied[0] + shift,
                    applied[1],
                    applied[2] + shift,
                    applied[3],
                ],
                ejected: &ejected,
            };
            std::hint::black_box(sup.step(&obs));
        }
        round += 1;
    });
    best_ms * 1e6 / STEPS as f64
}

/// Per-call MPC solve times (ns) at the testbed's device count:
/// the generic dense-KKT path, the fast box-QP path solved cold (warm
/// hint and region table cleared before every call), and the fast path
/// in its steady state (explicit-region hits).
struct MpcSolveNs {
    generic: f64,
    cold: f64,
    warm: f64,
}

/// Times one control period's solve on an 8-GPU server (1 CPU + 8 GPUs,
/// the paper's "about 4 to 8 GPUs" headline size), best of 5 intervals
/// of 2000 calls. The steady-state loop re-solves the identical problem,
/// which is exactly what the controller sees between set-point changes —
/// the explicit-MPC region table turns those periods into a
/// cached-factor polish.
fn mpc_solve_ns() -> MpcSolveNs {
    const STEPS: usize = 2_000;
    const GPUS: usize = 8;
    let mut f_min = vec![1000.0];
    let mut f_max = vec![2400.0];
    let mut gains = vec![0.05];
    f_min.extend(std::iter::repeat_n(435.0, GPUS));
    f_max.extend(std::iter::repeat_n(1350.0, GPUS));
    gains.extend(std::iter::repeat_n(0.1475, GPUS));
    let make = |fast: bool| {
        let mut config = MpcConfig::paper_defaults(f_min.clone(), f_max.clone());
        config.fast_solver = fast;
        let model = LinearPowerModel::new(gains.clone(), 330.0).expect("model");
        MpcController::new(config, model).expect("controller")
    };
    let mut freqs = vec![1700.0];
    freqs.extend(std::iter::repeat_n(900.0, GPUS));
    let weights = vec![1.0; GPUS + 1];
    let floors = f_min.clone();
    let run = |name: &str, ctrl: &MpcController, reset: bool| -> f64 {
        let (best_ms, ()) = measure_gated(name, 5, || {
            for _ in 0..STEPS {
                if reset {
                    ctrl.reset_fast_path();
                }
                std::hint::black_box(
                    ctrl.step(930.0, 900.0, &freqs, &weights, &floors)
                        .expect("mpc step"),
                );
            }
        });
        best_ms * 1e6 / STEPS as f64
    };

    let generic = run("mpc_generic", &make(false), false);
    let cold = run("mpc_fast_cold", &make(true), true);
    let warm_ctrl = make(true);
    let warm = run("mpc_fast_warm", &warm_ctrl, false);
    let (hits, misses) = warm_ctrl.fast_solver_stats();
    assert!(
        hits > 10 * misses,
        "steady-state loop must be hit-dominated (hits {hits}, misses {misses})"
    );
    MpcSolveNs {
        generic,
        cold,
        warm,
    }
}

/// Streaming sweep-engine throughput: a 16 seeds × 10 set points × 2
/// controllers = 320-cell FixedStep grid through
/// [`SweepSpec::streaming`], best of 3, reported in cells/second.
/// Also cross-checks 4-thread bit-identity against the serial fold.
fn sweep_streaming_cells_per_sec() -> f64 {
    let setpoints: Vec<f64> = (0..10).map(|i| 880.0 + 15.0 * i as f64).collect();
    let mut spec = SweepSpec::new(Scenario::paper_testbed(1))
        .setpoints(&setpoints)
        .periods(1)
        .controller(ControllerSpec::FixedStep { multiplier: 1 })
        .controller(ControllerSpec::FixedStep { multiplier: 2 });
    for seed in 0..16 {
        spec = spec.seed(seed);
    }
    let cells = spec.num_cells();
    let (best_ms, streamed) = measure_gated("sweep_streaming", 3, || {
        spec.streaming_with_threads(4).expect("streaming sweep")
    });
    assert_eq!(
        streamed,
        spec.streaming_serial().expect("serial streaming"),
        "streamed summary diverged from the serial fold"
    );
    cells as f64 / (best_ms / 1e3)
}

/// Fleet-simulator throughput: a 24-server mixed-generation fleet
/// (DESIGN.md §16) run for 3 allocator epochs × 4 control periods on 2
/// worker threads, best of 3, reported in server-periods/second. One
/// iteration covers the whole fleet loop: hierarchical re-division,
/// sharded server stepping through the reorder window, per-rack folding,
/// and migration planning. Construction (per-class identification) is
/// excluded — the steady-state stepping rate is what bounds fleet-scale
/// studies.
fn fleet_server_periods_per_sec() -> f64 {
    use capgpu_fleet::prelude::*;
    let topo = || {
        FleetTopology::datacenter(4, 6, |rack, slot| ServerSpec {
            class: slot % 3,
            streams: if slot < rack % 5 { 5 } else { 4 },
        })
        .expect("fleet topology")
    };
    let cfg = || FleetConfig {
        epochs: 3,
        epoch_periods: 4,
        ..FleetConfig::new(1700.0 * 24.0)
    };
    let classes = mixed_generation_classes(41);
    let mut sims: Vec<FleetSim> = (0..3)
        .map(|_| FleetSim::new(topo(), &classes, cfg()).expect("fleet sim"))
        .collect();
    let mut server_periods = 0;
    let (best_ms, ()) = measure_gated("fleet_sim", 3, || {
        let mut sim = sims.pop().expect("pre-built sim");
        let report = sim.run(2).expect("fleet run");
        server_periods = report.server_periods;
        std::hint::black_box(report);
    });
    server_periods as f64 / (best_ms / 1e3)
}

/// Reference sweep: 5 controllers × 7 set points × 1 seed.
const SETPOINT_LO: f64 = 900.0;
const SETPOINT_STEP: f64 = 50.0;
const NUM_SETPOINTS: usize = 7;
const PERIODS: usize = 12;

fn reference_spec() -> SweepSpec {
    let setpoints: Vec<f64> = (0..NUM_SETPOINTS)
        .map(|i| SETPOINT_LO + SETPOINT_STEP * i as f64)
        .collect();
    SweepSpec::new(Scenario::paper_testbed(42))
        .setpoints(&setpoints)
        .periods(PERIODS)
        .controller(ControllerSpec::SafeFixedStep { multiplier: 1 })
        .controller(ControllerSpec::GpuOnly)
        .controller(ControllerSpec::Split { gpu_share: 0.4 })
        .controller(ControllerSpec::Split { gpu_share: 0.6 })
        .controller(ControllerSpec::CapGpu)
}

/// The pre-engine pattern every figure bin used: one fresh runner per
/// cell, identification re-run lazily inside each controller builder.
fn per_cell_serial() -> Vec<RunTrace> {
    let mut traces = Vec::new();
    for i in 0..NUM_SETPOINTS {
        let sp = SETPOINT_LO + SETPOINT_STEP * i as f64;
        for which in 0..5 {
            let mut r = ExperimentRunner::new(Scenario::paper_testbed(42), sp).expect("runner");
            let c: Box<dyn PowerController> = match which {
                0 => Box::new(r.build_safe_fixed_step(1).expect("sfs")),
                1 => Box::new(r.build_gpu_only().expect("gpu-only")),
                2 => Box::new(r.build_split(0.4).expect("split40")),
                3 => Box::new(r.build_split(0.6).expect("split60")),
                _ => Box::new(r.build_capgpu_controller().expect("capgpu")),
            };
            traces.push(r.run(c, PERIODS).expect("run"));
        }
    }
    traces
}

fn ms(t: std::time::Duration) -> f64 {
    t.as_secs_f64() * 1e3
}

/// Best-of-`n` wall time (ms) for a gated metric, plus the last result.
///
/// Every metric that feeds a `--check` gate uses this estimator:
/// single-shot timings on a busy host jitter by ±40%, enough to trip a
/// 1.3x gate on noise alone, while minima are stable — and the committed
/// and measured sides of each gate then compare like to like.
fn measure_gated<T>(name: &str, n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(n > 0, "measure_gated({name}) needs at least one repeat");
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..n {
        let t0 = Instant::now();
        let out = f();
        best = best.min(ms(t0.elapsed()));
        last = Some(out);
    }
    (best, last.expect("ran at least once"))
}

/// Telemetry record hot path: one fully labeled metric record (counter
/// increment + gauge set + histogram observe, averaged over the three).
/// Budget: ≤ 50 ns/record, so a fully instrumented control period stays
/// invisible next to the MPC solve it observes.
fn telemetry_record_ns() -> f64 {
    use capgpu_telemetry::registry::Registry;
    const RECORDS: usize = 300_000;
    let mut reg = Registry::new();
    let c = reg.counter("bench_records_total", &[("device", "gpu0")]);
    let g = reg.gauge("bench_power_watts", &[("device", "gpu0")]);
    let h = reg.histogram(
        "bench_error_watts",
        &[("device", "gpu0")],
        &[0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
    );
    let (best_ms, ()) = measure_gated("telemetry_record", 3, || {
        for i in 0..RECORDS {
            let v = (i % 128) as f64;
            reg.inc(c, 1);
            reg.set(g, v);
            reg.observe(h, v);
        }
        std::hint::black_box(&reg);
    });
    // Three primitive records per loop iteration.
    best_ms * 1e6 / (3 * RECORDS) as f64
}

/// Span enter/exit pair on the trace stack (wall-clock mode, the
/// expensive path — the deterministic default compiles the pair down to
/// two no-op calls).
fn span_enter_exit_ns() -> f64 {
    use capgpu_telemetry::spans::SpanStack;
    const PAIRS: usize = 100_000;
    let mut spans = SpanStack::new();
    let id = spans.span("bench_span");
    let (best_ms, ()) = measure_gated("span_enter_exit", 3, || {
        for _ in 0..PAIRS {
            spans.enter(id);
            std::hint::black_box(spans.exit());
        }
    });
    best_ms * 1e6 / PAIRS as f64
}

/// Crash-recovery replay hot path: parse + state-fold a 100k-record
/// in-memory journal — what `capgpu-obs` and a restarting `capgpud` do
/// before the first recovered control period. Best of 3, reported as ms
/// for the whole journal. Replay time is operator-visible restart
/// downtime, so the `--check` gate treats it like the other wall-time
/// metrics: slower fails (NOT inverted, unlike the throughput rates).
fn obs_replay_ms() -> f64 {
    use capgpu_obs::reader::parse_jsonl;
    use capgpu_obs::replay::ReplayState;
    const RECORDS: usize = 100_000;
    let mut text = String::with_capacity(RECORDS * 160);
    for i in 0..RECORDS as u64 {
        let _ = writeln!(
            text,
            "{{\"v\":1,\"period\":{i},\"t_s\":{},\"kind\":\"period\",\"tier\":0,\"watts\":8{}0.25,\"setpoint\":900,\"stale\":0,\"delta_f_mhz\":-1.5,\"saturated\":false,\"targets\":\"13{}0,9{}2.5,875\"}}",
            4 * i,
            i % 10,
            i % 9,
            i % 7
        );
    }
    let (best_ms, state) = measure_gated("obs_replay", 3, || {
        let (records, torn) = parse_jsonl(&text, true).expect("parse journal");
        assert!(torn.is_none(), "synthetic journal has no torn tail");
        std::hint::black_box(ReplayState::replay(&records))
    });
    assert_eq!(state.last_period, Some(RECORDS as u64 - 1));
    best_ms
}

/// Backend-seam dispatch cost: one plant second driven through a boxed
/// `dyn PowerBackend` (`advance(1.0)` on a `SimBackend` with staged
/// utilizations) vs the identical second on the raw simulator `Server`
/// (`tick_second`). The trait is the control loop's and the daemon's
/// hot path — the gate below holds its dispatch overhead to ≤5% of the
/// direct tick. Returns `(dyn_ns, raw_ns)` per tick.
fn backend_step_ns() -> (f64, f64) {
    use capgpu_backend::{PowerBackend, SimBackend};
    use capgpu_sim::{presets, Server, ServerBuilder};
    const TICKS: usize = 100_000;
    let build = || -> Server {
        ServerBuilder::new(42)
            .add_device(presets::xeon_gold_5215())
            .add_device(presets::tesla_v100())
            .add_device(presets::tesla_v100())
            .build()
            .expect("server")
    };
    let utils = [0.85, 0.9, 0.7];
    let mut raw = build();
    let (raw_ms, ()) = measure_gated("backend_raw_tick", 3, || {
        for _ in 0..TICKS {
            std::hint::black_box(raw.tick_second(&utils).expect("tick"));
        }
    });
    let mut boxed: Box<dyn PowerBackend> = {
        let mut b = SimBackend::new(build());
        b.stage_utilizations(&utils).expect("stage");
        Box::new(b)
    };
    let (dyn_ms, ()) = measure_gated("backend_dyn_step", 3, || {
        for _ in 0..TICKS {
            std::hint::black_box(boxed.advance(1.0).expect("advance"));
        }
    });
    (dyn_ms * 1e6 / TICKS as f64, raw_ms * 1e6 / TICKS as f64)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let spec = reference_spec();
    let cells = spec.num_cells();
    println!("reference sweep: {cells} cells (5 controllers x {NUM_SETPOINTS} set points, {PERIODS} periods), available_parallelism = {cores}");

    // Baseline: the pre-engine per-cell serial pattern.
    let t0 = Instant::now();
    let baseline = per_cell_serial();
    let per_cell_ms = ms(t0.elapsed());
    println!("per-cell serial (seed path):  {per_cell_ms:9.1} ms");

    // Engine, serial reference implementation (gated → best of 3).
    let (engine_serial_ms, serial) = measure_gated("engine_serial", 3, || {
        spec.run_serial().expect("serial sweep")
    });
    println!("engine serial (shared ident): {engine_serial_ms:9.1} ms (best of 3)");

    // Engine across thread counts.
    let thread_counts = [1usize, 2, 4, 8];
    let mut parallel_ms = Vec::new();
    let mut parallel_identical = true;
    for &threads in &thread_counts {
        let t0 = Instant::now();
        let report = spec.run_with_threads(threads).expect("parallel sweep");
        let elapsed = ms(t0.elapsed());
        parallel_identical &= report == serial;
        println!("engine {threads} thread(s):           {elapsed:9.1} ms");
        parallel_ms.push(elapsed);
    }

    // Bit-exactness of the engine against the pre-engine pattern.
    let engine_matches_per_cell = serial.traces().zip(baseline.iter()).all(|(a, b)| a == b)
        && serial.traces().count() == baseline.len();

    let best_parallel_ms = parallel_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let speedup = per_cell_ms / best_parallel_ms;
    println!("speedup vs per-cell serial:   {speedup:9.2}x");
    println!("bit-identical: parallel vs serial = {parallel_identical}, engine vs per-cell = {engine_matches_per_cell}");

    // Per-phase breakdown of one reference cell, to guide optimization.
    // The identification phase is gated, so it too takes the best of N;
    // runners are pre-built so only `identify()` lands in the timed
    // region, matching the committed snapshot's methodology.
    let t0 = Instant::now();
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(42), 900.0).expect("runner");
    let new_ms = ms(t0.elapsed());
    let mut fresh: Vec<ExperimentRunner> = (0..5)
        .map(|_| ExperimentRunner::new(Scenario::paper_testbed(42), 900.0).expect("runner"))
        .collect();
    let (identify_ms, _) = measure_gated("identify", 5, || {
        let mut r = fresh.pop().expect("pre-built runner");
        r.identify().expect("identify");
    });
    runner.identify().expect("identify");
    let controller = runner.build_capgpu_controller().expect("controller");
    let t0 = Instant::now();
    runner.run(controller, 100).expect("run");
    let run100_ms = ms(t0.elapsed());

    let mut c2 = {
        let mut r = ExperimentRunner::new(Scenario::paper_testbed(42), 900.0).expect("runner");
        let c = r.build_capgpu_controller().expect("controller");
        (r, c)
    };
    use capgpu::controllers::ControlInput;
    let n = c2.0.layout().len();
    let targets = c2.0.layout().f_min.clone();
    let thr = vec![0.8; n];
    let floors = c2.0.layout().f_min.clone();
    let dev_power = vec![150.0; n];
    let input = ControlInput {
        measured_power: 950.0,
        setpoint: 900.0,
        current_targets: &targets,
        normalized_throughput: &thr,
        device_power: &dev_power,
        floors: &floors,
        phase_mix: None,
    };
    let t0 = Instant::now();
    for _ in 0..100 {
        std::hint::black_box(c2.1.control(&input).expect("control"));
    }
    let mpc100_ms = ms(t0.elapsed());
    println!(
        "cell phases: new {new_ms:.2} ms, identify {identify_ms:.2} ms, run(100) {run100_ms:.2} ms, 100 MPC calls {mpc100_ms:.2} ms"
    );

    // Streaming-refit comparison: 200 model refreshes over a growing
    // history, batch refit vs the QR-RLS path the runner uses when
    // `rls_tracking` is enabled.
    let (identify_refit_batch_ms, identify_rls_ms) =
        repeated_refit_comparison(runner.layout().len());
    let rls_speedup = identify_refit_batch_ms / identify_rls_ms;
    println!(
        "200 model refreshes: batch refit {identify_refit_batch_ms:.2} ms, streaming RLS {identify_rls_ms:.2} ms ({rls_speedup:.1}x)"
    );

    // Supervisor hot path: must stay negligible next to the MPC step it
    // wraps (budget: 5% of one control() call).
    let sup_ns = supervisor_overhead_ns();
    let mpc_step_ns = mpc100_ms * 1e6 / 100.0;
    let sup_budget_ok = sup_ns < 0.05 * mpc_step_ns;
    println!(
        "supervisor step: {sup_ns:.0} ns ({:.2}% of one MPC step) [{}]",
        100.0 * sup_ns / mpc_step_ns,
        if sup_budget_ok { "ok" } else { "OVER BUDGET" }
    );

    // Fast-MPC solver: the structure-exploiting box-QP path must beat
    // the generic dense-KKT solve 2x per control period in steady state
    // (DESIGN.md §15), and the explicit-region hit must be well below
    // the cold solve.
    let mpc = mpc_solve_ns();
    let mpc_vs_generic = mpc.generic / mpc.warm;
    let mpc_vs_cold = mpc.cold / mpc.warm;
    println!(
        "mpc solve: generic {:.0} ns, fast cold {:.0} ns, fast warm {:.0} ns ({mpc_vs_generic:.1}x vs generic, {mpc_vs_cold:.1}x vs cold)",
        mpc.generic, mpc.cold, mpc.warm
    );

    // Streaming sweep-engine throughput (larger is better — inverted
    // gate, like the serving engine's).
    let sweep_cps = sweep_streaming_cells_per_sec();
    println!("streaming sweep: {sweep_cps:.0} cells/sec (320-cell grid, 4 threads, serial-fold verified)");

    // Fleet-simulator throughput (larger is better — inverted gate).
    let fleet_sps = fleet_server_periods_per_sec();
    println!(
        "fleet simulator: {fleet_sps:.0} server-periods/sec (24-server mixed fleet, 2 threads)"
    );

    // Serving-engine event throughput (larger is better; the `--check`
    // gate below is therefore inverted for this metric).
    let serve_eps = serve_events_per_sec();
    let serve_floor_ok = serve_eps >= 1e6;
    println!(
        "serve engine hot path: {:.2}M events/sec [{}] (floor 1.00M)",
        serve_eps / 1e6,
        if serve_floor_ok { "ok" } else { "BELOW FLOOR" }
    );

    // LLM continuous-batcher throughput (larger is better — inverted
    // gate, like the serving engine's).
    let llm_tps = llm_tokens_per_sec();
    println!(
        "llm batcher hot path: {:.2}M simulated tokens/sec",
        llm_tps / 1e6
    );

    // Telemetry hot paths: one metric record and one traced span pair.
    // The record budget is absolute — 50 ns keeps a fully instrumented
    // period invisible next to the solve it observes.
    let record_ns = telemetry_record_ns();
    let record_budget_ok = record_ns <= TELEMETRY_RECORD_BUDGET_NS;
    println!(
        "telemetry record: {record_ns:.1} ns [{}] (budget {TELEMETRY_RECORD_BUDGET_NS:.0} ns)",
        if record_budget_ok {
            "ok"
        } else {
            "OVER BUDGET"
        }
    );
    let span_ns = span_enter_exit_ns();
    println!("telemetry span enter+exit: {span_ns:.1} ns (wall-clock tracing mode)");

    // Journal replay: restart downtime for a 100k-record journal.
    let replay_ms = obs_replay_ms();
    println!("obs journal replay: {replay_ms:.1} ms for 100k records (parse + state fold)");

    // PowerBackend seam: the runner and daemon sense/actuate through
    // `dyn PowerBackend`; its dispatch must stay invisible next to the
    // plant tick it wraps (budget: 5% of the direct tick).
    let (backend_dyn_ns, backend_raw_ns) = backend_step_ns();
    let backend_overhead_pct = 100.0 * (backend_dyn_ns - backend_raw_ns) / backend_raw_ns;
    let backend_budget_ok = backend_dyn_ns <= backend_raw_ns * 1.05 + NS_GATE_NOISE_FLOOR;
    println!(
        "backend seam step: raw tick {backend_raw_ns:.0} ns, dyn-dispatch {backend_dyn_ns:.0} ns ({backend_overhead_pct:+.1}% overhead) [{}]",
        if backend_budget_ok { "ok" } else { "OVER BUDGET" }
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"sweep_engine_reference\",");
    let _ = writeln!(
        json,
        "  \"regenerate\": \"cargo run --release -p capgpu-bench --bin perf_snapshot\","
    );
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(
        json,
        "  \"reference_sweep\": {{\"scenario\": \"paper_testbed(42)\", \"controllers\": 5, \"setpoints\": {NUM_SETPOINTS}, \"seeds\": 1, \"periods\": {PERIODS}, \"cells\": {cells}}},"
    );
    let _ = writeln!(json, "  \"per_cell_serial_ms\": {per_cell_ms:.3},");
    let _ = writeln!(json, "  \"engine_serial_ms\": {engine_serial_ms:.3},");
    let _ = writeln!(
        json,
        "  \"engine_parallel_ms\": {{\"1\": {:.3}, \"2\": {:.3}, \"4\": {:.3}, \"8\": {:.3}}},",
        parallel_ms[0], parallel_ms[1], parallel_ms[2], parallel_ms[3]
    );
    let _ = writeln!(json, "  \"best_parallel_ms\": {best_parallel_ms:.3},");
    let _ = writeln!(json, "  \"speedup_vs_per_cell_serial\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"bit_identical\": {{\"parallel_vs_serial\": {parallel_identical}, \"engine_vs_per_cell\": {engine_matches_per_cell}}},"
    );
    let _ = writeln!(
        json,
        "  \"cell_phase_ms\": {{\"runner_new\": {new_ms:.3}, \"identify\": {identify_ms:.3}, \"run_100_periods\": {run100_ms:.3}, \"mpc_100_calls\": {mpc100_ms:.3}}},"
    );
    let _ = writeln!(
        json,
        "  \"repeated_refit_ms\": {{\"batch\": {identify_refit_batch_ms:.3}, \"identify_rls_ms\": {identify_rls_ms:.3}, \"rls_speedup\": {rls_speedup:.3}}},"
    );
    let _ = writeln!(json, "  \"supervisor_overhead_ns\": {sup_ns:.1},");
    let _ = writeln!(
        json,
        "  \"mpc_solve\": {{\"generic_ns\": {:.1}, \"cold_ns\": {:.1}, \"warm_speedup_vs_generic\": {mpc_vs_generic:.2}, \"warm_speedup_vs_cold\": {mpc_vs_cold:.2}}},",
        mpc.generic, mpc.cold
    );
    let _ = writeln!(json, "  \"mpc_solve_ns\": {:.1},", mpc.warm);
    let _ = writeln!(json, "  \"sweep_cells_per_sec\": {sweep_cps:.0},");
    let _ = writeln!(json, "  \"fleet_server_periods_per_sec\": {fleet_sps:.0},");
    let _ = writeln!(json, "  \"serve_events_per_sec\": {serve_eps:.0},");
    let _ = writeln!(json, "  \"llm_tokens_per_sec\": {llm_tps:.0},");
    let _ = writeln!(json, "  \"telemetry_record_ns\": {record_ns:.1},");
    let _ = writeln!(json, "  \"span_enter_exit_ns\": {span_ns:.1},");
    let _ = writeln!(json, "  \"obs_replay_ms\": {replay_ms:.3},");
    let _ = writeln!(
        json,
        "  \"backend_step\": {{\"raw_tick_ns\": {backend_raw_ns:.1}, \"dyn_step_ns\": {backend_dyn_ns:.1}, \"overhead_pct\": {backend_overhead_pct:.2}}},"
    );
    let _ = writeln!(json, "  \"backend_step_ns\": {backend_dyn_ns:.1},");
    let _ = writeln!(
        json,
        "  \"note\": \"speedup on single-core hosts comes from sharing one identification pass per (scenario, seed) class across all cells; on multi-core hosts the cell phase additionally scales with the thread count\""
    );
    let _ = writeln!(json, "}}");

    if std::env::args().any(|a| a == "--check") {
        let committed = std::fs::read_to_string("BENCH_sweep.json")
            .expect("--check needs a committed BENCH_sweep.json");
        let factor = regression_factor();
        if (factor - REGRESSION_FACTOR).abs() > f64::EPSILON {
            println!("perf check: {TOLERANCE_ENV} overrides tolerance to {factor}x");
        }
        let mut failed = false;
        for (key, new_value) in [
            ("engine_serial_ms", engine_serial_ms),
            ("identify", identify_ms),
        ] {
            let Some(old_value) = extract_number(&committed, key) else {
                println!("perf check: key \"{key}\" missing from committed snapshot, skipping");
                continue;
            };
            let limit = old_value * factor;
            let verdict = if new_value > limit { "FAIL" } else { "ok" };
            println!(
                "perf check {key}: committed {old_value:.3} ms, measured {new_value:.3} ms, limit {limit:.3} ms [{verdict}]"
            );
            failed |= new_value > limit;
        }
        // Fast-MPC solve: relative gate on the steady-state (hit) path,
        // plus two structural floors that do not depend on the committed
        // snapshot — the fast path must halve the generic solve and the
        // explicit-region hit must stay well below the cold solve. The
        // floors are looser than the ratios the committed snapshot
        // records (≥5x) so host jitter cannot flake the build.
        if let Some(old_value) = extract_number(&committed, "mpc_solve_ns") {
            let limit = old_value * factor + NS_GATE_NOISE_FLOOR;
            let verdict = if mpc.warm > limit { "FAIL" } else { "ok" };
            println!(
                "perf check mpc_solve_ns: committed {old_value:.0} ns, measured {:.0} ns, limit {limit:.0} ns [{verdict}]",
                mpc.warm
            );
            failed |= mpc.warm > limit;
        } else {
            println!("perf check: key \"mpc_solve_ns\" missing from committed snapshot, skipping");
        }
        let halves_generic = mpc.warm <= mpc.generic / 2.0;
        println!(
            "perf check mpc fast-vs-generic: {mpc_vs_generic:.1}x (floor 2.0x) [{}]",
            if halves_generic { "ok" } else { "FAIL" }
        );
        failed |= !halves_generic;
        let hit_beats_cold = mpc_vs_cold >= 3.0;
        println!(
            "perf check mpc hit-vs-cold: {mpc_vs_cold:.1}x (floor 3.0x) [{}]",
            if hit_beats_cold { "ok" } else { "FAIL" }
        );
        failed |= !hit_beats_cold;
        // Streaming sweep throughput: larger is better — inverted gate.
        if let Some(old_value) = extract_number(&committed, "sweep_cells_per_sec") {
            let limit = old_value / factor;
            let verdict = if sweep_cps < limit { "FAIL" } else { "ok" };
            println!(
                "perf check sweep_cells_per_sec: committed {old_value:.0}/s, measured {sweep_cps:.0}/s, limit {limit:.0}/s [{verdict}]"
            );
            failed |= sweep_cps < limit;
        } else {
            println!(
                "perf check: key \"sweep_cells_per_sec\" missing from committed snapshot, skipping"
            );
        }
        // Fleet-simulator throughput: larger is better — inverted gate.
        if let Some(old_value) = extract_number(&committed, "fleet_server_periods_per_sec") {
            let limit = old_value / factor;
            let verdict = if fleet_sps < limit { "FAIL" } else { "ok" };
            println!(
                "perf check fleet_server_periods_per_sec: committed {old_value:.0}/s, measured {fleet_sps:.0}/s, limit {limit:.0}/s [{verdict}]"
            );
            failed |= fleet_sps < limit;
        } else {
            println!(
                "perf check: key \"fleet_server_periods_per_sec\" missing from committed snapshot, skipping"
            );
        }
        // Supervisor hot path: gated both relatively (vs the committed
        // snapshot) and absolutely (5% of an MPC control step) — a slow
        // supervisor taxes every control period of every run.
        if let Some(old_value) = extract_number(&committed, "supervisor_overhead_ns") {
            let limit = old_value * factor;
            let verdict = if sup_ns > limit { "FAIL" } else { "ok" };
            println!(
                "perf check supervisor_overhead_ns: committed {old_value:.0} ns, measured {sup_ns:.0} ns, limit {limit:.0} ns [{verdict}]"
            );
            failed |= sup_ns > limit;
        } else {
            println!(
                "perf check: key \"supervisor_overhead_ns\" missing from committed snapshot, skipping"
            );
        }
        let verdict = if sup_budget_ok { "ok" } else { "FAIL" };
        println!(
            "perf check supervisor budget: {sup_ns:.0} ns vs 5% of MPC step ({:.0} ns) [{verdict}]",
            0.05 * mpc_step_ns
        );
        failed |= !sup_budget_ok;
        // Throughput metric: larger is better, so this gate inverts —
        // fail when the measured rate drops below committed / factor.
        if let Some(old_value) = extract_number(&committed, "serve_events_per_sec") {
            let limit = old_value / factor;
            let verdict = if serve_eps < limit { "FAIL" } else { "ok" };
            println!(
                "perf check serve_events_per_sec: committed {old_value:.0}/s, measured {serve_eps:.0}/s, limit {limit:.0}/s [{verdict}]"
            );
            failed |= serve_eps < limit;
        } else {
            println!("perf check: key \"serve_events_per_sec\" missing from committed snapshot, skipping");
        }
        // LLM-batcher token throughput: larger is better — inverted gate.
        if let Some(old_value) = extract_number(&committed, "llm_tokens_per_sec") {
            let limit = old_value / factor;
            let verdict = if llm_tps < limit { "FAIL" } else { "ok" };
            println!(
                "perf check llm_tokens_per_sec: committed {old_value:.0}/s, measured {llm_tps:.0}/s, limit {limit:.0}/s [{verdict}]"
            );
            failed |= llm_tps < limit;
        } else {
            println!(
                "perf check: key \"llm_tokens_per_sec\" missing from committed snapshot, skipping"
            );
        }
        // Telemetry hot paths: relative gates like the supervisor's,
        // widened by an additive noise floor — a single record measures
        // in single-digit ns, where 30% headroom is fractions of a ns
        // and pure host jitter would trip the gate — plus absolute
        // ceilings, because instrumentation that shows up in the solve's
        // profile defeats its purpose.
        for (key, new_ns, ceiling) in [
            ("telemetry_record_ns", record_ns, TELEMETRY_RECORD_BUDGET_NS),
            ("span_enter_exit_ns", span_ns, SPAN_PAIR_BUDGET_NS),
        ] {
            let limit = match extract_number(&committed, key) {
                Some(old_value) => (old_value * factor + NS_GATE_NOISE_FLOOR).min(ceiling),
                None => {
                    println!(
                        "perf check: key \"{key}\" missing from committed snapshot, using absolute ceiling"
                    );
                    ceiling
                }
            };
            let verdict = if new_ns > limit { "FAIL" } else { "ok" };
            println!(
                "perf check {key}: measured {new_ns:.1} ns, limit {limit:.1} ns (ceiling {ceiling:.0} ns) [{verdict}]"
            );
            failed |= new_ns > limit;
        }
        // Journal replay: restart downtime, so slower fails — this is a
        // wall-time gate like engine_serial_ms, not an inverted
        // throughput gate.
        if let Some(old_value) = extract_number(&committed, "obs_replay_ms") {
            let limit = old_value * factor;
            let verdict = if replay_ms > limit { "FAIL" } else { "ok" };
            println!(
                "perf check obs_replay_ms: committed {old_value:.3} ms, measured {replay_ms:.3} ms, limit {limit:.3} ms [{verdict}]"
            );
            failed |= replay_ms > limit;
        } else {
            println!("perf check: key \"obs_replay_ms\" missing from committed snapshot, skipping");
        }
        // Backend seam: relative gate against the committed snapshot
        // (tolerance honored), plus the structural dispatch budget —
        // the trait hop must cost ≤5% over the direct plant tick, with
        // the additive noise floor keeping sub-µs jitter from flaking
        // the build.
        if let Some(old_value) = extract_number(&committed, "backend_step_ns") {
            let limit = old_value * factor + NS_GATE_NOISE_FLOOR;
            let verdict = if backend_dyn_ns > limit { "FAIL" } else { "ok" };
            println!(
                "perf check backend_step_ns: committed {old_value:.0} ns, measured {backend_dyn_ns:.0} ns, limit {limit:.0} ns [{verdict}]"
            );
            failed |= backend_dyn_ns > limit;
        } else {
            println!(
                "perf check: key \"backend_step_ns\" missing from committed snapshot, skipping"
            );
        }
        let verdict = if backend_budget_ok { "ok" } else { "FAIL" };
        println!(
            "perf check backend dispatch budget: dyn {backend_dyn_ns:.0} ns vs raw {backend_raw_ns:.0} ns * 1.05 + {NS_GATE_NOISE_FLOOR:.0} ns [{verdict}]"
        );
        failed |= !backend_budget_ok;
        if failed {
            println!("perf check FAILED: regression above {factor}x committed baseline");
            std::process::exit(1);
        }
        println!("perf check passed (snapshot left untouched)");
    } else {
        std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
        println!("wrote BENCH_sweep.json");
    }
}
