//! **Ablations** — design-choice studies beyond the paper's figures,
//! quantifying what each CapGPU ingredient buys (DESIGN.md §8):
//!
//! 1. *Weight assignment on/off*: throughput-driven penalties vs uniform.
//! 2. *Prediction-horizon sweep*: P ∈ {1, 2, 4, 8, 16} at M = 2.
//! 3. *Delta-sigma modulation vs plain rounding* for CapGPU's targets.
//! 4. *SLO safety margin sweep*: miss rate vs margin.
//! 5. *Model drift tracking*: one-shot identification vs continuous RLS
//!    under a mid-run plant gain drift (with a square-wave cap keeping
//!    the loop active), and under thermal throttling.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin ablations`

use capgpu::controllers::CapGpuController;
use capgpu::prelude::*;
use capgpu::weights::WeightAssigner;
use capgpu_bench::fmt;
use capgpu_control::mpc::MpcConfig;

const SETPOINT: f64 = 1000.0;
const PERIODS: usize = 80;

fn main() {
    weight_assignment();
    horizon_sweep();
    modulation();
    slo_margin_sweep();
    drift_tracking();
}

/// Weight assignment on vs off, in the regime the mechanism exists for:
/// one GPU's task is demand-starved (its preprocessing feed trickles), so
/// its measured throughput — and hence its weight — collapses. The
/// weighted controller parks that GPU near its floor and spends the freed
/// budget on the busy GPUs; the uniform controller wastes watts keeping
/// the starved GPU fast.
fn weight_assignment() {
    fmt::header("Ablation 1: throughput-driven weight assignment (starved t3)");
    let scenario = || {
        let mut s = Scenario::paper_testbed(42);
        // Task 3's images arrive ~20× slower: a demand-limited tenant.
        s.gpu_models[2].preprocess_s_per_image = 0.16;
        s
    };
    let weighted = |enabled: bool, label: &'static str| {
        ControllerSpec::custom(label, move |runner| {
            let model = runner.identified_model()?;
            let controller = CapGpuController::with_config(
                MpcConfig::paper_defaults(
                    runner.layout().f_min.clone(),
                    runner.layout().f_max.clone(),
                ),
                model,
                if enabled {
                    WeightAssigner::default()
                } else {
                    WeightAssigner::disabled()
                },
                label,
            )?;
            Ok(Box::new(controller) as Box<dyn PowerController>)
        })
    };
    let report = SweepSpec::new(scenario())
        .setpoint(SETPOINT)
        .periods(PERIODS)
        .controller(weighted(true, "CapGPU (weights on)"))
        .controller(weighted(false, "CapGPU (weights off)"))
        .run()
        .expect("sweep");
    let on = RunSummary::from_trace(report.cells[0].trace());
    let off = RunSummary::from_trace(report.cells[1].trace());
    for s in [&on, &off] {
        println!(
            "{:<24} power {:>7} W  GPU thr {:>6.1} img/s  CPU {:>6.1} subsets/s",
            s.controller,
            fmt::pm(s.power_mean, s.power_std),
            s.gpu_throughput.iter().sum::<f64>(),
            s.cpu_throughput
        );
    }
    fmt::check(
        "weighting raises total GPU throughput at equal power",
        on.gpu_throughput.iter().sum::<f64>() > off.gpu_throughput.iter().sum::<f64>()
            && (on.power_mean - off.power_mean).abs() < 10.0,
        &format!(
            "{:.1} vs {:.1} img/s at {:.0}/{:.0} W",
            on.gpu_throughput.iter().sum::<f64>(),
            off.gpu_throughput.iter().sum::<f64>(),
            on.power_mean,
            off.power_mean
        ),
    );
}

/// Horizon sweep: longer horizons shouldn't hurt accuracy; P = 1 loses the
/// predictive damping and tracks more noisily.
fn horizon_sweep() {
    fmt::header("Ablation 2: prediction horizon P (M = 2, paper uses P = 8)");
    println!(
        "{:>4} {:>16} {:>10} {:>10}",
        "P", "power (W)", "err (W)", "settle"
    );
    let horizons = [1usize, 2, 4, 8, 16];
    let mut spec = SweepSpec::new(Scenario::paper_testbed(42))
        .setpoint(SETPOINT)
        .periods(PERIODS);
    for p in horizons {
        spec = spec.controller(ControllerSpec::custom(
            format!("CapGPU P={p}"),
            move |runner| {
                let model = runner.identified_model()?;
                let mut config = MpcConfig::paper_defaults(
                    runner.layout().f_min.clone(),
                    runner.layout().f_max.clone(),
                );
                config.prediction_horizon = p;
                config.control_horizon = p.min(2);
                config.q_weights = vec![1.0; p];
                let controller = CapGpuController::with_config(
                    config,
                    model,
                    WeightAssigner::default(),
                    format!("CapGPU P={p}"),
                )?;
                Ok(Box::new(controller) as Box<dyn PowerController>)
            },
        ));
    }
    let report = spec.run().expect("sweep");
    let mut results = Vec::new();
    for (p, cell) in horizons.into_iter().zip(&report.cells) {
        let s = RunSummary::from_trace(cell.trace());
        println!(
            "{p:>4} {:>16} {:>10.2} {:>10}",
            fmt::pm(s.power_mean, s.power_std),
            s.tracking_error,
            s.settling_period
                .map(|v| v.to_string())
                .unwrap_or_else(|| "never".into())
        );
        results.push((p, s));
    }
    let err_of = |p: usize| {
        results
            .iter()
            .find(|(pp, _)| *pp == p)
            .map(|(_, s)| s.tracking_error)
            .expect("swept")
    };
    fmt::check(
        "paper's P = 8 is at least as accurate as P = 1",
        err_of(8) <= err_of(1) + 1.0,
        &format!("err P=8 {:.2} W vs P=1 {:.2} W", err_of(8), err_of(1)),
    );
}

/// Delta-sigma vs plain rounding for CapGPU's fractional targets.
fn modulation() {
    fmt::header("Ablation 3: delta-sigma modulation vs nearest-level rounding");

    /// CapGPU with modulation disabled (overrides the trait hook).
    struct Rounded(CapGpuController);
    impl PowerController for Rounded {
        fn name(&self) -> &str {
            "CapGPU (rounded)"
        }
        fn control(
            &mut self,
            input: &capgpu::controllers::ControlInput<'_>,
        ) -> capgpu::Result<Vec<f64>> {
            self.0.control(input)
        }
        fn uses_delta_sigma(&self) -> bool {
            false
        }
    }

    let report = SweepSpec::new(Scenario::paper_testbed(42))
        .setpoint(SETPOINT)
        .periods(PERIODS)
        .controller(ControllerSpec::CapGpu)
        .controller(ControllerSpec::custom("CapGPU (rounded)", |runner| {
            let inner = runner.build_capgpu_controller()?;
            Ok(Box::new(Rounded(inner)) as Box<dyn PowerController>)
        }))
        .run()
        .expect("sweep");
    let s_mod = RunSummary::from_trace(report.cells[0].trace());
    let s_round = RunSummary::from_trace(report.cells[1].trace());

    println!(
        "delta-sigma: {}   rounded: {}",
        fmt::pm(s_mod.power_mean, s_mod.power_std),
        fmt::pm(s_round.power_mean, s_round.power_std)
    );
    fmt::check(
        "modulation does not hurt accuracy (and realizes fractional targets)",
        s_mod.tracking_error <= s_round.tracking_error + 1.5,
        &format!(
            "err {:.2} W (ΔΣ) vs {:.2} W (rounded)",
            s_mod.tracking_error, s_round.tracking_error
        ),
    );
}

/// SLO margin sweep: smaller margins risk misses, larger ones burn power.
fn slo_margin_sweep() {
    fmt::header("Ablation 4: SLO safety margin");
    println!(
        "{:>8} {:>16} {:>14}",
        "margin", "ss miss rate", "floor t1 (MHz)"
    );
    let margins = [1.0, 1.03, 1.06, 1.12];
    let variants = margins
        .iter()
        .map(|&margin| {
            let mut scenario = Scenario::paper_testbed(42);
            scenario.slo_margin = margin;
            let e_min = scenario.gpu_models[0].e_min_s;
            // Tight SLO + a budget that wants the GPU *below* its floor:
            // the floor binds, so the task runs exactly at SLO-critical
            // frequency and the margin is what absorbs jitter and model
            // error.
            let scenario = scenario.with_slos(vec![Some(e_min * 1.15), None, None]);
            (format!("margin {margin}"), scenario)
        })
        .collect();
    let report = SweepSpec::over_scenarios(variants)
        .setpoint(900.0)
        .periods(50)
        .controller(ControllerSpec::CapGpu)
        .run()
        .expect("sweep");
    let mut misses = Vec::new();
    for (margin, cell) in margins.into_iter().zip(&report.cells) {
        let trace = cell.trace();
        let floor = trace.records.last().expect("records").floors[1];
        // Steady-state misses only: the first periods climb from f_min and
        // miss regardless of margin — that transient is not what the
        // margin controls.
        let ss_misses: usize = trace.records[5..].iter().map(|r| r.slo_misses[0]).sum();
        let ss_batches: usize = trace.records[5..].iter().map(|r| r.batches[0]).sum();
        let rate = ss_misses as f64 / ss_batches.max(1) as f64;
        println!("{margin:>8.2} {:>15.3}% {:>14.0}", 100.0 * rate, floor);
        misses.push((margin, rate));
    }
    let at = |m: f64| {
        misses
            .iter()
            .find(|(mm, _)| (*mm - m).abs() < 1e-9)
            .expect("swept")
            .1
    };
    fmt::check(
        "misses shrink monotonically with margin",
        at(1.0) >= at(1.06) && at(1.06) >= at(1.12),
        &format!(
            "{:.2}% → {:.2}% → {:.2}%",
            100.0 * at(1.0),
            100.0 * at(1.06),
            100.0 * at(1.12)
        ),
    );
    fmt::check(
        "default margin (1.06) keeps misses below 2%",
        at(1.06) < 0.02,
        &format!("{:.2}%", 100.0 * at(1.06)),
    );
}

/// One-shot identification vs continuous RLS tracking (the tentpole's
/// payoff study). Part A: an open-loop demand surge triples traffic
/// mid-run, shifting every device's utilization — and with it the
/// plant's effective W/MHz gains — away from what the identification
/// sweep measured. Part B: thermally marginal GPUs throttle under load,
/// clamping effective clocks so the one-shot model's gains overstate
/// the controller's authority.
fn drift_tracking() {
    fmt::header("Ablation 5: one-shot identification vs continuous RLS tracking");

    let post_err = |trace: &RunTrace, from: usize| {
        let vals: Vec<f64> = trace.records[from..]
            .iter()
            .map(|r| (r.avg_power - r.setpoint).abs())
            .collect();
        capgpu_linalg::stats::mean(&vals)
    };

    // Part A — plant gain drift. At period 30 every GPU's true W/MHz
    // gain scales by `factor` (aging / VR-efficiency style drift the
    // one-shot model cannot see), while the cap alternates 1000/900 W
    // every 8 periods so the loop keeps having to *use* its model. A
    // stale model whose gains are 2× low makes the MPC's feedback
    // correction chronically overshoot — the one-shot run rings around
    // the cap for the rest of the experiment; the tracked run re-scales
    // its anchor within a few settled periods and recovers. Factor 1.0
    // (no drift) is reported alongside to price the persistent-excitation
    // probe honestly: the displacement that carries gain information is
    // itself cap error, so tracking costs a couple of watts when nothing
    // drifts.
    let drift_variant = |rls: Option<RlsTracking>, factor: f64, label: &str| {
        let mut s = Scenario::paper_testbed(42);
        s.workers_per_pipeline = 8;
        s.rls_tracking = rls;
        if factor != 1.0 {
            for device in 1..=3 {
                s = s.with_change(ScheduledChange::GainDrift {
                    at_period: 30,
                    device,
                    factor,
                });
            }
        }
        for k in 1..12 {
            let watts = if k % 2 == 1 { 900.0 } else { SETPOINT };
            s = s.with_change(ScheduledChange::SetPoint {
                at_period: 8 * k,
                watts,
            });
        }
        (label.to_string(), s)
    };
    for factor in [1.0, 1.5, 2.0] {
        let report = SweepSpec::over_scenarios(vec![
            drift_variant(None, factor, "one-shot"),
            drift_variant(Some(RlsTracking::default()), factor, "RLS-tracked"),
        ])
        .setpoint(SETPOINT)
        .periods(96)
        .controller(ControllerSpec::CapGpu)
        .run()
        .expect("sweep");
        let mut errs = Vec::new();
        for cell in &report.cells {
            let trace = cell.trace();
            let err = post_err(trace, 45);
            let s = RunSummary::from_trace(trace);
            println!(
                "gain x{factor:<4} {:<12} post-drift err {err:>6.2} W   power {}",
                cell.cell.scenario_label,
                fmt::pm(s.power_mean, s.power_std),
            );
            errs.push(err);
        }
        if factor == 1.0 {
            fmt::check(
                "probe overhead on an undrifted plant stays under 3 W",
                errs[1] <= errs[0] + 3.0,
                &format!(
                    "steady err {:.2} W (one-shot) vs {:.2} W (RLS)",
                    errs[0], errs[1]
                ),
            );
        } else {
            fmt::check(
                &format!("RLS tracking holds the cap through {factor}x gain drift"),
                errs[1] < errs[0],
                &format!(
                    "post-drift err {:.2} W (one-shot) vs {:.2} W (RLS)",
                    errs[0], errs[1]
                ),
            );
        }
    }

    // Part B — thermal throttling. A tighter thermal resistance makes
    // the V100s throttle near full load; while clamped, core-clock
    // actuation loses authority and measured power decouples from the
    // one-shot model.
    let thermal_variant = |rls: Option<RlsTracking>, label: &str| {
        let mut s = Scenario::paper_testbed(42);
        let mut spec = capgpu_sim::thermal::v100_thermal();
        spec.r_th_k_per_w = 0.24;
        for d in s.devices.iter_mut().skip(1) {
            d.thermal = Some(spec);
        }
        s.rls_tracking = rls;
        (label.to_string(), s)
    };
    let report = SweepSpec::over_scenarios(vec![
        thermal_variant(None, "one-shot"),
        thermal_variant(Some(RlsTracking::default()), "RLS-tracked"),
    ])
    .setpoint(1150.0)
    .periods(80)
    .controller(ControllerSpec::CapGpu)
    .run()
    .expect("sweep");
    let mut errs = Vec::new();
    for cell in &report.cells {
        let trace = cell.trace();
        let err = post_err(trace, 40);
        let s = RunSummary::from_trace(trace);
        println!(
            "throttle {:<12} late-run err {err:>6.2} W   power {}",
            cell.cell.scenario_label,
            fmt::pm(s.power_mean, s.power_std),
        );
        errs.push(err);
    }
    fmt::check(
        "RLS tracking is no worse under thermal throttling",
        errs[1] <= errs[0] + 1.0,
        &format!(
            "late-run err {:.2} W (one-shot) vs {:.2} W (RLS)",
            errs[0], errs[1]
        ),
    );
}
