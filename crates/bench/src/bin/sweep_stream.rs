//! **Streaming sweep snapshot** — exercises the sweep engine's
//! summary-reduction mode (DESIGN.md §15) at scale and verifies the
//! invariants that make it safe to replace full-trace collection:
//!
//! 1. the streamed summary is **bit-identical across thread counts**
//!    (1/2/4/8) and to the serial fold,
//! 2. it is **bit-identical to summarizing the full-trace report** (same
//!    fold, same order — streaming only changes what is retained),
//! 3. peak retained state stays within the bounded reorder window
//!    `2·threads + 16`, i.e. memory is `O(groups)`, not `O(cells)`.
//!
//! The full run streams a 100 seeds × 50 set points × 2 controllers =
//! **10 000-cell** grid; regenerate the committed golden with:
//! `cargo run --release -p capgpu-bench --bin sweep_stream > results/sweep_stream.txt`
//! — cell rates and peak-pending counts go to **stderr**, keeping the
//! golden deterministic.
//!
//! `--smoke` shrinks the grid to 1000 cells for CI; the checks are
//! identical and the bin exits nonzero if any of them fails.

use capgpu::prelude::*;
use capgpu_bench::fmt;
use std::time::Instant;

fn grid(seeds: u64, setpoints: usize) -> SweepSpec {
    let points: Vec<f64> = (0..setpoints).map(|i| 880.0 + 4.0 * i as f64).collect();
    let mut spec = SweepSpec::new(Scenario::paper_testbed(1))
        .setpoints(&points)
        .periods(2)
        .controller(ControllerSpec::FixedStep { multiplier: 1 })
        .controller(ControllerSpec::FixedStep { multiplier: 2 });
    for seed in 0..seeds {
        spec = spec.seed(seed);
    }
    spec
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (seeds, setpoints) = if smoke { (25, 20) } else { (100, 50) };
    let spec = grid(seeds, setpoints);
    let cells = spec.num_cells();
    let mut all_ok = true;

    fmt::header(&format!(
        "Streaming sweep: {cells} cells ({seeds} seeds x {setpoints} set points x 2 controllers, summary reduction)"
    ));

    // ---- reference fold (serial, window-free) -------------------------
    let t0 = Instant::now();
    let serial = spec.streaming_serial().expect("serial streaming sweep");
    eprintln!(
        "serial fold: {:.0} cells/sec",
        cells as f64 / t0.elapsed().as_secs_f64()
    );
    println!("group summaries (mean over {} cells each):", cells / 2);
    println!(
        "  {:<16} {:>12} {:>14} {:>10}",
        "controller", "mean P (W)", "tracking (W)", "miss rate"
    );
    for group in &serial.groups {
        println!(
            "  {:<16} {:>12.3} {:>14.3} {:>10.4}",
            group.controller_label,
            group.mean_power(),
            group.mean_tracking_error(),
            group.mean_miss_rate()
        );
    }

    // ---- check 1: bit-identical across thread counts ------------------
    let mut threads_ok = true;
    let mut window_ok = true;
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let streamed = spec
            .streaming_with_threads(threads)
            .expect("streaming sweep");
        let dt = t0.elapsed().as_secs_f64();
        eprintln!(
            "{threads} thread(s): {:.0} cells/sec, peak pending {}",
            cells as f64 / dt,
            streamed.peak_pending
        );
        threads_ok &= streamed == serial;
        window_ok &= streamed.peak_pending <= 2 * threads + 16;
    }
    fmt::check(
        "streamed summary bit-identical across 1/2/4/8 threads",
        threads_ok,
        &format!("{cells} cells, {} groups", serial.groups.len()),
    );
    all_ok &= threads_ok;

    // ---- check 2: streaming == summarizing the full-trace report ------
    // Same fold, same order; streaming only changes what is retained.
    // Smoke scale keeps the full-trace report in memory for comparison.
    let sub = grid(seeds.min(25), setpoints.min(20));
    let full = sub
        .summarize_report(&sub.run_serial().expect("full-trace sweep"))
        .expect("summarize full report");
    let streamed_sub = sub.streaming().expect("streaming sweep");
    let full_ok = full == streamed_sub;
    fmt::check(
        "streamed summary bit-identical to full-trace summary",
        full_ok,
        &format!("{} cells cross-checked", sub.num_cells()),
    );
    all_ok &= full_ok;

    // ---- check 3: peak retained state bounded by the reorder window ---
    fmt::check(
        "peak pending summaries within reorder window (memory O(groups), not O(cells))",
        window_ok,
        "window = 2*threads + 16",
    );
    all_ok &= window_ok;

    if !all_ok {
        std::process::exit(1);
    }
}
