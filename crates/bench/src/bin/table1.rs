//! **Table 1** — End-to-end performance under different frequency controls.
//!
//! Motivation experiment (§3.2): GoogLeNet on an RTX 3090 fed by ten CPU
//! preprocessing workers. Three frequency configurations: CPU-only
//! throttled (1.1 GHz / 810 MHz), GPU-only throttled (2.1 GHz / 495 MHz),
//! and the coordinated midpoint (1.6 GHz / 660 MHz).
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin table1`

use capgpu::prelude::*;
use capgpu_bench::fmt;

fn main() {
    fmt::header("Table 1: end-to-end performance under different frequency controls");
    let configs: [(&str, f64, f64); 3] = [
        ("CPU-only", 1100.0, 810.0),
        ("GPU-only", 2100.0, 495.0),
        ("CapGPU", 1600.0, 660.0),
    ];
    println!(
        "{:<10} {:>9} {:>9} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "Config",
        "CPU(MHz)",
        "GPU(MHz)",
        "Prep(s/img)",
        "GPU(s/batch)",
        "Queue(s/img)",
        "Thr(img/s)",
        "Power(W)"
    );
    let mut spec = SweepSpec::new(Scenario::motivation_testbed(42)).setpoint(0.0);
    for (name, f_cpu, f_gpu) in configs {
        spec = spec.controller(ControllerSpec::FixedFrequencies {
            label: name.to_string(),
            freqs: vec![f_cpu, f_gpu],
            seconds: 240,
            warmup_seconds: 60,
        });
    }
    let report = spec.run().expect("sweep");
    let mut rows = Vec::new();
    for ((name, f_cpu, f_gpu), cell) in configs.into_iter().zip(&report.cells) {
        let stats = cell.fixed().clone();
        println!(
            "{:<10} {:>9.0} {:>9.0} {:>12.3} {:>12.2} {:>12.2} {:>12.2} {:>10.1}",
            name,
            f_cpu,
            f_gpu,
            stats.preprocess_s_per_image[0],
            stats.mean_batch_latency_s[0],
            stats.mean_queue_delay_s[0],
            stats.throughput_img_s[0],
            stats.mean_power
        );
        rows.push((name, stats));
    }

    fmt::header("Shape checks vs paper Table 1");
    let thr = |i: usize| rows[i].1.throughput_img_s[0];
    let queue = |i: usize| rows[i].1.mean_queue_delay_s[0];
    fmt::check(
        "joint throughput beats CPU-only",
        thr(2) > thr(0),
        &format!("{:.2} vs {:.2} img/s", thr(2), thr(0)),
    );
    fmt::check(
        "joint throughput beats GPU-only",
        thr(2) > thr(1),
        &format!("{:.2} vs {:.2} img/s", thr(2), thr(1)),
    );
    fmt::check(
        "joint queue delay is the smallest",
        queue(2) < queue(0) && queue(2) < queue(1),
        &format!("{:.2} vs {:.2}/{:.2} s", queue(2), queue(0), queue(1)),
    );
    let power_spread = {
        let powers: Vec<f64> = rows.iter().map(|r| r.1.mean_power).collect();
        powers.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - powers.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    };
    fmt::check(
        "all three configs draw comparable power",
        power_spread < 60.0,
        &format!("spread {power_spread:.1} W"),
    );
}
