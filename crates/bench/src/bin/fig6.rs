//! **Figure 6** — Power-control accuracy across set points 900→1200 W
//! (50 W interval): steady-state mean ± std over the last 80 of 100
//! control periods for Safe Fixed-step, GPU-Only, CPU+GPU (40% and 60%
//! GPU shares) and CapGPU.
//!
//! Expected shapes: Safe Fixed-step worst accuracy and biggest deviation;
//! the fixed splits fail to converge; GPU-Only good but slightly below
//! CapGPU; CapGPU best accuracy and stability everywhere.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig6`

use capgpu::prelude::*;
use capgpu_bench::{fmt, PAPER_PERIODS, PAPER_TAIL_FRACTION};

fn main() {
    fmt::header("Figure 6: steady-state power vs set point (mean ± std, W)");
    let setpoints: Vec<f64> = (0..7).map(|i| 900.0 + 50.0 * i as f64).collect();
    let names = [
        "Safe Fixed-step",
        "GPU-Only",
        "CPU+GPU (40% GPU)",
        "CPU+GPU (60% GPU)",
        "CapGPU",
    ];
    // One sweep covers the whole grid; identification runs once and is
    // shared by all 35 cells.
    let report = SweepSpec::new(Scenario::paper_testbed(42))
        .setpoints(&setpoints)
        .periods(PAPER_PERIODS)
        .controller(ControllerSpec::SafeFixedStep { multiplier: 1 })
        .controller(ControllerSpec::GpuOnly)
        .controller(ControllerSpec::Split { gpu_share: 0.4 })
        .controller(ControllerSpec::Split { gpu_share: 0.6 })
        .controller(ControllerSpec::CapGpu)
        .run()
        .expect("sweep");
    let mut results: Vec<Vec<(f64, f64)>> = vec![Vec::new(); names.len()];
    print!("{:>9}", "setpoint");
    for n in &names {
        print!(" {n:>20}");
    }
    println!();
    for (spi, &sp) in setpoints.iter().enumerate() {
        print!("{sp:>9.0}");
        for (i, per_controller) in results.iter_mut().enumerate() {
            let (m, s) = report
                .trace(0, 0, spi, i)
                .steady_state_power(PAPER_TAIL_FRACTION);
            print!(" {:>20}", fmt::pm(m, s));
            per_controller.push((m, s));
        }
        println!();
    }

    fmt::header("Shape checks vs paper Fig. 6");
    let mae = |idx: usize| -> f64 {
        results[idx]
            .iter()
            .zip(setpoints.iter())
            .map(|((m, _), sp)| (m - sp).abs())
            .sum::<f64>()
            / setpoints.len() as f64
    };
    let mean_std = |idx: usize| -> f64 {
        results[idx].iter().map(|(_, s)| *s).sum::<f64>() / setpoints.len() as f64
    };
    let (e_sfs, e_gpu, e_s40, e_s60, e_cap) = (mae(0), mae(1), mae(2), mae(3), mae(4));
    // GPU-Only is also a well-tuned pole-placed design, so the two can tie
    // on mean accuracy; the paper's claim is that CapGPU is never worse.
    fmt::check(
        "CapGPU accuracy matches or beats every baseline",
        e_cap <= e_gpu + 0.5 && e_cap <= e_sfs && e_cap <= e_s40 && e_cap <= e_s60,
        &format!(
            "MAE (W): CapGPU {e_cap:.1}, GPU-Only {e_gpu:.1}, SafeFS {e_sfs:.1}, 40% {e_s40:.1}, 60% {e_s60:.1}"
        ),
    );
    fmt::check(
        "Safe Fixed-step has the worst accuracy",
        e_sfs >= e_gpu && e_sfs >= e_cap,
        &format!("SafeFS MAE {e_sfs:.1} W"),
    );
    fmt::check(
        "Safe Fixed-step shows the biggest oscillation",
        mean_std(0) >= mean_std(1) && mean_std(0) >= mean_std(4),
        &format!(
            "mean σ (W): SafeFS {:.1}, GPU-Only {:.1}, CapGPU {:.1}",
            mean_std(0),
            mean_std(1),
            mean_std(4)
        ),
    );
    fmt::check(
        "both fixed splits fail to converge somewhere",
        results[2]
            .iter()
            .zip(&setpoints)
            .any(|((m, _), sp)| (m - sp).abs() > 25.0)
            && results[3]
                .iter()
                .zip(&setpoints)
                .any(|((m, _), sp)| (m - sp).abs() > 25.0),
        &format!("40% MAE {e_s40:.1} W, 60% MAE {e_s60:.1} W"),
    );
}
