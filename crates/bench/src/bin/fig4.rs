//! **Figure 4** — Fixed-step controller traces for step sizes 1 and 5
//! (step units: 100 MHz CPU / 90 MHz GPU, §6.2) at a 900 W set point.
//!
//! Expected shapes: the small step converges slowly then oscillates; the
//! large step converges fast but oscillates with larger amplitude.
//!
//! Regenerate with: `cargo run --release -p capgpu-bench --bin fig4`

use capgpu::prelude::*;
use capgpu_bench::{fmt, PAPER_PERIODS};
use capgpu_control::metrics;

const SETPOINT: f64 = 900.0;

fn main() {
    fmt::header(&format!("Figure 4: Fixed-step traces at {SETPOINT:.0} W"));
    let report = SweepSpec::new(Scenario::paper_testbed(42))
        .setpoint(SETPOINT)
        .periods(PAPER_PERIODS)
        .controller(ControllerSpec::FixedStep { multiplier: 1 })
        .controller(ControllerSpec::FixedStep { multiplier: 5 })
        .run()
        .expect("sweep");
    let t1 = report.cells[0].trace();
    let t5 = report.cells[1].trace();
    fmt::series_table(
        &[t1.controller.as_str(), t5.controller.as_str()],
        &[t1.power_series(), t5.power_series()],
    );

    fmt::header("Shape checks vs paper Fig. 4");
    let s1 = metrics::settling_time(&t1.power_series(), SETPOINT, 25.0);
    let s5 = metrics::settling_time(&t5.power_series(), SETPOINT, 25.0);
    // First period within ±25 W of the cap.
    let first_near = |t: &RunTrace| {
        t.power_series()
            .iter()
            .position(|p| (p - SETPOINT).abs() < 25.0)
    };
    let (n1, n5) = (first_near(t1), first_near(t5));
    fmt::check(
        "small step takes much longer to first reach the cap",
        match (n1, n5) {
            (Some(a), Some(b)) => a > 2 * b,
            _ => false,
        },
        &format!("first-near period: step 1 → {n1:?}, step 5 → {n5:?}"),
    );
    let (_, std1) = t1.steady_state_power(0.5);
    let (_, std5) = t5.steady_state_power(0.5);
    fmt::check(
        "both oscillate at steady state (σ > CapGPU-like 5 W for large step)",
        std5 > 5.0,
        &format!("σ: step 1 → {std1:.1} W, step 5 → {std5:.1} W"),
    );
    fmt::check(
        "larger step oscillates with larger amplitude",
        std5 > std1,
        &format!("σ {std5:.1} vs {std1:.1} W"),
    );
    fmt::check(
        "both violate the cap repeatedly (motivates the Safe variant)",
        t1.violations(2.0) > 5 && t5.violations(2.0) > 5,
        &format!(
            "violations: step 1 → {}, step 5 → {}",
            t1.violations(2.0),
            t5.violations(2.0)
        ),
    );
    let _ = s1.or(s5);
}
