//! Plain-text table and series formatting for the experiment binaries.
//!
//! Every binary prints (a) the series/rows the corresponding paper figure
//! or table reports, machine-readable enough to re-plot, and (b) a short
//! "shape check" section stating whether the qualitative claims hold.

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(8)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(8)));
}

/// Prints labeled power series side by side (one row per period).
///
/// # Panics
/// Panics if the series have different lengths.
pub fn series_table(labels: &[&str], series: &[Vec<f64>]) {
    assert_eq!(labels.len(), series.len(), "label/series count mismatch");
    let len = series.first().map(Vec::len).unwrap_or(0);
    assert!(
        series.iter().all(|s| s.len() == len),
        "all series must have equal length"
    );
    print!("{:>6}", "period");
    for l in labels {
        print!(" {l:>16}");
    }
    println!();
    for i in 0..len {
        print!("{i:>6}");
        for s in series {
            print!(" {:>16.2}", s[i]);
        }
        println!();
    }
}

/// Prints a pass/fail shape-check line.
pub fn check(name: &str, ok: bool, detail: &str) {
    let tag = if ok { "PASS" } else { "FAIL" };
    println!("[{tag}] {name}: {detail}");
}

/// Formats a mean ± std pair.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{mean:.1} ± {std:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_formats() {
        assert_eq!(pm(899.96, 3.25), "900.0 ± 3.2");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn series_table_validates() {
        series_table(&["a", "b"], &[vec![1.0], vec![1.0, 2.0]]);
    }
}
