//! Controller-overhead benchmarks.
//!
//! The paper (§4.3) claims: "The MPC controller has small overhead and can
//! complete its computation in just a few milliseconds when a server has
//! about 4 to 8 GPUs." This bench measures one full MPC control-period
//! computation (QP build + active-set solve) as the GPU count and the
//! horizons scale, plus the baselines for comparison.

use capgpu::controllers::{ControlInput, DeviceLayout, PowerController};
use capgpu::prelude::*;
use capgpu::weights::WeightAssigner;
use capgpu_control::model::LinearPowerModel;
use capgpu_control::mpc::MpcConfig;
use capgpu_sim::DeviceKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn layout(num_gpus: usize) -> DeviceLayout {
    let mut kinds = vec![DeviceKind::Cpu];
    let mut f_min = vec![1000.0];
    let mut f_max = vec![2400.0];
    for _ in 0..num_gpus {
        kinds.push(DeviceKind::Gpu);
        f_min.push(435.0);
        f_max.push(1350.0);
    }
    DeviceLayout::new(kinds, f_min, f_max).unwrap()
}

fn model(num_gpus: usize) -> LinearPowerModel {
    let mut gains = vec![0.05];
    gains.extend(std::iter::repeat_n(0.1475, num_gpus));
    LinearPowerModel::new(gains, 330.0).unwrap()
}

fn input_for<'a>(
    n: usize,
    targets: &'a [f64],
    thr: &'a [f64],
    floors: &'a [f64],
) -> ControlInput<'a> {
    let _ = n;
    ControlInput {
        measured_power: 850.0,
        setpoint: 900.0,
        current_targets: targets,
        normalized_throughput: thr,
        device_power: &[],
        floors,
        phase_mix: None,
    }
}

fn bench_mpc_vs_gpu_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_step_vs_gpu_count");
    for num_gpus in [1usize, 2, 4, 8] {
        let n = num_gpus + 1;
        let lay = layout(num_gpus);
        let mut ctrl =
            CapGpuController::new(&lay, model(num_gpus), WeightAssigner::default()).unwrap();
        let targets: Vec<f64> = lay
            .f_min
            .iter()
            .zip(lay.f_max.iter())
            .map(|(lo, hi)| 0.5 * (lo + hi))
            .collect();
        let thr = vec![0.8; n];
        let floors = lay.f_min.clone();
        group.bench_with_input(BenchmarkId::from_parameter(num_gpus), &num_gpus, |b, _| {
            b.iter(|| {
                let input = input_for(n, &targets, &thr, &floors);
                black_box(ctrl.control(black_box(&input)).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_mpc_vs_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_step_vs_prediction_horizon");
    for p in [4usize, 8, 16, 32] {
        let lay = layout(3);
        let mut config = MpcConfig::paper_defaults(lay.f_min.clone(), lay.f_max.clone());
        config.prediction_horizon = p;
        config.q_weights = vec![1.0; p];
        let mut ctrl = CapGpuController::with_config(
            config,
            model(3),
            WeightAssigner::default(),
            format!("CapGPU P={p}"),
        )
        .unwrap();
        let targets = vec![1700.0, 900.0, 900.0, 900.0];
        let thr = vec![0.8; 4];
        let floors = lay.f_min.clone();
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                let input = input_for(4, &targets, &thr, &floors);
                black_box(ctrl.control(black_box(&input)).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_controllers_step");
    let lay = layout(3);
    let targets = vec![1700.0, 900.0, 900.0, 900.0];
    let thr = vec![0.8; 4];
    let floors = lay.f_min.clone();
    let dev_power = vec![100.0, 150.0, 150.0, 150.0];

    let mut fixed = FixedStepController::new(lay.clone(), 1);
    group.bench_function("fixed_step", |b| {
        b.iter(|| {
            let input = ControlInput {
                device_power: &dev_power,
                ..input_for(4, &targets, &thr, &floors)
            };
            black_box(fixed.control(black_box(&input)).unwrap())
        })
    });

    let mut gpu_only = GpuOnlyController::new(lay.clone(), 0.44, 0.5).unwrap();
    group.bench_function("gpu_only", |b| {
        b.iter(|| {
            let input = ControlInput {
                device_power: &dev_power,
                ..input_for(4, &targets, &thr, &floors)
            };
            black_box(gpu_only.control(black_box(&input)).unwrap())
        })
    });

    let mut split = CpuGpuSplitController::new(lay, 0.05, 0.44, 0.6, 0.5).unwrap();
    group.bench_function("cpu_gpu_split", |b| {
        b.iter(|| {
            let input = ControlInput {
                device_power: &dev_power,
                ..input_for(4, &targets, &thr, &floors)
            };
            black_box(split.control(black_box(&input)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mpc_vs_gpu_count,
    bench_mpc_vs_horizon,
    bench_baselines
);
criterion_main!(benches);
