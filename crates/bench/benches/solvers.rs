//! Numerical-kernel benchmarks: QP solvers, eigenvalues, least squares.
//!
//! These quantify the from-scratch numerics: the active-set QP against the
//! projected-gradient cross-check, the SLSQP-style SQP on the non-reduced
//! latency constraint, the Francis-QR eigenvalue solver used by the
//! stability analysis, and the QR least-squares behind identification.

use capgpu_linalg::{eig, lstsq, Matrix};
use capgpu_optim::projgrad::{self, Box as PgBox};
use capgpu_optim::qp::{ActiveSetQp, LinearConstraint, QpProblem};
use capgpu_optim::sqp::{NlpProblem, SqpSolver};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Condensed-MPC-shaped QP of dimension `m·n` with box constraints.
fn mpc_qp(n_devices: usize) -> (QpProblem, Vec<f64>) {
    let m = 2; // control horizon
    let dim = m * n_devices;
    let gains: Vec<f64> = (0..dim)
        .map(|i| 0.08 + 0.02 * (i % n_devices) as f64)
        .collect();
    let mut h = Matrix::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            h[(i, j)] = 2.0 * gains[i] * gains[j];
        }
        h[(i, i)] += 4e-4;
    }
    let g: Vec<f64> = gains.iter().map(|a| 2.0 * a * (-60.0)).collect();
    let mut cons = vec![];
    for i in 0..dim {
        cons.push(LinearConstraint::upper_bound(dim, i, 400.0));
        cons.push(LinearConstraint::lower_bound(dim, i, -400.0));
    }
    (QpProblem::new(h, g, cons).unwrap(), vec![0.0; dim])
}

fn bench_qp(c: &mut Criterion) {
    let mut group = c.benchmark_group("qp_active_set");
    for n in [2usize, 4, 8] {
        let (qp, x0) = mpc_qp(n);
        let solver = ActiveSetQp::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(solver.solve(black_box(&qp), &x0).unwrap()))
        });
    }
    group.finish();
}

fn bench_projected_gradient(c: &mut Criterion) {
    let (qp, x0) = mpc_qp(4);
    let bounds = PgBox::new(vec![-400.0; 8], vec![400.0; 8]).unwrap();
    c.bench_function("qp_projected_gradient_dim8", |b| {
        b.iter(|| {
            black_box(
                projgrad::solve_box_qp(&qp.hessian, &qp.gradient, &bounds, &x0, 1e-8, 100_000)
                    .unwrap(),
            )
        })
    });
}

struct LatencyNlp;

impl NlpProblem for LatencyNlp {
    fn dim(&self) -> usize {
        3
    }
    fn num_constraints(&self) -> usize {
        3
    }
    fn objective(&self, x: &[f64]) -> f64 {
        x.iter().sum()
    }
    fn constraints(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .map(|&f| 0.055 * (1350.0 / f).powf(0.91) - 0.09)
            .collect()
    }
    fn lower_bounds(&self) -> Vec<f64> {
        vec![435.0; 3]
    }
    fn upper_bounds(&self) -> Vec<f64> {
        vec![1350.0; 3]
    }
}

fn bench_sqp(c: &mut Criterion) {
    c.bench_function("sqp_latency_constrained_3gpu", |b| {
        b.iter(|| {
            black_box(
                SqpSolver::default()
                    .solve(&LatencyNlp, &[1350.0, 1350.0, 1350.0])
                    .unwrap(),
            )
        })
    });
}

fn bench_eigenvalues(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigenvalues");
    for n in [4usize, 8, 16] {
        // Closed-loop-like matrix: I − k·aᵀ − K_f.
        let mut m = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] -= 0.3 / n as f64 + if i == j { 0.2 } else { 0.01 };
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(eig::eigenvalues(black_box(&m)).unwrap()))
        });
    }
    group.finish();
}

fn bench_lstsq(c: &mut Criterion) {
    // Identification-sized regression: 32 samples × (4 gains + intercept).
    let rows: Vec<Vec<f64>> = (0..32)
        .map(|i| {
            let t = i as f64;
            vec![
                1000.0 + 40.0 * t,
                435.0 + 28.0 * (t * 1.3 % 32.0),
                435.0 + 28.0 * (t * 2.1 % 32.0),
                435.0 + 28.0 * (t * 0.7 % 32.0),
                1.0,
            ]
        })
        .collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let x = Matrix::from_rows(&refs);
    let y: Vec<f64> = rows
        .iter()
        .map(|r| 330.0 + 0.05 * r[0] + 0.15 * (r[1] + r[2] + r[3]))
        .collect();
    c.bench_function("lstsq_identification_32x5", |b| {
        b.iter(|| black_box(lstsq::solve(black_box(&x), &y).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_qp,
    bench_projected_gradient,
    bench_sqp,
    bench_eigenvalues,
    bench_lstsq
);
criterion_main!(benches);
