//! Fleet simulation throughput.
//!
//! Measures `FleetSim::run` (DESIGN.md §16) on a small mixed-generation
//! fleet: one iteration = a full multi-epoch fleet run (hierarchical
//! re-division, sharded server stepping, reorder-window folding,
//! migration planning). Server-periods/second is the fleet size × epochs
//! × periods divided by the reported time; `perf_snapshot` gates the
//! same quantity in CI.

use capgpu_fleet::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fleet(threads_hint: usize) -> FleetSim {
    let topo = FleetTopology::datacenter(4, 6, |rack, slot| ServerSpec {
        class: slot % 3,
        streams: if slot < rack % 5 { 5 } else { 4 },
    })
    .expect("topology");
    let cfg = FleetConfig {
        epochs: 4,
        epoch_periods: 6,
        reorder_window: Some(2 * threads_hint + 16),
        ..FleetConfig::new(1700.0 * 24.0)
    };
    FleetSim::new(topo, &mixed_generation_classes(41), cfg).expect("fleet")
}

fn bench_fleet_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_sim");

    group.bench_function("serial_24_servers", |b| {
        b.iter(|| {
            let mut sim = fleet(1);
            black_box(sim.run(1).unwrap())
        })
    });
    group.bench_function("parallel_24_servers", |b| {
        b.iter(|| {
            let mut sim = fleet(4);
            black_box(sim.run(4).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_sim);
criterion_main!(benches);
