//! Fast-MPC solver benchmarks: cold, warm, explicit-region hit and miss.
//!
//! The structure-exploiting box-QP path (DESIGN.md §15) claims a ≥2×
//! speedup over the generic dense-KKT active-set solve per control period,
//! and a ≥5× speedup when the explicit-MPC region table hits. This bench
//! pins those ratios at 3, 8, and 16 devices:
//!
//! * `generic` — the paper's dense active-set path (`fast_solver = false`).
//! * `cold`    — fast path with the warm hint and region table cleared
//!   before every call (pure box-QP active-set solve from scratch).
//! * `hit`     — steady-state repeated call: region lookup + KKT check
//!   + cached-factor polish, zero iterations.
//! * `miss`    — alternating input regimes whose active sets differ, so
//!   the warm signature points at the wrong cached region every call:
//!   failed lookup + warm-started iterative solve.

use capgpu_control::model::LinearPowerModel;
use capgpu_control::mpc::{MpcConfig, MpcController};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn controller(n: usize, fast: bool) -> MpcController {
    let f_min = vec![435.0; n];
    let f_max = vec![1350.0; n];
    let mut config = MpcConfig::paper_defaults(f_min, f_max);
    config.fast_solver = fast;
    let gains = vec![0.1475; n];
    let model = LinearPowerModel::new(gains, 330.0).unwrap();
    MpcController::new(config, model).unwrap()
}

/// Two operating points whose optimal active sets differ: one with ample
/// headroom (mostly free variables), one pushed hard against the slew and
/// frequency caps.
fn regimes(n: usize) -> [(f64, Vec<f64>); 2] {
    [
        (30.0, vec![900.0; n]),    // mild excess power, interior solution
        (-260.0, vec![1250.0; n]), // large deficit near f_max, caps bind
    ]
}

fn bench_qp_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("qp_solve");
    for n in [3usize, 8, 16] {
        let weights = vec![1.0; n];
        let floors = vec![435.0; n];
        let setpoint = 900.0;

        let generic = controller(n, false);
        let freqs = vec![900.0; n];
        group.bench_with_input(BenchmarkId::new("generic", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    generic
                        .step(setpoint + 30.0, setpoint, &freqs, &weights, &floors)
                        .unwrap(),
                )
            })
        });

        let fast = controller(n, true);
        group.bench_with_input(BenchmarkId::new("cold", n), &n, |b, _| {
            b.iter(|| {
                fast.reset_fast_path();
                black_box(
                    fast.step(setpoint + 30.0, setpoint, &freqs, &weights, &floors)
                        .unwrap(),
                )
            })
        });

        let fast_hit = controller(n, true);
        // Prime the region table so the steady-state loop measures hits.
        fast_hit
            .step(setpoint + 30.0, setpoint, &freqs, &weights, &floors)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("hit", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    fast_hit
                        .step(setpoint + 30.0, setpoint, &freqs, &weights, &floors)
                        .unwrap(),
                )
            })
        });
        let (hits, misses) = fast_hit.fast_solver_stats();
        assert!(hits > misses, "steady-state loop should be hit-dominated");

        let fast_miss = controller(n, true);
        let regs = regimes(n);
        let mut flip = 0usize;
        group.bench_with_input(BenchmarkId::new("miss", n), &n, |b, _| {
            b.iter(|| {
                let (excess, freqs) = &regs[flip & 1];
                flip += 1;
                black_box(
                    fast_miss
                        .step(setpoint + excess, setpoint, freqs, &weights, &floors)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qp_solve);
criterion_main!(benches);
