//! Serving-engine event-loop benchmarks: the enqueue → dispatch →
//! complete hot path at three operating points — drained (arrivals and
//! full batches dominate), timeout-heavy (trickle traffic, every batch
//! waits out the timer), and shedding (queue saturated, arrivals mostly
//! drop). These bound the cost of the serving ablation and back the
//! `serve_events_per_sec` entry in `perf_snapshot`.

use capgpu_serve::{ArrivalGen, ArrivalProcess, ServeEngine, ServiceModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn engine(rate_rps: f64, e_min_s: f64, timeout_s: f64, capacity: usize) -> ServeEngine {
    let model = ServiceModel {
        e_min_s,
        gamma: 0.9,
        f_max_mhz: 1380.0,
        max_batch: 32,
        batch_overhead: 0.3,
    };
    let arrivals = ArrivalGen::new(ArrivalProcess::Poisson { rate_rps }, 7).unwrap();
    ServeEngine::new(model, timeout_s, capacity, arrivals).unwrap()
}

fn bench_drained(c: &mut Criterion) {
    // Service capacity well above the offered 50k req/s: the event mix
    // is arrivals plus full-batch dispatch/complete pairs.
    let mut e = engine(50_000.0, 1e-4, 2e-4, 4096);
    e.advance(1.0, 1200.0); // warmup
    c.bench_function("serve_advance_1s_drained_50krps", |b| {
        b.iter(|| black_box(e.advance(1.0, 1200.0)))
    });
}

fn bench_timeout_heavy(c: &mut Criterion) {
    // Trickle traffic far below one batch per timeout: every dispatch is
    // timer-driven, exercising the arm/invalidate path.
    let mut e = engine(2_000.0, 1e-4, 1e-3, 4096);
    e.advance(1.0, 1200.0);
    c.bench_function("serve_advance_1s_timeout_2krps", |b| {
        b.iter(|| black_box(e.advance(1.0, 1200.0)))
    });
}

fn bench_shedding(c: &mut Criterion) {
    // Offered load ~3x service capacity with a small queue: most
    // arrivals shed, bounding the cost of the overload path.
    let mut e = engine(30_000.0, 3e-3, 2e-4, 64);
    e.advance(1.0, 1200.0);
    c.bench_function("serve_advance_1s_shedding_30krps", |b| {
        b.iter(|| black_box(e.advance(1.0, 1200.0)))
    });
}

criterion_group!(benches, bench_drained, bench_timeout_heavy, bench_shedding);
criterion_main!(benches);
