//! Simulation-throughput benchmarks: how fast the testbed itself runs.
//!
//! These bound the cost of the figure-regeneration binaries: one simulated
//! control period (4 s of pipeline DES + meter sampling + one controller
//! invocation) and the raw pipeline event loop.

use capgpu::prelude::*;
use capgpu_workload::models;
use capgpu_workload::pipeline::{ArrivalMode, PipelineConfig, PipelineSim};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline_second(c: &mut Criterion) {
    let mut sim = PipelineSim::new(PipelineConfig {
        model: models::resnet50(),
        num_workers: 2,
        queue_capacity: 64,
        seed: 1,
        f_gpu_max_mhz: 1350.0,
        arrivals: ArrivalMode::Closed,
    })
    .unwrap();
    c.bench_function("pipeline_advance_1s_resnet50", |b| {
        b.iter(|| black_box(sim.advance(1.0, 2200.0, 900.0)))
    });
}

fn bench_full_control_period(c: &mut Criterion) {
    // One CapGPU control period on the paper testbed, including the DES,
    // meter sampling, monitors and the MPC solve.
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(5), 900.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    // `run` consumes periods; benchmark batches of 5 periods to amortize
    // per-call overhead while keeping the closed loop warm.
    let mut controller = Some(controller);
    let mut ctl = controller.take().unwrap();
    c.bench_function("closed_loop_5_periods_capgpu", |b| {
        b.iter(|| {
            let trace = runner.run(&mut ctl, 5).unwrap();
            black_box(trace.records.len())
        })
    });
}

fn bench_identification(c: &mut Criterion) {
    c.bench_function("system_identification_full", |b| {
        b.iter(|| {
            let mut runner = ExperimentRunner::new(Scenario::paper_testbed(6), 900.0).unwrap();
            black_box(runner.identify().unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_pipeline_second,
    bench_full_control_period,
    bench_identification
);
criterion_main!(benches);
