//! Streaming sweep-engine throughput at 10⁴ cells.
//!
//! Measures `SweepSpec::streaming` (summary-reduction mode, DESIGN.md §15)
//! on a 100 seeds × 50 set points × 2 controllers = 10 000-cell grid with
//! short dwells, the regime the full-trace engine cannot hold in memory at
//! scale. One iteration = one full sweep; cells/second is 10⁴ divided by
//! the reported time. A small serial-vs-parallel pair on a 10³-cell grid
//! isolates the scheduling overhead of the bounded reorder window.

use capgpu::config::Scenario;
use capgpu::sweep::{ControllerSpec, SweepSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn grid(seeds: u64, setpoints: usize) -> SweepSpec {
    let points: Vec<f64> = (0..setpoints).map(|i| 880.0 + 4.0 * i as f64).collect();
    let mut spec = SweepSpec::new(Scenario::paper_testbed(1))
        .setpoints(&points)
        .periods(1)
        .controller(ControllerSpec::FixedStep { multiplier: 1 })
        .controller(ControllerSpec::FixedStep { multiplier: 2 });
    for seed in 0..seeds {
        spec = spec.seed(seed);
    }
    spec
}

fn bench_sweep_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_streaming");

    let small = grid(25, 20); // 1000 cells
    group.bench_function("serial_1k_cells", |b| {
        b.iter(|| black_box(small.streaming_serial().unwrap()))
    });
    group.bench_function("parallel_1k_cells", |b| {
        b.iter(|| black_box(small.streaming().unwrap()))
    });

    let large = grid(100, 50); // 10_000 cells
    assert_eq!(large.num_cells(), 10_000);
    group.bench_function("parallel_10k_cells", |b| {
        b.iter(|| {
            let report = large.streaming().unwrap();
            assert_eq!(report.cells, 10_000);
            black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_streaming);
criterion_main!(benches);
