//! System-identification refresh benchmarks: one-shot batch refits
//! (`SystemIdentifier::fit`, O(m·n²) per refresh) against the streaming
//! QR-RLS path (`RlsIdentifier::record` + `fit`, O(n²) per refresh,
//! independent of history length) across device counts and sample
//! depths. These back the `identify_rls_ms` row of the perf snapshot.

use capgpu_control::sysid::{RlsIdentifier, SystemIdentifier};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const DEVICE_COUNTS: [usize; 3] = [2, 5, 9];
const SAMPLE_DEPTHS: [usize; 2] = [20, 200];

/// Deterministic excitation row `i` for `n` devices, spanning the full
/// CPU/GPU clock ranges so the design stays well conditioned.
fn excitation_row(i: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|d| {
            let phase = (i * (2 * d + 3)) % 17;
            435.0 + (2400.0 - 435.0) * phase as f64 / 16.0
        })
        .collect()
}

/// Affine ground-truth power for a frequency row.
fn power_of(row: &[f64]) -> f64 {
    280.0
        + row
            .iter()
            .enumerate()
            .map(|(d, f)| (0.05 + 0.02 * d as f64) * f)
            .sum::<f64>()
}

fn bench_batch_refit(c: &mut Criterion) {
    let mut group = c.benchmark_group("identify_batch");
    for n in DEVICE_COUNTS {
        for m in SAMPLE_DEPTHS {
            let mut ident = SystemIdentifier::new(n);
            for i in 0..m {
                let row = excitation_row(i, n);
                let p = power_of(&row);
                ident.record(&row, p);
            }
            let id = BenchmarkId::from_parameter(format!("n{n}_m{m}"));
            group.bench_with_input(id, &n, |b, _| b.iter(|| black_box(ident.fit().unwrap())));
        }
    }
    group.finish();
}

fn bench_rls_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("identify_rls");
    for n in DEVICE_COUNTS {
        for m in SAMPLE_DEPTHS {
            let mut rls = RlsIdentifier::with_forgetting(n, 0.995).unwrap();
            for i in 0..m {
                let row = excitation_row(i, n);
                let p = power_of(&row);
                rls.record(&row, p);
            }
            let rows: Vec<Vec<f64>> = (0..16).map(|i| excitation_row(i, n)).collect();
            let powers: Vec<f64> = rows.iter().map(|r| power_of(r)).collect();
            let mut i = 0usize;
            let id = BenchmarkId::from_parameter(format!("n{n}_m{m}"));
            group.bench_with_input(id, &n, |b, _| {
                b.iter(|| {
                    let row = &rows[i % rows.len()];
                    rls.record(row, powers[i % rows.len()]);
                    i += 1;
                    black_box(rls.fit().unwrap())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_refit, bench_rls_refresh);
criterion_main!(benches);
