//! LLM batcher benchmarks: the continuous-batching hot path (admit →
//! chunked prefill → decode step → KV release) at three operating
//! points — prefill-heavy (long prompts, short answers), decode-heavy
//! (short prompts, long resident contexts), and KV-saturated (contexts
//! queue on cache admission). These bound the cost of the LLM ablation
//! and back the `llm_tokens_per_sec` entry in `perf_snapshot`
//! (DESIGN.md §17).

use capgpu::prelude::*;
use capgpu_serve::ArrivalProcess;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn model(kv_budget_tokens: usize) -> LlmServiceModel {
    LlmServiceModel {
        f_max_mhz: 1380.0,
        prefill_tok_s: 50_000.0,
        gamma_prefill: 0.95,
        decode_base_s: 5e-4,
        decode_kv_coeff_s: 1e-8,
        gamma_decode: 0.2,
        step_overhead_s: 5e-5,
        max_batch: 64,
        kv_budget_tokens,
        chunk_tokens: Some(256),
        gpu_util_prefill: 0.95,
        gpu_util_decode: 0.55,
    }
}

fn engine(
    rate_rps: f64,
    prompt: (usize, usize),
    output: (usize, usize),
    kv_budget_tokens: usize,
) -> LlmEngine {
    let spec = LlmTaskSpec {
        arrival: ArrivalProcess::Poisson { rate_rps },
        prompt: TokenRange {
            lo: prompt.0,
            hi: prompt.1,
        },
        output: TokenRange {
            lo: output.0,
            hi: output.1,
        },
        ttft_slo_s: 1.0,
        itl_slo_s: 0.1,
    };
    LlmEngine::new(model(kv_budget_tokens), spec, 4096, 7).unwrap()
}

fn bench_prefill_heavy(c: &mut Criterion) {
    // Long prompts, short answers: the chunked-prefill scheduler and
    // admission path dominate the event mix.
    let mut e = engine(300.0, (800, 1600), (30, 80), 120_000);
    e.advance(1.0, 1200.0); // warmup
    c.bench_function("llm_advance_1s_prefill_heavy_300rps", |b| {
        b.iter(|| black_box(e.advance(1.0, 1200.0)))
    });
}

fn bench_decode_heavy(c: &mut Criterion) {
    // Short prompts, long answers: resident contexts pile into the
    // decode batch, so per-step decode accounting dominates.
    let mut e = engine(400.0, (100, 300), (200, 400), 120_000);
    e.advance(1.0, 1200.0);
    c.bench_function("llm_advance_1s_decode_heavy_400rps", |b| {
        b.iter(|| black_box(e.advance(1.0, 1200.0)))
    });
}

fn bench_kv_saturated(c: &mut Criterion) {
    // KV budget a small multiple of the worst-case context: arrivals
    // queue on cache admission, exercising the stall/release path.
    let mut e = engine(200.0, (1000, 2000), (200, 400), 8_000);
    e.advance(1.0, 1200.0);
    c.bench_function("llm_advance_1s_kv_saturated_200rps", |b| {
        b.iter(|| black_box(e.advance(1.0, 1200.0)))
    });
}

criterion_group!(
    benches,
    bench_prefill_heavy,
    bench_decode_heavy,
    bench_kv_saturated
);
criterion_main!(benches);
