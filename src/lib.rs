//! Umbrella crate for CapGPU examples and integration tests.
