//! The CPU workload, for real: exhaustive feature selection with k-fold
//! cross-validated least squares over a synthetic Alibaba-PAI-style trace
//! (paper §6.1). Also calibrates the subsets/s rate model the simulated
//! control loop uses for CPU throughput monitoring.
//!
//! Run with: `cargo run --release --example feature_selection`

use capgpu_workload::featsel::{ExhaustiveFeatureSelection, FeatselRateModel};
use capgpu_workload::pai;
use std::time::Instant;

fn main() {
    let trace = pai::generate(800, 42);
    println!(
        "synthetic PAI trace: {} jobs × {} features {:?}",
        trace.len(),
        trace.num_features(),
        pai::FEATURE_NAMES
    );
    println!(
        "ground-truth informative features: {:?}",
        pai::TRUE_FEATURES
            .iter()
            .map(|&i| pai::FEATURE_NAMES[i])
            .collect::<Vec<_>>()
    );

    let fs = ExhaustiveFeatureSelection::default();
    let start = Instant::now();
    let mut evaluated = 0usize;
    let mut worst = f64::NEG_INFINITY;
    let result = fs
        .run(&trace.x, &trace.y, |score| {
            evaluated += 1;
            worst = worst.max(score.cv_mse);
        })
        .expect("search");
    let elapsed = start.elapsed();

    println!(
        "\nevaluated {} subsets (2^{} − 1) in {:.2?}",
        result.subsets_evaluated,
        trace.num_features(),
        elapsed
    );
    println!(
        "best subset: {:?} with CV MSE {:.5} (worst subset: {:.5})",
        result
            .best
            .features
            .iter()
            .map(|&i| pai::FEATURE_NAMES[i])
            .collect::<Vec<_>>(),
        result.best.cv_mse,
        worst
    );
    for f in pai::TRUE_FEATURES {
        assert!(result.best.features.contains(&f), "missed true feature {f}");
    }
    println!("all ground-truth features recovered ✓");

    // Calibrate the rate model used by the simulated control loop: the
    // measured subsets/s at this machine's nominal clock maps linearly to
    // the simulated CPU's frequency (compute-bound workload).
    let rate = result.subsets_evaluated as f64 / elapsed.as_secs_f64();
    let model = FeatselRateModel::new(rate, 2200.0, 0.05).expect("rate model");
    println!("\nmeasured throughput: {rate:.0} subsets/s at the reference clock");
    for f in [1000.0, 1600.0, 2400.0] {
        println!(
            "  simulated Xeon at {f:.0} MHz → {:.0} subsets/s",
            model.rate(f, 0.0)
        );
    }
}
