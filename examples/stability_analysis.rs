//! The paper's §4.4 stability analysis, executed: extract the MPC's
//! unconstrained feedback law, perturb the plant gains `A'ᵢ = gᵢ·Aᵢ`, and
//! find the range of uniform gain error for which every closed-loop pole
//! stays inside the unit circle.
//!
//! Run with: `cargo run --release --example stability_analysis`

use capgpu::prelude::*;
use capgpu_control::stability;

fn main() {
    // Identify a model on the paper testbed and build the controller.
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(42), 900.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let model = controller.mpc().model().clone();
    let (k_p, k_f) = controller.mpc().unconstrained_gains().unwrap();

    println!("identified gains A (W/MHz): {:?}", model.gains());
    println!("MPC first-move feedback K_p (MHz/W): {:?}", k_p);

    // Pole locus under uniform multiplicative gain error.
    println!("\n  g     spectral radius   stable?");
    for i in 0..=16 {
        let g = 0.25 + i as f64 * 0.25;
        let actual: Vec<f64> = model.gains().iter().map(|a| a * g).collect();
        let rho = stability::closed_loop_spectral_radius(&actual, &k_p, &k_f).unwrap();
        println!(
            "{g:>5.2}   {rho:>15.4}   {}",
            if rho < 1.0 { "yes" } else { "NO" }
        );
    }

    let interval =
        stability::uniform_gain_stability_interval(model.gains(), &k_p, &k_f, 0.05, 8.0, 200)
            .unwrap()
            .expect("nominal loop must be stable");
    println!(
        "\nguaranteed-stable uniform gain-error interval: g ∈ ({:.2}, {:.2})",
        interval.0, interval.1
    );
    println!(
        "→ the loop tolerates the true gains being up to {:.0}% of the identified\n  values on the low side and {:.1}× on the high side (paper §4.4: stability\n  holds while each Aᵢ stays within a derived bound).",
        interval.0 * 100.0,
        interval.1
    );
    assert!(interval.0 < 0.7 && interval.1 > 1.4);
}
