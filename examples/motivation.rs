//! The paper's §3.2 motivation experiment: why joint CPU+GPU frequency
//! control beats throttling either knob alone.
//!
//! A cloud server classifies wildlife images with GoogLeNet on an RTX
//! 3090; ten CPU worker processes preprocess images into a shared bounded
//! queue, a GPU consumer runs batch-20 inference. Three static frequency
//! configurations are compared end to end (Table 1).
//!
//! Run with: `cargo run --release --example motivation`

use capgpu::prelude::*;

fn main() {
    println!("Motivation: GoogLeNet on RTX 3090, 10 preprocessing workers\n");
    let configs: [(&str, f64, f64, &str); 3] = [
        (
            "CPU-only",
            1100.0,
            810.0,
            "CPU throttled: preprocessing starves the fast GPU",
        ),
        (
            "GPU-only",
            2100.0,
            495.0,
            "GPU throttled: queue backs up behind the slow GPU",
        ),
        (
            "CapGPU",
            1600.0,
            660.0,
            "coordinated midpoint: neither stage idles",
        ),
    ];
    println!(
        "{:<10} {:>9} {:>9} {:>12} {:>13} {:>13} {:>12} {:>9}",
        "Config",
        "CPU(MHz)",
        "GPU(MHz)",
        "Prep(s/img)",
        "GPU(s/batch)",
        "Queue(s/img)",
        "Thr(img/s)",
        "Power(W)"
    );
    let mut best = ("", 0.0_f64);
    for (name, f_cpu, f_gpu, _why) in configs {
        let mut runner =
            ExperimentRunner::new(Scenario::motivation_testbed(42), 0.0).expect("scenario");
        let stats = runner.run_fixed(&[f_cpu, f_gpu], 240, 60).expect("run");
        println!(
            "{:<10} {:>9.0} {:>9.0} {:>12.3} {:>13.2} {:>13.2} {:>12.2} {:>9.1}",
            name,
            f_cpu,
            f_gpu,
            stats.preprocess_s_per_image[0],
            stats.mean_batch_latency_s[0],
            stats.mean_queue_delay_s[0],
            stats.throughput_img_s[0],
            stats.mean_power
        );
        if stats.throughput_img_s[0] > best.1 {
            best = (name, stats.throughput_img_s[0]);
        }
    }
    println!();
    for (name, _, _, why) in configs {
        println!("  {name:<10} {why}");
    }
    println!();
    assert_eq!(best.0, "CapGPU", "coordinated control should win");
    println!(
        "Coordinated control wins: {} at {:.2} img/s at comparable power.",
        best.0, best.1
    );
}
