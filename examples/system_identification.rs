//! System identification walkthrough (paper §4.2 / Fig. 2): sweep each
//! frequency knob while holding the others, fit `p = A·F + C` by least
//! squares, and use the model's achievable power range to check set-point
//! feasibility. Also fits the frequency–latency power law (Eq. 8).
//!
//! Run with: `cargo run --release --example system_identification`

use capgpu::prelude::*;
use capgpu_control::latency::LatencyModel;
use capgpu_control::sysid::ExcitationPlan;
use capgpu_workload::models;
use capgpu_workload::pipeline::{ArrivalMode, PipelineConfig, PipelineSim};

fn main() {
    // --- Power-model identification -----------------------------------
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(42), 900.0).unwrap();
    println!("excitation: one-knob-at-a-time sweeps (paper §4.2)");
    let plan = ExcitationPlan::new(
        runner.layout().f_min.clone(),
        runner.layout().f_max.clone(),
        runner
            .layout()
            .f_min
            .iter()
            .zip(runner.layout().f_max.iter())
            .map(|(a, b)| 0.5 * (a + b))
            .collect(),
        8,
    )
    .unwrap();
    println!(
        "  {} excitation points across {} devices",
        plan.len(),
        plan.num_devices()
    );

    let fitted = runner.identify().expect("identification");
    println!("\nfitted linear power model:");
    println!("  p =");
    let names = [
        "Xeon Gold 5215",
        "Tesla V100 #0",
        "Tesla V100 #1",
        "Tesla V100 #2",
    ];
    for (name, g) in names.iter().zip(fitted.model.gains()) {
        println!("      {g:.4} W/MHz · f({name}) +");
    }
    println!("      {:.1} W", fitted.model.offset());
    println!(
        "  R² = {:.4}, RMSE = {:.2} W (paper Fig. 2a: R² = 0.96)",
        fitted.r_squared, fitted.rmse_watts
    );
    println!(
        "  excitation design condition number: {:.1} (≫ 10⁶ would flag a stuck sweep)",
        fitted.design_condition
    );

    let (lo, hi) = fitted
        .model
        .achievable_range(&runner.layout().f_min, &runner.layout().f_max);
    println!("\nachievable power range per the model: {lo:.0} – {hi:.0} W");
    for sp in [800.0, 900.0, 1100.0, 1300.0] {
        let feasible = sp >= lo && sp <= hi;
        println!(
            "  set point {sp:>6.0} W: {}",
            if feasible {
                "feasible"
            } else {
                "INFEASIBLE (needs multi-layer adaptation, paper §4.4)"
            }
        );
    }

    // --- Latency-model fit (Eq. 8) -------------------------------------
    println!("\nlatency model fit for ResNet50 (paper Fig. 2b):");
    let model = models::resnet50();
    let mut freqs = Vec::new();
    let mut lats = Vec::new();
    for step in 0..10 {
        let f = 435.0 + step as f64 * 100.0;
        let mut pipe = PipelineSim::new(PipelineConfig {
            model: model.clone(),
            num_workers: 2,
            queue_capacity: 64,
            seed: step as u64,
            f_gpu_max_mhz: 1350.0,
            arrivals: ArrivalMode::Closed,
        })
        .unwrap();
        for _ in 0..10 {
            pipe.advance(1.0, 2200.0, f);
        }
        let mut samples = Vec::new();
        for _ in 0..20 {
            samples.extend(pipe.advance(1.0, 2200.0, f).batch_latencies);
        }
        freqs.push(f);
        lats.push(capgpu_linalg::stats::mean(&samples));
    }
    let (lat_model, r2) = LatencyModel::fit(&freqs, &lats, 1350.0).expect("fit");
    println!(
        "  e(f) = {:.4}·(1350/f)^{:.3}, R² = {r2:.4} (paper: γ = 0.91, R² ≈ 0.91)",
        lat_model.e_min, lat_model.gamma
    );
    let slo = 0.08;
    println!(
        "  frequency floor for an SLO of {slo} s/batch: {:.0} MHz",
        lat_model.frequency_floor(slo).unwrap()
    );
}
