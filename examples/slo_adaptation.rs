//! Online SLO adaptation (paper §6.4 / Fig. 9): CapGPU tracks the power
//! cap while honoring per-GPU latency SLOs that change mid-run.
//!
//! All three inference tasks start at their median (50%-tail) SLO level.
//! At period 14 a demand surge tightens t₂/t₃ to the 80%-tail level while
//! t₁ relaxes to the 30%-tail level; CapGPU converts each SLO into a
//! per-GPU frequency floor (constraints 10b/10c) and reallocates the
//! budget.
//!
//! Run with: `cargo run --release --example slo_adaptation`

use capgpu::config::ScheduledChange;
use capgpu::prelude::*;
use capgpu_control::latency::LatencyModel;

fn main() {
    let base = Scenario::paper_testbed(42);
    // SLO levels from the latency law (Eq. 8): the "q% tail" SLO is the
    // latency at the frequency q% of the way up the GPU's range.
    let level = |task: usize, q: f64| -> f64 {
        let m = &base.gpu_models[task];
        let lat = LatencyModel::new(m.e_min_s, base.gamma_fitted, 1350.0).unwrap();
        let f = 435.0 + (q / 100.0) * (1350.0 - 435.0);
        lat.latency(f)
    };
    let scenario = base
        .clone()
        .with_slos(vec![
            Some(level(0, 50.0)),
            Some(level(1, 50.0)),
            Some(level(2, 50.0)),
        ])
        .with_change(ScheduledChange::Slo {
            at_period: 14,
            task: 0,
            slo_s: level(0, 30.0), // relax t1
        })
        .with_change(ScheduledChange::Slo {
            at_period: 14,
            task: 1,
            slo_s: level(1, 80.0), // tighten t2
        })
        .with_change(ScheduledChange::Slo {
            at_period: 14,
            task: 2,
            slo_s: level(2, 80.0), // tighten t3
        });

    let mut runner = ExperimentRunner::new(scenario, 1100.0).expect("scenario");
    let controller = runner.build_capgpu_controller().expect("controller");
    let trace = runner.run(controller, 50).expect("run");

    println!("period  power(W)   t1 lat/slo      t2 lat/slo      t3 lat/slo");
    for r in trace.records.iter().step_by(2) {
        println!(
            "{:>6}  {:>8.1}   {:>6.3}/{:<6.3}  {:>6.3}/{:<6.3}  {:>6.3}/{:<6.3}",
            r.period,
            r.avg_power,
            r.gpu_mean_latency[0],
            r.slo[0].unwrap(),
            r.gpu_mean_latency[1],
            r.slo[1].unwrap(),
            r.gpu_mean_latency[2],
            r.slo[2].unwrap(),
        );
    }
    println!();
    println!(
        "deadline miss rates: t1 {:.2}%  t2 {:.2}%  t3 {:.2}%",
        100.0 * trace.miss_rates[0],
        100.0 * trace.miss_rates[1],
        100.0 * trace.miss_rates[2]
    );
    let (mean, std) = trace.steady_state_power(0.5);
    println!("steady-state power: {mean:.1} ± {std:.1} W at an 1100 W cap");
    assert!(trace.miss_rates.iter().all(|m| *m < 0.05));
    println!("\nAll SLOs met across the change — per-device frequency floors did the work ✓");
}
