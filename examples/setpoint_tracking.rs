//! Set-point step tracking (paper §6.4 / Fig. 10): a data-center power
//! manager raises this server's budget during a request surge and lowers
//! it afterwards; CapGPU must follow both steps quickly and smoothly.
//!
//! Run with: `cargo run --release --example setpoint_tracking`

use capgpu::config::ScheduledChange;
use capgpu::prelude::*;
use capgpu_control::metrics;

fn main() {
    let scenario = Scenario::paper_testbed(42)
        .with_change(ScheduledChange::SetPoint {
            at_period: 40,
            watts: 900.0,
        })
        .with_change(ScheduledChange::SetPoint {
            at_period: 80,
            watts: 800.0,
        });
    let mut runner = ExperimentRunner::new(scenario, 800.0).expect("scenario");
    let controller = runner.build_capgpu_controller().expect("controller");
    let trace = runner.run(controller, 120).expect("run");

    println!("period  setpoint  power(W)");
    for r in trace.records.iter().step_by(4) {
        let bar_len = ((r.avg_power - 700.0) / 4.0).max(0.0) as usize;
        println!(
            "{:>6}  {:>8.0}  {:>8.1}  {}",
            r.period,
            r.setpoint,
            r.avg_power,
            "#".repeat(bar_len.min(70))
        );
    }

    // Settling after each step (within ±15 W of the new set point).
    let seg1: Vec<f64> = trace.records[40..80].iter().map(|r| r.avg_power).collect();
    let seg2: Vec<f64> = trace.records[80..].iter().map(|r| r.avg_power).collect();
    let s1 = metrics::settling_time(&seg1, 900.0, 15.0);
    let s2 = metrics::settling_time(&seg2, 800.0, 15.0);
    println!();
    println!("settling after 800→900 W step: {s1:?} periods");
    println!("settling after 900→800 W step: {s2:?} periods");
    assert!(s1.is_some() && s2.is_some(), "must settle after both steps");
    assert!(s1.unwrap() <= 3 && s2.unwrap() <= 3, "MPC settles fast");
    println!("\nCapGPU tracked both budget steps within 3 control periods ✓");
}
