//! Rack-level power coordination (extension beyond the paper, after the
//! SHIP/Dynamo lineage in its related work): two CapGPU servers share one
//! rack budget; a max–min water-filling coordinator re-divides the budget
//! every few control periods based on observed demand.
//!
//! Run with: `cargo run --release --example rack_coordination`

use capgpu::config::Scenario;
use capgpu::rack::{Rack, RackConfig};
use capgpu_workload::models;

fn main() {
    // Server A: heavy inference load on all three V100s.
    let heavy = Scenario::paper_testbed(51);
    // Server B: very light tasks — its GPUs are mostly idle.
    let mut light = Scenario::paper_testbed(52);
    for m in &mut light.gpu_models {
        *m = models::resnet50();
        m.e_min_s = 0.005;
    }

    let budget = 1900.0;
    let mut rack = Rack::new(
        vec![heavy, light],
        RackConfig {
            budget_watts: budget,
            rebalance_every: 8,
            min_share_watts: 700.0,
        },
    )
    .expect("rack");

    println!("rack budget: {budget:.0} W across {} servers\n", rack.len());
    let trace = rack.run(6).expect("run");

    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "epoch", "A assigned", "A measured", "B assigned", "B measured", "rack total"
    );
    for (e, epoch) in trace.epochs.iter().enumerate() {
        println!(
            "{e:>5} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            epoch[0].assigned,
            epoch[0].measured,
            epoch[1].assigned,
            epoch[1].measured,
            trace.total_measured(e)
        );
        assert!(
            trace.total_assigned(e) <= budget + 1e-6,
            "rack over-assigned"
        );
    }
    let last = trace.epochs.last().unwrap();
    assert!(last[0].assigned > last[1].assigned);
    println!(
        "\nThe coordinator moved {:.0} W from the idle server to the busy one\nwhile never assigning more than the rack budget ✓",
        last[0].assigned - budget / 2.0
    );
}
