//! Quickstart: cap a 3×V100 ML inference server at 900 W with CapGPU.
//!
//! Builds the paper's evaluation testbed (one Xeon Gold 5215 host CPU,
//! three Tesla V100s running ResNet50 / Swin-T / VGG16 inference, plus an
//! exhaustive feature-selection job on the CPU), identifies the server's
//! power model online, and runs the CapGPU MIMO MPC controller for 60
//! control periods.
//!
//! Run with: `cargo run --release --example quickstart`

use capgpu::prelude::*;

fn main() {
    // 1. Describe the server and its workloads (paper §5 testbed).
    let scenario = Scenario::paper_testbed(42);
    let setpoint = 900.0; // watts

    // 2. Build the runner (simulated server + pipelines + monitors).
    let mut runner = ExperimentRunner::new(scenario, setpoint).expect("valid scenario");

    // 3. Identify the power model p = A·F + C by sweeping each knob
    //    (paper §4.2) — the controller never sees the simulator's ground
    //    truth, only this fitted model.
    let fitted = runner.identify().expect("identification");
    println!("identified power model (R² = {:.3}):", fitted.r_squared);
    for (i, g) in fitted.model.gains().iter().enumerate() {
        println!("  device {i}: {g:.4} W/MHz");
    }
    println!("  offset: {:.1} W", fitted.model.offset());

    // 4. Build the CapGPU controller (MIMO MPC + weight assignment) and
    //    close the loop.
    let controller = runner.build_capgpu_controller().expect("controller");
    let trace = runner.run(controller, 60).expect("run");

    // 5. Report.
    println!();
    println!("period  power(W)  targets(MHz)");
    for r in trace.records.iter().step_by(5) {
        let t: Vec<String> = r.targets.iter().map(|f| format!("{f:.0}")).collect();
        println!("{:>6}  {:>8.1}  [{}]", r.period, r.avg_power, t.join(", "));
    }
    let summary = RunSummary::from_trace(&trace);
    println!();
    println!("{}", summary.row());
    println!(
        "steady GPU throughput: {:?} img/s; CPU: {:.0} subsets/s",
        summary
            .gpu_throughput
            .iter()
            .map(|t| (t * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
        summary.cpu_throughput
    );
    assert!(
        (summary.power_mean - setpoint).abs() < 15.0,
        "CapGPU failed to converge"
    );
    println!("\nCapGPU held the server at {setpoint:.0} W ✓");
}
