//! Cross-crate end-to-end integration tests: the full paper pipeline from
//! system identification through control to evaluation metrics.

use capgpu::config::ScheduledChange;
use capgpu::prelude::*;
use capgpu_control::stability;

/// The headline result: CapGPU beats every baseline on control accuracy
/// while delivering at-least-comparable inference throughput, on the same
/// testbed, same seed, same workloads.
#[test]
fn capgpu_beats_baselines_end_to_end() {
    let setpoint = 950.0;
    let run = |build: fn(&mut ExperimentRunner) -> Box<dyn PowerController>| -> RunSummary {
        let mut runner =
            ExperimentRunner::new(Scenario::paper_testbed(7), setpoint).expect("scenario");
        let controller = build(&mut runner);
        let trace = runner.run(controller, 80).expect("run");
        RunSummary::from_trace(&trace)
    };
    let capgpu = run(|r| Box::new(r.build_capgpu_controller().unwrap()));
    let gpu_only = run(|r| Box::new(r.build_gpu_only().unwrap()));
    let safe_fs = run(|r| Box::new(r.build_safe_fixed_step(1).unwrap()));
    let split = run(|r| Box::new(r.build_split(0.6).unwrap()));

    // Accuracy: CapGPU within noise of the set point and never worse than
    // any baseline.
    assert!(
        capgpu.tracking_error < 5.0,
        "CapGPU err {}",
        capgpu.tracking_error
    );
    assert!(capgpu.tracking_error <= gpu_only.tracking_error + 0.5);
    assert!(capgpu.tracking_error < safe_fs.tracking_error);
    assert!(capgpu.tracking_error < split.tracking_error);

    // Performance: highest total GPU throughput among cap-respecting
    // controllers.
    let total = |s: &RunSummary| s.gpu_throughput.iter().sum::<f64>();
    assert!(
        total(&capgpu) >= total(&gpu_only),
        "{} vs {}",
        total(&capgpu),
        total(&gpu_only)
    );
    assert!(total(&capgpu) >= total(&safe_fs));
}

/// Identification → stability analysis pipeline: the controller built from
/// the identified model must be provably stable for the *true* simulator
/// gains (which differ from the identified ones).
#[test]
fn identified_controller_is_stable_against_truth() {
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(21), 900.0).unwrap();
    let fitted = runner.identify().unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let (k_p, k_f) = controller.mpc().unconstrained_gains().unwrap();

    // True small-signal gains of the simulator around the operating point
    // (utilization ≈ 0.92 busy): gain·(α + (1−α)·u).
    let true_gains: Vec<f64> = runner
        .server()
        .devices()
        .iter()
        .map(|d| d.power_law.gain_w_per_mhz * (0.35 + 0.65 * 0.9))
        .collect();
    assert!(
        stability::is_stable(&true_gains, &k_p, &k_f, 0.0).unwrap(),
        "closed loop unstable against the true plant"
    );
    // Identified gains should be within ~30% of truth.
    for (f, t) in fitted.model.gains().iter().zip(true_gains.iter()) {
        assert!(
            (f - t).abs() / t < 0.35,
            "identified {f} vs true {t} diverges"
        );
    }
}

/// Determinism across the whole stack: same seed, same trace, different
/// seed, different trace.
#[test]
fn full_stack_determinism() {
    let run = |seed: u64| {
        let mut runner = ExperimentRunner::new(Scenario::paper_testbed(seed), 900.0).unwrap();
        let controller = runner.build_capgpu_controller().unwrap();
        runner.run(controller, 25).unwrap().power_series()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

/// Infeasible set point: below the server's minimum busy power, the
/// controller saturates every knob at its floor and reports a steady
/// deficit rather than oscillating or crashing (paper §4.4's feasibility
/// assumption, handled gracefully).
#[test]
fn infeasible_low_setpoint_saturates_gracefully() {
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(8), 500.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let trace = runner.run(controller, 30).unwrap();
    let last = trace.records.last().unwrap();
    // All devices pinned at minimum frequency.
    for (t, lo) in last.targets.iter().zip(runner.layout().f_min.iter()) {
        assert!((t - lo).abs() < 16.0, "targets {:?}", last.targets);
    }
    let (mean, std) = trace.steady_state_power(0.5);
    assert!(mean > 500.0, "power floor sits above the infeasible cap");
    assert!(std < 10.0, "no oscillation at saturation: σ = {std}");
}

/// Infeasible high set point: above the achievable peak, everything
/// saturates at max and power settles at the peak.
#[test]
fn infeasible_high_setpoint_saturates_at_peak() {
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(9), 2000.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let trace = runner.run(controller, 30).unwrap();
    let last = trace.records.last().unwrap();
    for (t, hi) in last.targets.iter().zip(runner.layout().f_max.iter()) {
        assert!((t - hi).abs() < 16.0, "targets {:?}", last.targets);
    }
}

/// The §6.4 combined scenario: budget step and SLO change in one run.
#[test]
fn combined_setpoint_and_slo_changes() {
    let base = Scenario::paper_testbed(11);
    let e_min = base.gpu_models[0].e_min_s;
    let scenario = base
        .with_slos(vec![Some(e_min * 2.0), None, None])
        .with_change(ScheduledChange::SetPoint {
            at_period: 20,
            watts: 1000.0,
        })
        .with_change(ScheduledChange::Slo {
            at_period: 30,
            task: 0,
            slo_s: e_min * 1.3,
        });
    let mut runner = ExperimentRunner::new(scenario, 900.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let trace = runner.run(controller, 60).unwrap();
    let (mean, _) = trace.steady_state_power(0.4);
    assert!(
        (mean - 1000.0).abs() < 15.0,
        "tracks the raised budget: {mean}"
    );
    // Tighter SLO raised the first GPU's floor.
    let before = trace.records[29].floors[1];
    let after = trace.records.last().unwrap().floors[1];
    assert!(after > before, "floor {before} -> {after}");
}

/// GPU-Only applies one clock to all GPUs — verify it cannot satisfy
/// per-device SLO differentiation while CapGPU can (Fig. 8 vs Fig. 9
/// essence, as a single test).
#[test]
fn per_device_slo_needs_mimo_control() {
    // t3 = VGG16 is the slowest model; give it a tight SLO and t1/t2
    // loose ones — only per-device control can run GPU2 fast while the
    // others stay slow enough to hold the power cap.
    let base = Scenario::paper_testbed(13);
    let tight = base.gpu_models[2].e_min_s * 1.15;
    let loose1 = base.gpu_models[0].e_min_s * 2.5;
    let loose2 = base.gpu_models[1].e_min_s * 2.5;
    let scenario = base.with_slos(vec![Some(loose1), Some(loose2), Some(tight)]);
    let setpoint = 1050.0;

    let mut r1 = ExperimentRunner::new(scenario.clone(), setpoint).unwrap();
    let capgpu = r1.build_capgpu_controller().unwrap();
    let t_capgpu = r1.run(capgpu, 50).unwrap();

    let mut r2 = ExperimentRunner::new(scenario, setpoint).unwrap();
    let gpu_only = r2.build_gpu_only().unwrap();
    let t_gpu = r2.run(gpu_only, 50).unwrap();

    assert!(
        t_capgpu.miss_rates[2] < 0.05,
        "CapGPU misses tight SLO: {:?}",
        t_capgpu.miss_rates
    );
    assert!(
        t_gpu.miss_rates[2] > t_capgpu.miss_rates[2] + 0.10,
        "GPU-Only should miss the tight SLO far more: {:?} vs {:?}",
        t_gpu.miss_rates,
        t_capgpu.miss_rates
    );
}

/// §4.4 multi-layer adaptation: a set point below the frequency-scaling
/// floor is only reachable by engaging the GPUs' low-memory-clock states;
/// the escape hatch must engage, recover the cap, and release when the
/// budget rises again.
#[test]
fn memory_escape_recovers_infeasible_cap() {
    let mut scenario = Scenario::paper_testbed(31);
    scenario.memory_escape = true;
    // 755 W sits below the frequency-only floor (~765 W) but above the
    // floor with memory throttling engaged (~" − 3·12% of GPU dynamic").
    let scenario = scenario.with_change(ScheduledChange::SetPoint {
        at_period: 40,
        watts: 1000.0,
    });
    let mut runner = ExperimentRunner::new(scenario, 742.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let trace = runner.run(controller, 80).unwrap();

    // Phase 1: escape engages and holds the cap.
    let engaged: Vec<&capgpu::runner::PeriodRecord> = trace.records[..40]
        .iter()
        .filter(|r| r.memory_escape_active)
        .collect();
    assert!(
        engaged.len() > 20,
        "escape should engage for most of phase 1: {} periods",
        engaged.len()
    );
    let tail_phase1: Vec<f64> = trace.records[20..40].iter().map(|r| r.avg_power).collect();
    let mean1 = capgpu_linalg::stats::mean(&tail_phase1);
    assert!(
        mean1 < 742.0 + 10.0,
        "cap not recovered with memory throttling: {mean1} W"
    );

    // Phase 2 (budget raised to 1000 W): escape releases.
    let last = trace.records.last().unwrap();
    assert!(
        !last.memory_escape_active,
        "escape should release once frequency scaling has authority"
    );
    let (mean2, _) = trace.steady_state_power(0.3);
    assert!((mean2 - 1000.0).abs() < 15.0, "phase 2 power {mean2}");
}

/// Without the escape hatch the same set point is simply missed — the
/// control gap the §4.4 extension closes.
#[test]
fn without_memory_escape_cap_is_missed() {
    let mut runner = ExperimentRunner::new(Scenario::paper_testbed(31), 742.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let trace = runner.run(controller, 40).unwrap();
    let (mean, _) = trace.steady_state_power(0.5);
    assert!(
        mean > 742.0 + 8.0,
        "frequency scaling alone should miss this cap: {mean} W"
    );
    assert!(trace.records.iter().all(|r| !r.memory_escape_active));
}

/// Open-loop demand surge (the §6.4 narrative made literal): traffic
/// triples mid-run; under a fixed cap the controller absorbs the surge by
/// letting utilization-driven power rise push frequencies down — and the
/// pipelines keep every request flowing.
#[test]
fn open_loop_demand_surge_under_fixed_cap() {
    let mut scenario = Scenario::paper_testbed(61);
    scenario.arrival_rates = Some(vec![60.0, 40.0, 25.0]);
    let scenario = scenario.with_change(ScheduledChange::ArrivalRate {
        at_period: 30,
        task: 0,
        rate_img_s: 180.0,
    });
    let mut runner = ExperimentRunner::new(scenario, 950.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let trace = runner.run(controller, 70).unwrap();

    // Before the surge task 0 completes ≈ its offered 60 img/s; after, ≈ 180.
    let thr = |lo: usize, hi: usize| {
        let v: Vec<f64> = trace.records[lo..hi]
            .iter()
            .map(|r| r.gpu_throughput[0])
            .collect();
        capgpu_linalg::stats::mean(&v)
    };
    let before = thr(15, 30);
    let after = thr(45, 70);
    assert!(
        (before - 60.0).abs() < 12.0,
        "pre-surge throughput {before}"
    );
    assert!(after > 2.0 * before, "surge not served: {before} → {after}");

    // The cap held throughout (±noise).
    let (mean, _) = trace.steady_state_power(0.5);
    assert!((mean - 950.0).abs() < 15.0, "cap drifted: {mean}");
}

/// Arrival-rate validation: rates must match GPU count and be positive,
/// and rate changes require open-loop mode.
#[test]
fn arrival_rate_validation() {
    let mut s = Scenario::paper_testbed(1);
    s.arrival_rates = Some(vec![10.0]);
    assert!(s.validate().is_err());

    let mut s = Scenario::paper_testbed(1);
    s.arrival_rates = Some(vec![10.0, -1.0, 10.0]);
    assert!(s.validate().is_err());

    let s = Scenario::paper_testbed(1).with_change(ScheduledChange::ArrivalRate {
        at_period: 5,
        task: 0,
        rate_img_s: 100.0,
    });
    assert!(s.validate().is_err(), "rate change without open-loop mode");
}

/// Scale-out: the same stack handles an 8-GPU server (the paper's "up to
/// eight GPUs" form factor) — identification, control and SLO floors all
/// scale; CapGPU caps the bigger box as precisely as the 3-GPU one.
#[test]
fn eight_gpu_server_scales() {
    let scenario = Scenario::eight_gpu_testbed(71);
    scenario.validate().unwrap();
    let mut runner = ExperimentRunner::new(scenario, 2000.0).unwrap();
    let fitted = runner.identify().unwrap();
    assert_eq!(fitted.model.gains().len(), 9);
    assert!(fitted.r_squared > 0.9, "R² {}", fitted.r_squared);
    let controller = runner.build_capgpu_controller().unwrap();
    let trace = runner.run(controller, 40).unwrap();
    let (mean, std) = trace.steady_state_power(0.5);
    assert!((mean - 2000.0).abs() < 15.0, "mean {mean}");
    assert!(std < 15.0, "std {std}");
    // Every one of the eight pipelines keeps flowing.
    for (i, thr) in trace.steady_gpu_throughput(0.5).iter().enumerate() {
        assert!(*thr > 1.0, "task {i} starved: {thr}");
    }
}

/// Thermal robustness: one GPU has a tight thermal envelope and hard-
/// throttles under sustained load — an actuation disturbance the
/// controller never modeled. The loop must keep total power at the cap by
/// compensating with the remaining devices.
#[test]
fn capgpu_rides_through_thermal_throttling() {
    let mut scenario = Scenario::paper_testbed(81);
    scenario.devices[1].thermal = Some(capgpu_sim::ThermalSpec {
        ambient_c: 30.0,
        r_th_k_per_w: 0.35, // throttles near ~150 W dissipation
        tau_s: 20.0,
        t_throttle_c: 83.0,
        throttle_clock_mhz: 607.5,
        hysteresis_c: 5.0,
    });
    let mut runner = ExperimentRunner::new(scenario, 1000.0).unwrap();
    let controller = runner.build_capgpu_controller().unwrap();
    let trace = runner.run(controller, 80).unwrap();

    // The hot GPU did throttle at some point…
    assert!(
        runner.server().thermal_throttling(1).unwrap()
            || runner.server().temperature(1).unwrap().unwrap() > 70.0,
        "the tight envelope should have bitten"
    );
    // …and the loop still holds the cap at steady state.
    let (mean, std) = trace.steady_state_power(0.4);
    assert!((mean - 1000.0).abs() < 15.0, "mean {mean}");
    assert!(std < 20.0, "std {std}");
}
